//! Umbrella crate for the Ranger reproduction: re-exports the workspace crates used by the examples and integration tests.
#![warn(missing_docs)]
pub use ranger;
pub use ranger_datasets as datasets;
pub use ranger_engine as engine;
pub use ranger_graph as graph;
pub use ranger_inject as inject;
pub use ranger_models as models;
pub use ranger_runtime as runtime;
pub use ranger_tensor as tensor;
