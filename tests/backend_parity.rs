//! Backend parity: the fixed-point and SIMD execution backends against the f32
//! reference.
//!
//! The discipline mirrors `pipeline_parity.rs`: `eval_node_into` (through
//! `ReferenceBackend`) is the single semantic oracle, and every alternative backend is
//! pinned against it — exactly where exact, within a *documented* quantization tolerance
//! where quantization is the measurement.
//!
//! Two kinds of pins:
//!
//! * **Exactness** — on operands that lie on the Q grid with in-range intermediates,
//!   fixed-point inference must reproduce the reference **bit-for-bit** (quantization is
//!   the identity there, and the integer kernels' rounding never fires).
//! * **Tolerance** — on the zoo models, outputs must stay within per-model bounds derived
//!   from the formats' resolution (measured once and frozen with margin; see the table),
//!   sit exactly on the representable grid, and be deterministic across repeated runs
//!   and across every (workers × batch) campaign combination.
//!
//! The SIMD backend gets the stricter pin: it computes the *same* f32 semantics, so its
//! zoo outputs and campaign SDC counts must equal the reference **bit-for-bit** — its
//! "tolerance" is zero, measured and frozen as equality.

use ranger_engine::canonical_input;
use ranger_graph::exec::NoopInterceptor;
use ranger_graph::{BackendKind, Graph, Op};
use ranger_inject::{
    run_campaign, CampaignConfig, ClassifierJudge, FaultModel, InjectionTarget, SdcJudge,
    SteeringJudge,
};
use ranger_models::{archs, ModelConfig, ModelKind};
use ranger_tensor::{FixedSpec, Tensor};

/// Documented parity tolerances: `(model, fixed32, fixed16)` as absolute bounds on the
/// output max-abs-diff against the f32 reference on the canonical input.
///
/// Where they come from (measured on the seed-0 untrained zoo graphs, frozen with
/// 2–4× margin):
///
/// * **fixed32** (Q24.8, resolution 1/256): classifier softmax outputs stay within
///   0.002–0.012 of the reference; Comma's steering head multiplies large intermediate
///   activations (output ≈ −94°), so its propagated error reaches ≈ 7.
/// * **fixed16** (Q14.2, resolution 0.25): softmax probabilities carry at most **two
///   fractional bits**, so classifier outputs are inherently coarse — the bound is the
///   probability range itself, and the sharp assertions are grid membership and
///   determinism, not closeness. Comma's intermediates exceed the ±8192 Q14.2 range and
///   saturate (observed diff ≈ 174); RQ4's SDC measurement remains meaningful because
///   golden and faulty runs saturate identically.
const TOLERANCES: [(ModelKind, f32, f32); 8] = [
    (ModelKind::LeNet, 0.02, 1.0),
    (ModelKind::AlexNet, 0.02, 1.0),
    (ModelKind::Vgg11, 0.02, 1.0),
    (ModelKind::Vgg16, 0.02, 1.0),
    (ModelKind::ResNet18, 0.05, 1.0),
    (ModelKind::SqueezeNet, 0.02, 1.0),
    (ModelKind::Dave, 0.02, 2.0),
    (ModelKind::Comma, 25.0, 500.0),
];

/// Every zoo model: the SIMD backend reproduces the f32 reference **bit-for-bit** —
/// not within a tolerance. Its kernels preserve the reference's accumulation order and
/// rounding steps (no reduction-dimension vectorization, no FMA; see `ranger-simd`'s
/// crate docs), so the measured divergence on every zoo model is exactly zero and that
/// zero is frozen here as equality. Also pinned: determinism across repeated runs and
/// across a reused arena (the campaign hot path).
#[test]
fn simd_backend_is_bit_for_bit_exact_on_every_zoo_model() {
    for (kind, _, _) in TOLERANCES {
        let model = archs::build(&ModelConfig::new(kind), 0);
        let input = canonical_input(&model);
        let feeds = [(model.input_name.as_str(), input)];
        let reference = model
            .graph
            .compile()
            .unwrap()
            .run_simple(&feeds, model.output)
            .unwrap();
        let plan = model
            .graph
            .compile_with(BackendKind::Simd.backend())
            .unwrap();
        let out = plan.run_simple(&feeds, model.output).unwrap();
        assert_eq!(out, reference, "{kind} on simd diverged from the reference");
        let again = plan.run_simple(&feeds, model.output).unwrap();
        assert_eq!(out, again, "{kind} on simd: repeated runs diverged");
        let mut values = plan.buffers();
        plan.run_into(&mut values, &feeds, &mut NoopInterceptor)
            .unwrap();
        plan.run_into(&mut values, &feeds, &mut NoopInterceptor)
            .unwrap();
        assert_eq!(
            values.get(model.output).unwrap(),
            &out,
            "{kind} on simd: arena-reusing pass diverged"
        );
    }
}

/// Every zoo model: fixed16/fixed32 outputs stay within the documented tolerance of the
/// reference backend, land exactly on the representable grid, stay within the format's
/// range, and are bit-for-bit reproducible across runs.
#[test]
fn fixed_backends_match_reference_within_documented_tolerance_on_every_zoo_model() {
    for (kind, tol32, tol16) in TOLERANCES {
        let model = archs::build(&ModelConfig::new(kind), 0);
        let input = canonical_input(&model);
        let feeds = [(model.input_name.as_str(), input)];
        let reference = model
            .graph
            .compile()
            .unwrap()
            .run_simple(&feeds, model.output)
            .unwrap();
        for (backend, tolerance) in [(BackendKind::Fixed32, tol32), (BackendKind::Fixed16, tol16)] {
            let plan = model.graph.compile_with(backend.backend()).unwrap();
            let out = plan.run_simple(&feeds, model.output).unwrap();
            assert_eq!(out.dims(), reference.dims(), "{kind} on {backend}");
            let diff = reference.max_abs_diff(&out).unwrap();
            assert!(
                diff <= tolerance,
                "{kind} on {backend}: output diverged from the reference by {diff} \
                 (documented tolerance {tolerance})"
            );
            let spec = backend.spec().unwrap();
            for &v in out.data() {
                assert!(
                    (v as f64) <= spec.max_value() && (v as f64) >= spec.min_value(),
                    "{kind} on {backend}: {v} escapes the representable range"
                );
            }
            if spec == FixedSpec::q16() {
                // Every Q14.2 word decodes exactly in f32, so grid membership is a sharp
                // structural check: each output is an integer multiple of 0.25.
                for &v in out.data() {
                    assert_eq!(
                        v * 4.0,
                        (v * 4.0).round(),
                        "{kind} on {backend}: {v} is not on the Q14.2 grid"
                    );
                }
            }
            // Bit-for-bit reproducible: a second pass through fresh buffers is identical.
            let again = plan.run_simple(&feeds, model.output).unwrap();
            assert_eq!(out, again, "{kind} on {backend}: repeated runs diverged");
            // And so is a pass reusing a warmed arena (the campaign hot path). Reading
            // the output between the passes decodes its lazy mirror, so the second
            // pass also proves a decoded mirror is invalidated, not served stale.
            let mut values = plan.buffers();
            plan.run_into(&mut values, &feeds, &mut NoopInterceptor)
                .unwrap();
            assert_eq!(values.get(model.output).unwrap(), &out, "{kind} {backend}");
            plan.run_into(&mut values, &feeds, &mut NoopInterceptor)
                .unwrap();
            assert_eq!(
                values.get(model.output).unwrap(),
                &out,
                "{kind} on {backend}: arena-reusing pass diverged"
            );
            // The lazily decoded mirror is exactly the decode of the stored words.
            assert_eq!(
                &values.get_q(model.output).unwrap().dequantize(),
                values.get(model.output).unwrap(),
                "{kind} on {backend}: mirror and stored words diverged"
            );
        }
    }
}

/// Builds an MLP whose weights, biases and intermediates all lie exactly on the Q14.2
/// grid and well inside every format's range: integer weights, quarter-step inputs.
fn exact_grid_mlp() -> (Graph, ranger_graph::NodeId) {
    let mut g = Graph::new();
    let x = g.add_input("x");
    let w1 = g.add_const(
        "w1",
        Tensor::from_vec(
            vec![3, 4],
            vec![
                1.0, -2.0, 3.0, 0.0, 2.0, 1.0, -1.0, 2.0, 0.0, 3.0, 1.0, -2.0,
            ],
        )
        .unwrap(),
        true,
    );
    let b1 = g.add_const(
        "b1",
        Tensor::from_vec(vec![4], vec![0.25, -0.5, 1.0, 0.0]).unwrap(),
        true,
    );
    let mm1 = g.add_node("fc1", Op::MatMul, vec![x, w1]);
    let add1 = g.add_node("fc1_bias", Op::BiasAdd, vec![mm1, b1]);
    let relu = g.add_node("relu", Op::Relu, vec![add1]);
    let w2 = g.add_const(
        "w2",
        Tensor::from_vec(vec![4, 2], vec![1.0, 2.0, -1.0, 1.0, 2.0, -2.0, 1.0, 1.0]).unwrap(),
        true,
    );
    let mm2 = g.add_node("fc2", Op::MatMul, vec![relu, w2]);
    let clamp = g.add_node(
        "guard",
        Op::Clamp {
            lo: -64.0,
            hi: 64.0,
        },
        vec![mm2],
    );
    (g, clamp)
}

/// On exactly-representable operands with in-range intermediates, both fixed backends
/// reproduce the f32 reference **bit-for-bit**: quantization is the identity and integer
/// products of grid values rescale exactly.
#[test]
fn fixed_backends_are_exact_on_grid_aligned_operands() {
    let (graph, output) = exact_grid_mlp();
    // Inputs on the quarter grid: products are multiples of 0.25 (integer weights), sums
    // stay far inside ±8192.
    for v in [-2.0f32, -0.75, 0.0, 0.25, 1.5, 3.0] {
        let feeds = [("x", Tensor::filled(vec![2, 3], v))];
        let reference = graph.compile().unwrap().run_simple(&feeds, output).unwrap();
        for backend in [BackendKind::Fixed16, BackendKind::Fixed32] {
            let out = graph
                .compile_with(backend.backend())
                .unwrap()
                .run_simple(&feeds, output)
                .unwrap();
            assert_eq!(
                out, reference,
                "{backend} must be bit-for-bit exact on grid-aligned operands (input {v})"
            );
        }
    }
}

/// The campaign acceptance grid on real zoo architectures, per backend: worker counts
/// {1, 2, 4} × batch sizes {1, 16} report the serial per-sample SDC counts bit-for-bit
/// on every backend — on the fixed backends with faults flipped directly in the words.
#[test]
fn campaign_counts_are_bit_for_bit_across_workers_and_batch_on_every_backend() {
    for kind in [ModelKind::LeNet, ModelKind::Comma] {
        let model = archs::build(&ModelConfig::new(kind), 3);
        let inputs = vec![canonical_input(&model)];
        let judge: Box<dyn SdcJudge> = if kind.is_steering() {
            Box::new(SteeringJudge::paper_thresholds(false))
        } else {
            Box::new(ClassifierJudge::top1())
        };
        let target = InjectionTarget {
            graph: &model.graph,
            input_name: &model.input_name,
            output: model.output,
            excluded: &model.excluded_from_injection,
        };
        let mut f32_counts = None;
        for (backend, fault) in [
            (BackendKind::F32, FaultModel::single_bit_fixed32()),
            (BackendKind::Fixed16, FaultModel::single_bit_fixed16()),
            (BackendKind::Fixed32, FaultModel::single_bit_fixed32()),
            (BackendKind::Simd, FaultModel::single_bit_fixed32()),
        ] {
            let config = |workers, batch| CampaignConfig {
                trials: 16,
                batch,
                workers,
                backend,
                fault,
                seed: 31,
                tile: 0,
            };
            let reference = run_campaign(&target, &inputs, judge.as_ref(), &config(1, 1)).unwrap();
            assert_eq!(reference.trials, 16, "{kind} on {backend}");
            match backend {
                // The SIMD backend computes the f32 semantics bit for bit with the
                // same fault model, so its counts are pinned *across backends*: equal
                // to the f32 reference, not merely self-consistent across the grid.
                BackendKind::Simd => assert_eq!(
                    Some(&reference.sdc_counts),
                    f32_counts.as_ref(),
                    "{kind}: simd campaign counts diverged from the f32 reference"
                ),
                BackendKind::F32 => f32_counts = Some(reference.sdc_counts.clone()),
                _ => {}
            }
            for workers in [2usize, 4] {
                for batch in [1usize, 16] {
                    let run =
                        run_campaign(&target, &inputs, judge.as_ref(), &config(workers, batch))
                            .unwrap();
                    assert_eq!(
                        run.sdc_counts, reference.sdc_counts,
                        "{kind} on {backend}: workers {workers} × batch {batch} diverged"
                    );
                    assert_eq!(
                        run.unactivated, reference.unactivated,
                        "{kind} on {backend}"
                    );
                }
            }
        }
    }
}
