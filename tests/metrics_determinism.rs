//! The observability layer's hard contract, pinned: metrics draw no RNG and never
//! branch on observed values, so turning the registry on cannot move a single SDC
//! count.
//!
//! The pin runs the same LeNet campaign twice — registry off, then registry on — for
//! every (workers × batch × tile × backend) combination the campaign driver dispatches
//! over, and requires the tallies to be **bit-for-bit** identical. A second assertion
//! block checks the flip side: the metrics-on runs really did record (per-op plan
//! timings, row-group scheduler counters, campaign histograms, trial counts), so the
//! equality above is not vacuous.
//!
//! The enable flag is process-global, so this file keeps everything in one `#[test]`
//! (the same discipline as the graph and runtime metric tests) and restores the flag
//! it found.

use ranger_engine::canonical_input;
use ranger_graph::BackendKind;
use ranger_inject::{run_campaign, CampaignConfig, ClassifierJudge, FaultModel, InjectionTarget};
use ranger_models::{archs, ModelConfig, ModelKind};

#[test]
fn sdc_counts_are_bit_for_bit_identical_with_metrics_on_and_off() {
    let model = archs::build(&ModelConfig::new(ModelKind::LeNet), 3);
    let inputs = vec![canonical_input(&model)];
    let judge = ClassifierJudge::top1();
    let target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };

    let was_enabled = ranger_obs::enabled();
    for (backend, fault) in [
        (BackendKind::F32, FaultModel::single_bit_fixed32()),
        (BackendKind::Simd, FaultModel::single_bit_fixed32()),
        (BackendKind::Fixed16, FaultModel::single_bit_fixed16()),
    ] {
        for workers in [1usize, 4] {
            for batch in [1usize, 16] {
                for tile in [0usize, 4] {
                    let config = CampaignConfig {
                        trials: 16,
                        batch,
                        workers,
                        backend,
                        fault,
                        seed: 31,
                        tile,
                    };
                    ranger_obs::set_enabled(false);
                    let off = run_campaign(&target, &inputs, &judge, &config).unwrap();
                    ranger_obs::set_enabled(true);
                    let on = run_campaign(&target, &inputs, &judge, &config).unwrap();
                    let grid =
                        format!("backend {backend}, workers {workers}, batch {batch}, tile {tile}");
                    assert_eq!(
                        off.sdc_counts, on.sdc_counts,
                        "metrics moved the SDC counts on {grid}"
                    );
                    assert_eq!(
                        off.unactivated, on.unactivated,
                        "metrics moved the unactivated tally on {grid}"
                    );
                    assert_eq!(
                        off.trials, on.trials,
                        "metrics moved the trial count on {grid}"
                    );
                }
            }
        }
    }

    // The equality above must not be vacuous: the metrics-on runs really recorded.
    let snapshot = ranger_obs::registry().snapshot();
    assert!(
        snapshot.counter("campaign.trials").unwrap_or(0) >= 16,
        "the enabled runs must have counted their trials"
    );
    assert!(
        snapshot.counters_with_prefix("plan.op.").next().is_some(),
        "the enabled runs must have published per-op plan timings"
    );
    assert!(
        snapshot.histogram("campaign.faulty_pass_nanos").is_some(),
        "the enabled runs must have a faulty-pass latency histogram"
    );
    assert!(
        snapshot.counter("plan.tile.segments").unwrap_or(0) > 0
            && snapshot.counter("plan.tile.rows").unwrap_or(0) > 0,
        "the enabled tiled runs must have published row-group scheduler counters"
    );
    ranger_obs::set_enabled(was_enabled);
}
