//! Parity tests for the unified experiment API: the `Protector` trait, the compiled
//! `ExecPlan` and the `Pipeline` builder must reproduce the legacy hand-wired paths
//! exactly — same graphs, same forward-pass values, same SDC counts for the same seed.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use ranger::bounds::{profile_bounds, BoundsConfig};
use ranger::protect::{Protector, RangerProtector};
use ranger::transform::{apply_ranger, RangerConfig};
use ranger_engine::{
    canonical_input, correct_classifier_inputs_for, profiling_samples_for, run_model_campaign,
    JudgeSpec, Pipeline,
};
use ranger_graph::exec::NoopInterceptor;
use ranger_graph::{Executor, GraphBuilder};
use ranger_inject::{BackendKind, CampaignConfig, FaultModel};
use ranger_models::zoo::ModelZoo;
use ranger_models::{archs, ModelConfig, ModelKind, TrainConfig};
use ranger_tensor::Tensor;

/// The `Protector` trait path and the legacy `apply_ranger` free function produce
/// structurally identical graphs and identical clamp counts for every zoo model.
#[test]
fn protector_matches_legacy_apply_ranger_on_every_zoo_model() {
    for kind in ModelKind::all() {
        let model = archs::build(&ModelConfig::new(kind), 0);
        let samples = vec![canonical_input(&model)];
        let bounds = profile_bounds(
            &model.graph,
            &model.input_name,
            &samples,
            &BoundsConfig::default(),
        )
        .unwrap();
        for config in [RangerConfig::default(), RangerConfig::activations_only()] {
            let (legacy, legacy_stats) = apply_ranger(&model.graph, &bounds, &config).unwrap();
            let (via_trait, trait_stats) = RangerProtector::new(config)
                .protect(&model.graph, &bounds)
                .unwrap();
            assert_eq!(
                via_trait, legacy,
                "{kind}: graphs must be structurally identical"
            );
            assert_eq!(
                trait_stats.clamps_inserted, legacy_stats.clamps_inserted,
                "{kind}: clamp counts must match"
            );
            assert_eq!(via_trait.clamp_count(), legacy.clamp_count(), "{kind}");
        }
    }
}

/// `ExecPlan` forward passes match the existing `Executor` bit-for-bit on every zoo
/// model, protected and unprotected.
#[test]
fn exec_plan_matches_executor_bit_for_bit_on_every_zoo_model() {
    for kind in ModelKind::all() {
        let model = archs::build(&ModelConfig::new(kind), 0);
        let input = canonical_input(&model);
        let samples = vec![input.clone()];
        let bounds = profile_bounds(
            &model.graph,
            &model.input_name,
            &samples,
            &BoundsConfig::default(),
        )
        .unwrap();
        let (protected, _) = apply_ranger(&model.graph, &bounds, &RangerConfig::default()).unwrap();

        for graph in [&model.graph, &protected] {
            let exec = Executor::new(graph);
            let plan = graph.compile().unwrap();
            let mut buffers = plan.buffers();
            let via_exec = exec
                .run(
                    &[(model.input_name.as_str(), input.clone())],
                    &mut NoopInterceptor,
                )
                .unwrap();
            plan.run_into(
                &mut buffers,
                &[(model.input_name.as_str(), input.clone())],
                &mut NoopInterceptor,
            )
            .unwrap();
            for (id, tensor) in via_exec.iter() {
                // Bit-for-bit: Tensor equality is exact on the raw f32 payload.
                assert_eq!(
                    buffers.get(id).unwrap(),
                    tensor,
                    "{kind}: node {id} diverged between Executor and ExecPlan"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Protector/legacy parity holds on random MLPs, not just the fixed zoo shapes.
    #[test]
    fn protector_parity_on_random_mlps(hidden in 2usize..10, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 4, hidden, &mut rng);
        let h = b.relu(h);
        let h = b.dense(h, hidden, hidden, &mut rng);
        let h = b.relu(h);
        let _y = b.dense(h, hidden, 3, &mut rng);
        let graph = b.into_graph();
        let samples: Vec<Tensor> = (0..4)
            .map(|i| Tensor::filled(vec![1, 4], 0.4 * (i as f32 + 1.0)))
            .collect();
        let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let (legacy, legacy_stats) = apply_ranger(&graph, &bounds, &RangerConfig::default()).unwrap();
        let (via_trait, trait_stats) =
            RangerProtector::default().protect(&graph, &bounds).unwrap();
        prop_assert_eq!(via_trait, legacy);
        prop_assert_eq!(trait_stats.clamps_inserted, legacy_stats.clamps_inserted);
    }

    /// The batched/parallel-campaign acceptance property: ANY campaign configuration
    /// produces identical SDC counts (and trial/unactivated tallies) for every
    /// `(batch, workers, tile)` combination, on random MLPs and random fault models —
    /// fault plans are keyed by `(input, trial)` index, so neither the pass shape, the
    /// schedule nor the row-group scheduler can reach the counts.
    #[test]
    fn batched_and_parallel_campaign_parity_on_random_campaigns(
        hidden in 2usize..10,
        seed in 0u64..100,
        trials in 1usize..40,
        batch in 2usize..50,
        workers_log2 in 0u32..4,
        bits in 1usize..3,
        tile in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 4, hidden, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, hidden, 3, &mut rng);
        let probs = b.softmax(y);
        let graph = b.into_graph();
        let target = ranger_inject::InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![
            Tensor::filled(vec![1, 4], 0.8),
            Tensor::filled(vec![1, 4], -0.4),
        ];
        let judge = ranger_inject::ClassifierJudge::top1();
        let workers = 1usize << workers_log2; // 1, 2, 4 or 8
        let config = |batch, workers, tile| CampaignConfig {
            trials,
            batch,
            workers,
            backend: ranger_inject::BackendKind::F32,
            fault: ranger_inject::FaultModel {
                datatype: ranger_tensor::DataType::fixed32(),
                bits,
            },
            seed,
            tile,
        };
        let reference =
            ranger_inject::run_campaign(&target, &inputs, &judge, &config(1, 1, 0)).unwrap();
        for candidate in [
            config(batch, 1, 0),          // batched, serial, untiled
            config(1, workers, 0),        // per-sample, parallel
            config(batch, workers, 0),    // batched and parallel
            config(batch, 1, tile),       // batched through the row-group scheduler
            config(batch, workers, tile), // batched, parallel and tiled
        ] {
            let run = ranger_inject::run_campaign(&target, &inputs, &judge, &candidate).unwrap();
            prop_assert_eq!(&run.sdc_counts, &reference.sdc_counts);
            prop_assert_eq!(run.trials, reference.trials);
            prop_assert_eq!(run.unactivated, reference.unactivated);
        }
    }

    /// ExecPlan/Executor parity holds on random MLPs and random inputs.
    #[test]
    fn exec_plan_parity_on_random_mlps(hidden in 2usize..10, seed in 0u64..100, v in -2.0f32..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 4, hidden, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, hidden, 2, &mut rng);
        let graph = b.into_graph();
        let input = Tensor::filled(vec![1, 4], v);
        let via_exec = Executor::new(&graph).run_simple(&[("x", input.clone())], y).unwrap();
        let plan = graph.compile().unwrap();
        let via_plan = plan.run_simple(&[("x", input)], y).unwrap();
        prop_assert_eq!(via_exec, via_plan);
    }
}

/// The parallel-campaign acceptance grid on real zoo architectures: worker counts
/// {1, 2, 4, 8} × batch sizes {1, 16} all report the serial per-sample counts
/// bit-for-bit, on a convolutional classifier (LeNet) and a steering regressor (Comma).
#[test]
fn parallel_campaign_grid_matches_serial_on_zoo_models() {
    for kind in [ModelKind::LeNet, ModelKind::Comma] {
        let model = archs::build(&ModelConfig::new(kind), 3);
        let input = canonical_input(&model);
        let inputs = vec![input];
        let judge: Box<dyn ranger_inject::SdcJudge> = if kind.is_steering() {
            Box::new(ranger_inject::SteeringJudge::paper_thresholds(false))
        } else {
            Box::new(ranger_inject::ClassifierJudge::top1())
        };
        let target = ranger_inject::InjectionTarget {
            graph: &model.graph,
            input_name: &model.input_name,
            output: model.output,
            excluded: &model.excluded_from_injection,
        };
        let config = |workers, batch| CampaignConfig {
            trials: 20,
            batch,
            workers,
            backend: BackendKind::F32,
            fault: FaultModel::single_bit_fixed32(),
            seed: 31,
            tile: 0,
        };
        let reference =
            ranger_inject::run_campaign(&target, &inputs, judge.as_ref(), &config(1, 1)).unwrap();
        for workers in [1usize, 2, 4, 8] {
            for batch in [1usize, 16] {
                let run = ranger_inject::run_campaign(
                    &target,
                    &inputs,
                    judge.as_ref(),
                    &config(workers, batch),
                )
                .unwrap();
                assert_eq!(
                    run.sdc_counts, reference.sdc_counts,
                    "{kind}: workers {workers} × batch {batch} diverged from serial SDC counts"
                );
                assert_eq!(run.trials, reference.trials, "{kind}");
                assert_eq!(run.unactivated, reference.unactivated, "{kind}");
            }
        }
    }
}

/// The row-group scheduler acceptance grid on real zoo architectures: on a convolutional
/// classifier (LeNet) and a steering regressor (Comma), across the f32, SIMD and fixed16
/// backends, every (tile × workers × batch) combination — one trial per group, a
/// non-divisor, the whole batch, and the auto-derived size — reports the untiled batched
/// counts bit-for-bit. Tiling is pure scheduling: the same faults land on the same
/// elements whatever the row-group height.
#[test]
fn tiled_campaign_grid_matches_untiled_on_zoo_models() {
    for kind in [ModelKind::LeNet, ModelKind::Comma] {
        let model = archs::build(&ModelConfig::new(kind), 3);
        let input = canonical_input(&model);
        let inputs = vec![input];
        let judge: Box<dyn ranger_inject::SdcJudge> = if kind.is_steering() {
            Box::new(ranger_inject::SteeringJudge::paper_thresholds(false))
        } else {
            Box::new(ranger_inject::ClassifierJudge::top1())
        };
        let target = ranger_inject::InjectionTarget {
            graph: &model.graph,
            input_name: &model.input_name,
            output: model.output,
            excluded: &model.excluded_from_injection,
        };
        for (backend, fault) in [
            (BackendKind::F32, FaultModel::single_bit_fixed32()),
            (BackendKind::Simd, FaultModel::single_bit_fixed32()),
            (BackendKind::Fixed16, FaultModel::single_bit_fixed16()),
        ] {
            let config = |batch, workers, tile| CampaignConfig {
                trials: 12,
                batch,
                workers,
                backend,
                fault,
                seed: 37,
                tile,
            };
            let reference =
                ranger_inject::run_campaign(&target, &inputs, judge.as_ref(), &config(16, 1, 0))
                    .unwrap();
            let mut grid = vec![];
            for tile in [1usize, 4, 16, ranger_inject::TILE_AUTO] {
                for workers in [1usize, 4] {
                    grid.push(config(16, workers, tile));
                }
            }
            // A batch wider than the trial count still partitions into the same groups.
            grid.push(config(64, 4, 4));
            for candidate in grid {
                let run = ranger_inject::run_campaign(&target, &inputs, judge.as_ref(), &candidate)
                    .unwrap();
                let label = format!(
                    "{kind} on {backend}: batch {} × workers {} × tile {}",
                    candidate.batch, candidate.workers, candidate.tile
                );
                assert_eq!(
                    run.sdc_counts, reference.sdc_counts,
                    "{label} diverged from the untiled batched SDC counts"
                );
                assert_eq!(run.trials, reference.trials, "{label}");
                assert_eq!(run.unactivated, reference.unactivated, "{label}");
            }
        }
    }
}

/// The acceptance criterion for the API redesign: a fig6-style campaign run through the
/// new `Pipeline` API reproduces the legacy hand-wired path's SDC counts exactly for the
/// same seed.
#[test]
fn pipeline_reproduces_legacy_fig6_campaign_counts_exactly() {
    let kind = ModelKind::LeNet;
    let seed = 17u64;
    let trials = 60usize;
    let n_inputs = 2usize;
    let quick = TrainConfig {
        epochs: 3,
        batch_size: 32,
        learning_rate: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        train_samples: 120,
        validation_samples: 48,
    };
    let zoo_dir = std::env::temp_dir().join(format!("ranger-parity-zoo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&zoo_dir);

    // New API: one Pipeline chain.
    let outcome = Pipeline::for_model(kind)
        .seed(seed)
        .train(quick)
        .zoo(ModelZoo::new(&zoo_dir))
        .profile(BoundsConfig::default())
        .protect(RangerConfig::default())
        .campaign(CampaignConfig {
            trials,
            batch: 1,
            workers: 1,
            backend: BackendKind::F32,
            fault: FaultModel::single_bit_fixed32(),
            seed,
            tile: 0,
        })
        .inputs(n_inputs)
        .judge(JudgeSpec::TopK(vec![1]))
        .run_full()
        .unwrap();

    // Legacy hand-wired path, replayed on the identical trained model.
    let model = &outcome.model;
    let samples = profiling_samples_for(kind, seed, 0.2, &quick);
    let bounds = profile_bounds(
        &model.graph,
        &model.input_name,
        &samples,
        &BoundsConfig::default(),
    )
    .unwrap();
    let (protected_graph, _) =
        apply_ranger(&model.graph, &bounds, &RangerConfig::default()).unwrap();
    let mut protected = model.clone();
    protected.graph = protected_graph;
    let inputs = correct_classifier_inputs_for(model, seed, n_inputs, &quick).unwrap();
    let config = CampaignConfig {
        trials,
        batch: 1,
        workers: 1,
        backend: BackendKind::F32,
        fault: FaultModel::single_bit_fixed32(),
        seed,
        tile: 0,
    };
    let judge = ranger_inject::ClassifierJudge::top1();
    let legacy_baseline = run_model_campaign(model, &inputs, &judge, &config).unwrap();
    let legacy_protected = run_model_campaign(&protected, &inputs, &judge, &config).unwrap();

    let pipeline_baseline = outcome.baseline_result.expect("campaign ran");
    let pipeline_protected = outcome.protected_result.expect("campaign ran");
    assert_eq!(
        pipeline_baseline.sdc_counts, legacy_baseline.sdc_counts,
        "unprotected arm SDC counts must match the legacy path exactly"
    );
    assert_eq!(
        pipeline_protected.sdc_counts, legacy_protected.sdc_counts,
        "protected arm SDC counts must match the legacy path exactly"
    );
    assert_eq!(pipeline_baseline.trials, legacy_baseline.trials);
    assert_eq!(pipeline_baseline.unactivated, legacy_baseline.unactivated);
    // The protected graphs are structurally identical too.
    assert_eq!(outcome.protected.model.graph, protected.graph);

    // The batched/parallel/tiled acceptance criterion: the same fig6-style pipeline with
    // a batched campaign (16 trials per forward pass), a parallel campaign (4 workers),
    // both at once, and the row-group scheduler on top reproduces the per-sample SDC
    // counts bit-for-bit, in both arms.
    for (batch, workers, tile) in [(16usize, 1usize, 0usize), (1, 4, 0), (16, 4, 0), (16, 4, 4)] {
        let variant = Pipeline::for_model(kind)
            .seed(seed)
            .train(quick)
            .zoo(ModelZoo::new(&zoo_dir))
            .profile(BoundsConfig::default())
            .protect(RangerConfig::default())
            .campaign(CampaignConfig {
                trials,
                batch: 1,   // overridden by the knob below
                workers: 1, // overridden by the knob below
                backend: BackendKind::F32,
                fault: FaultModel::single_bit_fixed32(),
                seed,
                tile: 0, // overridden by the knob below
            })
            .batch(batch)
            .workers(workers)
            .tile(tile)
            .inputs(n_inputs)
            .judge(JudgeSpec::TopK(vec![1]))
            .run_full()
            .unwrap();
        assert_eq!(
            variant.baseline_result.unwrap().sdc_counts,
            pipeline_baseline.sdc_counts,
            "unprotected arm (batch {batch}, workers {workers}, tile {tile}) must \
             reproduce the per-sample fig6 SDC counts exactly"
        );
        assert_eq!(
            variant.protected_result.unwrap().sdc_counts,
            pipeline_protected.sdc_counts,
            "protected arm (batch {batch}, workers {workers}, tile {tile}) must \
             reproduce the per-sample fig6 SDC counts exactly"
        );
    }

    let _ = std::fs::remove_dir_all(&zoo_dir);
}
