//! End-to-end integration tests spanning the workspace crates: train → profile → protect
//! → inject → verify, the full pipeline every experiment binary uses. Protection runs
//! through the `Protector` trait and campaigns through the `ExecPlan`-backed runner — the
//! same path the `Pipeline` builder drives.

use ranger::bounds::{profile_bounds, BoundsConfig};
use ranger::protect::{Protector, RangerProtector};
use ranger::transform::{apply_ranger, RangerConfig};
use ranger_datasets::classification::{ClassificationDataset, ImageDomain};
use ranger_datasets::driving::{AngleUnit, DrivingDataset};
use ranger_engine::Pipeline;
use ranger_inject::{
    run_campaign, BackendKind, CampaignConfig, ClassifierJudge, FaultModel, InjectionTarget,
    SteeringJudge,
};
use ranger_models::train::{
    classification_accuracy, regression_metrics, train_classifier, train_regressor,
};
use ranger_models::{archs, Model, ModelConfig, ModelKind, TrainConfig};
use ranger_tensor::Tensor;

fn quick_train_lenet(seed: u64) -> (Model, ClassificationDataset) {
    let cfg = TrainConfig {
        epochs: 5,
        batch_size: 32,
        learning_rate: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        train_samples: 200,
        validation_samples: 80,
    };
    let data = ClassificationDataset::generate(
        ImageDomain::Digits,
        cfg.train_samples,
        cfg.validation_samples,
        seed,
    );
    let mut model = archs::build(&ModelConfig::lenet(), seed);
    train_classifier(&mut model, &data, &cfg, seed).expect("training succeeds");
    (model, data)
}

fn protect(model: &Model, data: &ClassificationDataset) -> Model {
    let samples: Vec<Tensor> = (0..40).map(|i| data.train_batch(&[i]).0).collect();
    let bounds = profile_bounds(
        &model.graph,
        &model.input_name,
        &samples,
        &BoundsConfig::default(),
    )
    .expect("profiling succeeds");
    let (graph, stats) = RangerProtector::default()
        .protect(&model.graph, &bounds)
        .expect("transform succeeds");
    assert!(stats.clamps_inserted > 0);
    let mut protected = model.clone();
    protected.graph = graph;
    protected
}

fn campaign(
    model: &Model,
    inputs: &[Tensor],
    trials: usize,
    seed: u64,
) -> ranger_inject::CampaignResult {
    let target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    let config = CampaignConfig {
        trials,
        batch: 1,
        workers: 1,
        backend: BackendKind::F32,
        fault: FaultModel::single_bit_fixed32(),
        seed,
        tile: 0,
    };
    run_campaign(&target, inputs, &ClassifierJudge::top1(), &config).expect("campaign succeeds")
}

#[test]
fn ranger_reduces_classifier_sdc_rate_without_hurting_accuracy() {
    let (model, data) = quick_train_lenet(1);
    let protected = protect(&model, &data);

    // RQ2: accuracy is preserved in the absence of faults.
    let (top1_orig, top5_orig) = classification_accuracy(&model, &data, true).unwrap();
    let (top1_prot, top5_prot) = classification_accuracy(&protected, &data, true).unwrap();
    assert!(
        top1_orig > 0.5,
        "the model must learn the task, got {top1_orig}"
    );
    assert!(
        top1_prot >= top1_orig - 1e-9,
        "Ranger must not degrade top-1 accuracy ({top1_orig} -> {top1_prot})"
    );
    assert!(top5_prot >= top5_orig - 1e-9);

    // RQ1: the SDC rate drops substantially under single-bit-flip injection.
    let mut inputs = Vec::new();
    for i in 0..data.validation.len() {
        if inputs.len() >= 3 {
            break;
        }
        let (batch, labels) = data.validation_batch(&[i]);
        if model.predict_classes(&batch).unwrap()[0] == labels[0] {
            inputs.push(batch);
        }
    }
    assert!(!inputs.is_empty(), "need correctly-classified inputs");
    let original = campaign(&model, &inputs, 150, 3);
    let with_ranger = campaign(&protected, &inputs, 150, 3);
    let orig_rate = original.sdc_rate(0).expect("category in range").rate();
    let prot_rate = with_ranger.sdc_rate(0).expect("category in range").rate();
    assert!(
        orig_rate > 0.0,
        "the unprotected model should exhibit some SDCs"
    );
    assert!(
        prot_rate < orig_rate,
        "Ranger must reduce the SDC rate ({orig_rate} -> {prot_rate})"
    );
}

#[test]
fn ranger_protects_the_steering_model_and_preserves_regression_accuracy() {
    let cfg = TrainConfig {
        epochs: 5,
        batch_size: 32,
        learning_rate: 0.02,
        momentum: 0.9,
        weight_decay: 0.0,
        train_samples: 200,
        validation_samples: 80,
    };
    let data = DrivingDataset::generate(cfg.train_samples, cfg.validation_samples, 2);
    let mut model = archs::build(&ModelConfig::new(ModelKind::Comma), 2);
    train_regressor(&mut model, &data, &cfg, 2).unwrap();

    let samples: Vec<Tensor> = (0..40)
        .map(|i| data.train_batch(&[i], AngleUnit::Degrees).0)
        .collect();
    let bounds = profile_bounds(
        &model.graph,
        &model.input_name,
        &samples,
        &BoundsConfig::default(),
    )
    .unwrap();
    let (graph, _) = apply_ranger(&model.graph, &bounds, &RangerConfig::default()).unwrap();
    let mut protected = model.clone();
    protected.graph = graph;

    // Accuracy (RMSE / mean deviation) is essentially unchanged in the absence of faults:
    // the conservative maximum bound may truncate a handful of unseen-data activations
    // (the paper observes the same), so allow a fraction-of-a-percent drift.
    let (rmse_orig, mad_orig) = regression_metrics(&model, &data, true).unwrap();
    let (rmse_prot, mad_prot) = regression_metrics(&protected, &data, true).unwrap();
    assert!(
        (rmse_orig - rmse_prot).abs() <= 0.01 * rmse_orig.max(1.0),
        "{rmse_orig} vs {rmse_prot}"
    );
    assert!((mad_orig - mad_prot).abs() <= 0.01 * mad_orig.max(1.0));

    // SDC rates under injection drop (or at worst stay equal) for every threshold.
    let inputs: Vec<Tensor> = (0..3)
        .map(|i| data.validation_batch(&[i], AngleUnit::Degrees).0)
        .collect();
    let judge = SteeringJudge::paper_thresholds(false);
    let config = CampaignConfig {
        trials: 120,
        batch: 1,
        workers: 1,
        backend: BackendKind::F32,
        fault: FaultModel::single_bit_fixed32(),
        seed: 5,
        tile: 0,
    };
    let target_orig = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    let target_prot = InjectionTarget {
        graph: &protected.graph,
        input_name: &protected.input_name,
        output: protected.output,
        excluded: &protected.excluded_from_injection,
    };
    let original = run_campaign(&target_orig, &inputs, &judge, &config).unwrap();
    let with_ranger = run_campaign(&target_prot, &inputs, &judge, &config).unwrap();
    for i in 0..original.categories.len() {
        assert!(
            with_ranger.sdc_rate(i).expect("category in range").rate()
                <= original.sdc_rate(i).expect("category in range").rate() + 1e-9,
            "threshold {} got worse: {} -> {}",
            original.categories[i],
            original.sdc_rate(i).expect("category in range").rate(),
            with_ranger.sdc_rate(i).expect("category in range").rate()
        );
    }
}

#[test]
fn fixed16_campaign_also_benefits_from_ranger() {
    let (model, data) = quick_train_lenet(4);
    let protected = protect(&model, &data);
    let inputs = vec![data.validation_batch(&[0]).0, data.validation_batch(&[1]).0];
    // Both RQ4 measurement styles: the historical emulation (f32 compute, Q14.2
    // corruption) and the genuine fixed-point path (Q14.2 compute, word-level flips).
    for backend in [BackendKind::F32, BackendKind::Fixed16] {
        let config = CampaignConfig {
            trials: 120,
            batch: 1,
            workers: 1,
            backend,
            fault: FaultModel::single_bit_fixed16(),
            seed: 9,
            tile: 0,
        };
        let run = |m: &Model| {
            let target = InjectionTarget {
                graph: &m.graph,
                input_name: &m.input_name,
                output: m.output,
                excluded: &m.excluded_from_injection,
            };
            run_campaign(&target, &inputs, &ClassifierJudge::top1(), &config).unwrap()
        };
        let original = run(&model);
        let with_ranger = run(&protected);
        assert!(
            with_ranger.sdc_rate(0).expect("category in range").rate()
                <= original.sdc_rate(0).expect("category in range").rate() + 1e-9,
            "Ranger must not increase the SDC rate on the {backend} backend"
        );
    }
}

#[test]
fn multi_bit_faults_are_still_mitigated() {
    let (model, data) = quick_train_lenet(6);
    let protected = protect(&model, &data);
    let inputs = vec![data.validation_batch(&[0]).0];
    for bits in [2usize, 4] {
        let config = CampaignConfig {
            trials: 100,
            batch: 1,
            workers: 1,
            backend: BackendKind::F32,
            fault: FaultModel::multi_bit_fixed32(bits),
            seed: 13 + bits as u64,
            tile: 0,
        };
        let run = |m: &Model| {
            let target = InjectionTarget {
                graph: &m.graph,
                input_name: &m.input_name,
                output: m.output,
                excluded: &m.excluded_from_injection,
            };
            run_campaign(&target, &inputs, &ClassifierJudge::top1(), &config).unwrap()
        };
        let original = run(&model);
        let with_ranger = run(&protected);
        assert!(
            with_ranger.sdc_rate(0).expect("category in range").rate()
                <= original.sdc_rate(0).expect("category in range").rate() + 1e-9,
            "{bits}-bit faults: {} -> {}",
            original.sdc_rate(0).expect("category in range").rate(),
            with_ranger.sdc_rate(0).expect("category in range").rate()
        );
    }
}

#[test]
fn protected_graph_has_low_flops_overhead_on_every_architecture() {
    // Structural check across all eight architectures (untrained weights are fine: FLOPs
    // depend only on shapes).
    for kind in ModelKind::all() {
        let model = archs::build(&ModelConfig::new(kind), 0);
        let input = match kind.image_domain() {
            Some(domain) => {
                let (c, h, w) = domain.image_shape();
                Tensor::ones(vec![1, c, h, w])
            }
            None => {
                let (c, h, w) = ranger_datasets::driving::FRAME_SHAPE;
                Tensor::ones(vec![1, c, h, w])
            }
        };
        let samples = vec![input.clone()];
        let bounds = profile_bounds(
            &model.graph,
            &model.input_name,
            &samples,
            &BoundsConfig::default(),
        )
        .unwrap();
        let (graph, stats) = apply_ranger(&model.graph, &bounds, &RangerConfig::default()).unwrap();
        assert!(stats.clamps_inserted > 0, "{kind} must receive clamps");
        let report =
            ranger::overhead::flops_overhead(&model.graph, &graph, &model.input_name, &input)
                .unwrap();
        // The replicas are far smaller than the paper's models, so the fixed per-element
        // clamp cost is relatively larger; a single-digit percentage is still "low" here
        // (SqueezeNet, the smallest network per clamp, sits around 6%).
        assert!(
            report.percent() < 10.0,
            "{kind}: Ranger FLOPs overhead should be small, got {:.3}%",
            report.percent()
        );
        // Fault-free outputs are unchanged by the transformation.
        let mut protected = model.clone();
        protected.graph = graph;
        let a = model.forward(&input).unwrap();
        let b = protected.forward(&input).unwrap();
        assert!(
            a.approx_eq(&b, 1e-5).unwrap(),
            "{kind}: fault-free output changed"
        );
    }
}

/// The entire experiment arc through the `Pipeline` builder: train → profile → protect →
/// inject, with the report carrying RQ1 (SDC reduction) and RQ3 (low overhead) evidence.
#[test]
fn pipeline_end_to_end_reduces_sdc_and_keeps_overhead_low() {
    let quick = TrainConfig {
        epochs: 5,
        batch_size: 32,
        learning_rate: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        train_samples: 200,
        validation_samples: 80,
    };
    let zoo_dir = std::env::temp_dir().join(format!("ranger-e2e-zoo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&zoo_dir);
    let report = Pipeline::for_model(ModelKind::LeNet)
        .seed(1)
        .train(quick)
        .zoo(ranger_models::zoo::ModelZoo::new(&zoo_dir))
        .profile(BoundsConfig::default())
        .protect(RangerConfig::default())
        .campaign(CampaignConfig {
            trials: 150,
            batch: 1,
            workers: 1,
            backend: BackendKind::F32,
            fault: FaultModel::single_bit_fixed32(),
            seed: 3,
            tile: 0,
        })
        .inputs(3)
        .run()
        .expect("pipeline runs");
    let _ = std::fs::remove_dir_all(&zoo_dir);

    assert!(
        report.validation_accuracy > 0.5,
        "the model must learn the task"
    );
    assert!(report.insertion.clamps_inserted > 0);
    assert!(
        report.overhead.flops_percent < 10.0,
        "Ranger FLOPs overhead should be small, got {:.3}%",
        report.overhead.flops_percent
    );
    let campaign = report.campaign.expect("campaign configured");
    let base = &campaign.baseline[0];
    let prot = &campaign.protected[0];
    assert!(
        base.sdc_percent > 0.0,
        "the unprotected model should exhibit some SDCs"
    );
    assert!(
        prot.sdc_percent < base.sdc_percent,
        "Ranger must reduce the SDC rate ({} -> {})",
        base.sdc_percent,
        prot.sdc_percent
    );
    assert!(campaign.coverage_percent[0] > 0.0);
}
