//! Property-based integration tests of Ranger's core invariants across crates.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use ranger::bounds::{profile_bounds, ActivationBounds, BoundsConfig};
use ranger::transform::{apply_ranger, RangerConfig};
use ranger_graph::exec::NoopInterceptor;
use ranger_graph::{Executor, GraphBuilder, Op};
use ranger_tensor::{DataType, Tensor};

/// Builds a small random MLP with the given hidden width and returns (graph, output node).
fn mlp(hidden: usize, seed: u64) -> (ranger_graph::Graph, ranger_graph::NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let h = b.dense(x, 4, hidden, &mut rng);
    let h = b.relu(h);
    let h = b.dense(h, hidden, hidden, &mut rng);
    let h = b.relu(h);
    let y = b.dense(h, hidden, 3, &mut rng);
    (b.into_graph(), y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The Ranger transformation never changes fault-free outputs, for any random network
    /// and input, because the profiling bound covers every value observed in profiling and
    /// the same inputs are replayed.
    #[test]
    fn transformation_preserves_fault_free_outputs(
        hidden in 2usize..10,
        seed in 0u64..50,
        scale in 0.1f32..3.0f32,
    ) {
        let (graph, y) = mlp(hidden, seed);
        let samples: Vec<Tensor> = (0..6)
            .map(|i| Tensor::filled(vec![1, 4], scale * (i as f32 + 1.0) / 6.0))
            .collect();
        let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let (protected, _) = apply_ranger(&graph, &bounds, &RangerConfig::default()).unwrap();
        let exec = Executor::new(&graph);
        let exec_p = Executor::new(&protected);
        for s in &samples {
            let a = exec.run_simple(&[("x", s.clone())], y).unwrap();
            let b = exec_p.run_simple(&[("x", s.clone())], y).unwrap();
            prop_assert!(a.approx_eq(&b, 1e-5).unwrap());
        }
    }

    /// Every clamp inserted by Ranger carries a bound that covers the values observed at
    /// that activation during profiling (no legitimate profiled value is ever truncated).
    #[test]
    fn inserted_bounds_cover_profiled_values(hidden in 2usize..8, seed in 0u64..30) {
        let (graph, _) = mlp(hidden, seed);
        let samples: Vec<Tensor> = (0..5)
            .map(|i| Tensor::filled(vec![1, 4], 0.3 * i as f32))
            .collect();
        let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let exec = Executor::new(&graph);
        for s in &samples {
            let values = exec.run(&[("x", s.clone())], &mut NoopInterceptor).unwrap();
            for (node, (lo, hi)) in bounds.iter() {
                let v = values.get(node).unwrap();
                prop_assert!(v.max() <= hi + 1e-6);
                prop_assert!(v.min() >= lo - 1e-6);
            }
        }
    }

    /// With Ranger in place, any single bit flip injected *at a protected activation*
    /// results in downstream values that respect the restriction bound.
    #[test]
    fn protected_activation_output_is_always_within_bounds(
        hidden in 2usize..8,
        seed in 0u64..30,
        bit in 0u32..32,
        element in 0usize..4,
    ) {
        let (graph, _) = mlp(hidden, seed);
        let samples: Vec<Tensor> = (0..4)
            .map(|i| Tensor::filled(vec![1, 4], 0.5 * (i as f32 + 1.0)))
            .collect();
        let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let (protected, _) = apply_ranger(&graph, &bounds, &RangerConfig::default()).unwrap();

        // Pick the first protected ReLU and its clamp in the protected graph.
        let relu = protected
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Op::Relu))
            .unwrap()
            .id;
        let clamp = protected
            .consumers(relu)
            .into_iter()
            .find(|&c| matches!(protected.node(c).unwrap().op, Op::Clamp { .. }))
            .unwrap();
        let (lo, hi) = match protected.node(clamp).unwrap().op {
            Op::Clamp { lo, hi } => (lo, hi),
            _ => unreachable!(),
        };

        // Corrupt one element of the ReLU output with a bit flip and check the clamp
        // output stays within the restriction bound.
        struct Corrupt {
            node: ranger_graph::NodeId,
            element: usize,
            bit: u32,
        }
        impl ranger_graph::Interceptor for Corrupt {
            fn after_op(&mut self, node: &ranger_graph::Node, output: &mut Tensor) {
                if node.id == self.node && self.element < output.len() {
                    let dt = DataType::fixed32();
                    output.data_mut()[self.element] = dt.flip_bit(output.data()[self.element], self.bit);
                }
            }
        }
        let exec = Executor::new(&protected);
        let mut interceptor = Corrupt { node: relu, element, bit };
        let clamp_out = exec
            .run_with(&[("x", samples[1].clone())], clamp, &mut interceptor)
            .unwrap();
        prop_assert!(clamp_out.max() <= hi + 1e-6);
        prop_assert!(clamp_out.min() >= lo - 1e-6);
    }

    /// Tighter percentile bounds never exceed the conservative maximum bounds.
    #[test]
    fn percentile_bounds_are_monotone(hidden in 2usize..8, seed in 0u64..20) {
        let (graph, _) = mlp(hidden, seed);
        let samples: Vec<Tensor> = (0..10)
            .map(|i| Tensor::filled(vec![1, 4], 0.2 * i as f32))
            .collect();
        let full = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let tight = profile_bounds(&graph, "x", &samples, &BoundsConfig::with_percentile(95.0)).unwrap();
        for (node, (_, hi_full)) in full.iter() {
            let (_, hi_tight) = tight.get(node).unwrap();
            prop_assert!(hi_tight <= hi_full + 1e-6);
        }
    }
}

/// A non-proptest sanity check: manual bounds that exclude an activation leave that
/// activation unprotected while others still receive clamps.
#[test]
fn partial_bounds_protect_only_known_activations() {
    let (graph, _) = mlp(4, 0);
    let relus: Vec<_> = graph
        .nodes()
        .iter()
        .filter(|n| matches!(n.op, Op::Relu))
        .map(|n| n.id)
        .collect();
    assert_eq!(relus.len(), 2);
    let mut bounds = ActivationBounds::new();
    bounds.set(relus[0], 0.0, 1.0);
    let (protected, stats) = apply_ranger(&graph, &bounds, &RangerConfig::default()).unwrap();
    assert_eq!(stats.activations_protected, 1);
    assert!(protected
        .consumers(relus[1])
        .iter()
        .all(|&c| !matches!(protected.node(c).unwrap().op, Op::Clamp { .. })));
}
