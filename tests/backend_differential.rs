//! Differential fuzzing of the SIMD backend against the scalar reference, per operator.
//!
//! `tests/backend_parity.rs` pins whole zoo models; this suite attacks the three ported
//! SIMD kernels (conv2d, matmul, softmax) and the delegated remainder one operator at a
//! time, over randomized shapes/strides/padding and **full-range** operands — raw `u32`
//! bit patterns, so subnormals, ±0, infinities and NaN all flow through the kernels —
//! which is where re-association or a fused multiply-add would surface as a bit flip.
//!
//! # Tolerance table
//!
//! Every kernel the SIMD backend currently ports preserves the reference's partial-
//! product order and rounding steps (see `ranger-simd`'s crate docs), so every entry is
//! *bit-exact*; the `Tolerance` machinery exists so a future kernel that genuinely
//! re-associates (and re-measures its SDC baseline) can document a looser bound here.
//!
//! | operator            | tolerance                     | why                          |
//! |---------------------|-------------------------------|------------------------------|
//! | conv2d              | bit-exact (NaN as a class)    | lanes walk `ox`; `(ic,ky,kx)`|
//! |                     |                               | order per output preserved   |
//! | matmul              | bit-exact (NaN as a class)    | `(i,p,j)` nest + `a == 0.0`  |
//! |                     |                               | skip preserved; lanes walk `j`|
//! | softmax             | bit-exact (NaN as a class)    | scalar `exp` pass verbatim;  |
//! |                     |                               | max/divide passes exact      |
//! | everything else     | bit-exact (NaN as a class)    | delegated to the reference   |
//!
//! "NaN as a class": IEEE 754 leaves NaN payload propagation unspecified and LLVM does
//! not pin scalar `fadd`/`fmul` operand order for payloads, so two *scalar* builds can
//! already disagree in NaN payload bits. A NaN output therefore matches any NaN; every
//! non-NaN output must match bit for bit. No judged quantity (argmax, SDC verdicts) can
//! observe a payload.
//!
//! Failures print the operator, the sampled shape and the operand seed, so a failing
//! case replays as a deterministic unit test.
//!
//! CI runs this suite twice: once on the widest tier the host offers, and once under
//! `RANGER_SIMD_FORCE=scalar` to keep the fallback honest.

use proptest::prelude::*;
use ranger_graph::exec::NoopInterceptor;
use ranger_graph::op::Padding;
use ranger_graph::{Graph, NodeId, Op, SimdBackend};
use ranger_tensor::Tensor;

/// Per-operator output tolerance. Only `Bits` is in use — see the module-level table —
/// but `Ulps` documents what a future re-associating kernel would declare.
#[derive(Debug, Clone, Copy)]
enum Tolerance {
    /// Bit-for-bit equality, with NaN compared as a class (any payload matches).
    Bits,
    /// At most this many units in the last place apart (would require re-measuring the
    /// kernel's SDC baseline; no current kernel uses it).
    #[allow(dead_code)]
    Ulps(u32),
}

/// Canonicalizes a float for comparison: every NaN maps to the quiet-NaN bit pattern.
fn bits(v: f32) -> u32 {
    if v.is_nan() {
        0x7FC0_0000
    } else {
        v.to_bits()
    }
}

/// Asserts `simd` matches `reference` under `tolerance`; `context` names the operator,
/// shape and seed so a failure is replayable.
fn assert_matches(reference: &Tensor, simd: &Tensor, tolerance: Tolerance, context: &str) {
    assert_eq!(reference.dims(), simd.dims(), "{context}: shapes diverged");
    for (i, (&r, &s)) in reference.data().iter().zip(simd.data().iter()).enumerate() {
        match tolerance {
            Tolerance::Bits => assert_eq!(
                bits(r),
                bits(s),
                "{context}: element {i} diverged (reference {r} = {:#010x}, simd {s} = {:#010x})",
                r.to_bits(),
                s.to_bits()
            ),
            Tolerance::Ulps(max) => {
                let diff = (bits(r) as i64 - bits(s) as i64).unsigned_abs();
                assert!(
                    diff <= max as u64,
                    "{context}: element {i} is {diff} ulps from the reference \
                     (reference {r}, simd {s}, documented bound {max})"
                );
            }
        }
    }
}

/// SplitMix64-driven full-range `f32` generator: one value in four is a raw bit pattern
/// (hitting NaN, infinities, subnormals and ±0 with realistic frequency), one in eight
/// is an exact ±0 (exercising matmul's `a == 0.0` skip path), and the rest are moderate
/// magnitudes so most accumulations stay finite long enough to exercise real rounding.
struct FullRangeF32 {
    state: u64,
}

impl FullRangeF32 {
    fn new(seed: u64) -> Self {
        FullRangeF32 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f32(&mut self) -> f32 {
        let raw = self.next_u64();
        match raw % 8 {
            0 | 1 => f32::from_bits((raw >> 32) as u32),
            2 => f32::copysign(0.0, ((raw >> 32) as i32) as f32),
            _ => {
                // Moderate magnitudes in roughly [-8, 8).
                let unit = ((raw >> 40) as f32) / ((1u64 << 24) as f32);
                (unit - 0.5) * 16.0
            }
        }
    }

    fn tensor(&mut self, dims: Vec<usize>) -> Tensor {
        let len = dims.iter().product();
        Tensor::from_vec(dims, (0..len).map(|_| self.next_f32()).collect()).unwrap()
    }
}

/// Runs `graph` on the reference and the SIMD backend and asserts every node the run
/// materialized matches under `tolerance`.
fn assert_backends_match(
    graph: &Graph,
    feeds: &[(&str, Tensor)],
    nodes: &[NodeId],
    tolerance: Tolerance,
    context: &str,
) {
    let reference_plan = graph.compile().unwrap();
    let simd_plan = graph.compile_with(&SimdBackend).unwrap();
    let mut reference = reference_plan.buffers();
    let mut simd = simd_plan.buffers();
    reference_plan
        .run_into(&mut reference, feeds, &mut NoopInterceptor)
        .unwrap();
    simd_plan
        .run_into(&mut simd, feeds, &mut NoopInterceptor)
        .unwrap();
    for &node in nodes {
        assert_matches(
            reference.get(node).unwrap(),
            simd.get(node).unwrap(),
            tolerance,
            &format!("{context}, node {node:?}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// conv2d over random geometry (stride, padding, kernels up to and past the input
    /// size) and full-range operands: bit-exact against the reference.
    #[test]
    fn simd_conv2d_is_bit_exact_on_full_range_operands(
        batch in 1usize..3,
        cin in 1usize..4,
        height in 1usize..11,
        width in 1usize..11,
        cout in 1usize..5,
        kernel in 1usize..4,
        stride in 1usize..5,
        same_pad in 0u8..2,
        seed in 0u64..u64::MAX,
    ) {
        // Valid padding requires the kernel to fit inside the input.
        let padding = if same_pad == 1 || kernel > height.min(width) {
            Padding::Same
        } else {
            Padding::Valid
        };
        let context = format!(
            "conv2d [{batch},{cin},{height},{width}] * [{cout},{cin},{kernel},{kernel}] \
             stride {stride} {padding:?} seed {seed}"
        );
        let mut gen = FullRangeF32::new(seed);
        let mut g = Graph::new();
        let x = g.add_input("x");
        let w = g.add_const("w", gen.tensor(vec![cout, cin, kernel, kernel]), true);
        let conv = g.add_node("conv", Op::Conv2d { stride, padding }, vec![x, w]);
        let feeds = [("x", gen.tensor(vec![batch, cin, height, width]))];
        assert_backends_match(&g, &feeds, &[conv], Tolerance::Bits, &context);
    }

    /// matmul over random (m, k, n) — n past the widest vector width to cover tails —
    /// and full-range operands including exact zeros (the `a == 0.0` skip path):
    /// bit-exact against the reference.
    #[test]
    fn simd_matmul_is_bit_exact_on_full_range_operands(
        m in 1usize..8,
        k in 1usize..12,
        n in 1usize..40,
        seed in 0u64..u64::MAX,
    ) {
        let context = format!("matmul [{m},{k}] x [{k},{n}] seed {seed}");
        let mut gen = FullRangeF32::new(seed);
        let mut g = Graph::new();
        let x = g.add_input("x");
        let w = g.add_const("w", gen.tensor(vec![k, n]), true);
        let mm = g.add_node("mm", Op::MatMul, vec![x, w]);
        let feeds = [("x", gen.tensor(vec![m, k]))];
        assert_backends_match(&g, &feeds, &[mm], Tolerance::Bits, &context);
    }

    /// softmax over random row counts and lengths (short rows exercise the pure-scalar
    /// path, long rows the vector max/divide passes and their tails) on full-range
    /// inputs — NaN rows, all-(-inf) rows, overflowing rows: bit-exact against the
    /// reference.
    #[test]
    fn simd_softmax_is_bit_exact_on_full_range_operands(
        rows in 1usize..6,
        row_len in 1usize..40,
        seed in 0u64..u64::MAX,
    ) {
        let context = format!("softmax [{rows},{row_len}] seed {seed}");
        let mut gen = FullRangeF32::new(seed);
        let mut g = Graph::new();
        let x = g.add_input("x");
        let sm = g.add_node("softmax", Op::Softmax, vec![x]);
        let feeds = [("x", gen.tensor(vec![rows, row_len]))];
        assert_backends_match(&g, &feeds, &[sm], Tolerance::Bits, &context);
    }

    /// A mixed graph covering the delegated operators (relu, bias-add, max-pool,
    /// clamp, tanh) feeding the ported kernels: every materialized node matches
    /// bit-for-bit, proving the delegation path shares buffers correctly with the
    /// ported kernels inside one arena.
    #[test]
    fn simd_delegated_operators_compose_bit_exactly_with_ported_kernels(
        size in 4usize..9,
        cout in 1usize..4,
        features in 1usize..12,
        seed in 0u64..u64::MAX,
    ) {
        let context = format!("mixed graph size {size} cout {cout} features {features} seed {seed}");
        let mut gen = FullRangeF32::new(seed);
        let mut g = Graph::new();
        let x = g.add_input("x");
        let w = g.add_const("w", gen.tensor(vec![cout, 1, 3, 3]), true);
        let conv = g.add_node(
            "conv",
            Op::Conv2d { stride: 1, padding: Padding::Same },
            vec![x, w],
        );
        let bias = g.add_const("bias", gen.tensor(vec![cout]), true);
        let biased = g.add_node("biased", Op::BiasAdd, vec![conv, bias]);
        let relu = g.add_node("relu", Op::Relu, vec![biased]);
        let pool = g.add_node("pool", Op::MaxPool { kernel: 2, stride: 2 }, vec![relu]);
        let flat = g.add_node("flat", Op::Flatten, vec![pool]);
        let pooled = size / 2;
        let w2 = g.add_const(
            "w2",
            gen.tensor(vec![cout * pooled * pooled, features]),
            true,
        );
        let mm = g.add_node("mm", Op::MatMul, vec![flat, w2]);
        let clamp = g.add_node("clamp", Op::Clamp { lo: -4.0, hi: 4.0 }, vec![mm]);
        let tanh = g.add_node("tanh", Op::Tanh, vec![clamp]);
        let sm = g.add_node("softmax", Op::Softmax, vec![tanh]);
        let feeds = [("x", gen.tensor(vec![1, 1, size, size]))];
        assert_backends_match(
            &g,
            &feeds,
            &[conv, biased, relu, pool, flat, mm, clamp, tanh, sm],
            Tolerance::Bits,
            &context,
        );
    }
}

/// The gathered strided-conv path, pinned deterministically at widths that push the
/// vectorized output row past the widest lane count the dispatcher can pick (16 on
/// AVX-512) *and* leave a scalar tail: every stride the gather kernel serves (2, 3, 4)
/// stays bit-exact on full-range operands, with both `Same` padding (negative `kx_off`,
/// clamped `ox` ranges) and `Valid` padding (dense runs). The proptest above samples
/// this geometry; this test guarantees the deep-vector-body cases run on every CI box.
#[test]
fn simd_strided_conv_gather_path_is_bit_exact_across_lane_widths() {
    for stride in [2usize, 3, 4] {
        for (width, padding) in [
            (77, Padding::Same),
            (77, Padding::Valid),
            (64, Padding::Same),
            (39, Padding::Valid),
        ] {
            let context = format!("strided conv gather stride {stride} width {width} {padding:?}");
            let mut gen = FullRangeF32::new(0xC0FFEE ^ (stride as u64) << 8 ^ width as u64);
            let mut g = Graph::new();
            let x = g.add_input("x");
            let w = g.add_const("w", gen.tensor(vec![3, 2, 3, 3]), true);
            let conv = g.add_node("conv", Op::Conv2d { stride, padding }, vec![x, w]);
            let feeds = [("x", gen.tensor(vec![2, 2, 9, width]))];
            assert_backends_match(&g, &feeds, &[conv], Tolerance::Bits, &context);
        }
    }
}

/// Invalid operand shapes produce the reference backend's exact error text: the SIMD
/// backend validates through the same shared geometry/shape checks, so a user never
/// sees a backend-specific diagnostic.
#[test]
fn simd_backend_reports_reference_error_text_for_invalid_shapes() {
    let mut g = Graph::new();
    let x = g.add_input("x");
    let w = g.add_const("w", Tensor::filled(vec![3, 4], 1.0), true);
    let mm = g.add_node("mm", Op::MatMul, vec![x, w]);
    let feeds = [("x", Tensor::filled(vec![2, 2], 1.0))];
    let reference = g
        .compile()
        .unwrap()
        .run_simple(&feeds, mm)
        .unwrap_err()
        .to_string();
    let simd = g
        .compile_with(&SimdBackend)
        .unwrap()
        .run_simple(&feeds, mm)
        .unwrap_err()
        .to_string();
    assert_eq!(reference, simd);
}
