//! The fluent [`Pipeline`] builder: the paper's experiment recipe as one first-class API.
//!
//! Every experiment in the reproduction follows the same arc — load (or train) a benchmark
//! model, derive restriction bounds by profiling a fraction of its training data, apply a
//! protection strategy, and measure SDC rates under fault injection. The seed repository
//! hand-wired that arc in every bench binary, the CLI and the tests; `Pipeline` is the
//! single place it lives now.
//!
//! ```no_run
//! use ranger_engine::Pipeline;
//! use ranger::bounds::BoundsConfig;
//! use ranger::transform::RangerConfig;
//! use ranger_inject::CampaignConfig;
//! use ranger_models::ModelKind;
//!
//! let report = Pipeline::for_model(ModelKind::LeNet)
//!     .seed(7)
//!     .profile(BoundsConfig::default())
//!     .protect(RangerConfig::default())
//!     .campaign(CampaignConfig::default())
//!     .run()?;
//! println!("{}", serde_json::to_string_pretty(&report)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Campaign forward passes execute through a compiled
//! [`ExecPlan`](ranger_graph::ExecPlan) (see `ranger_inject::run_campaign`), and the
//! protection step goes through the [`Protector`] trait, so design-alternative and
//! baseline arms are the same one-liner as the paper's default Ranger arm.

use crate::data::{
    canonical_input, correct_classifier_inputs_for, correct_steering_inputs_for, profiling_samples,
    profiling_samples_for, JudgeSpec,
};
use ranger::bounds::{profile_bounds, BoundsConfig};
use ranger::overhead::flops_overhead;
use ranger::protect::{Protector, RangerProtector};
use ranger::transform::{RangerConfig, RangerStats};
use ranger::ActivationBounds;
use ranger_graph::GraphError;
use ranger_inject::{
    run_campaign, CampaignConfig, CampaignError, CampaignResult, InjectionTarget, PreparedCampaign,
    SdcJudge,
};
use ranger_models::zoo::{ModelZoo, ZooError};
use ranger_models::{Model, ModelConfig, ModelKind, Task, TrainConfig};
use ranger_runtime::ThreadPool;
use ranger_serve::{
    campaign_fingerprint, drive, CampaignSink, CheckpointStore, DriveOutcome, ServeError,
};
use serde::Serialize;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;

/// The fraction of the training set the paper profiles restriction bounds from.
pub const DEFAULT_PROFILE_FRACTION: f64 = 0.2;

/// Errors surfaced by [`Pipeline::run`].
#[derive(Debug)]
pub enum PipelineError {
    /// The pipeline configuration is degenerate (see [`Pipeline::run`]).
    InvalidConfig(String),
    /// Training or the model zoo failed.
    Zoo(ZooError),
    /// Profiling, protection or an overhead-accounting forward pass failed.
    Graph(GraphError),
    /// The fault-injection campaign was misconfigured or failed.
    Campaign(CampaignError),
    /// The streamed campaign path (checkpoint store, fingerprinting) failed.
    Serve(ServeError),
    /// A streamed campaign was stopped by its sink before completion; completed chunks
    /// stay durable in the checkpoint directory, so re-running the pipeline resumes.
    Interrupted,
    /// Writing the metrics snapshot requested by [`Pipeline::metrics`] failed.
    MetricsIo(std::io::Error),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::InvalidConfig(message) => {
                write!(f, "invalid pipeline configuration: {message}")
            }
            PipelineError::Zoo(e) => write!(f, "pipeline training step failed: {e}"),
            PipelineError::Graph(e) => write!(f, "pipeline graph step failed: {e}"),
            PipelineError::Campaign(e) => write!(f, "pipeline campaign step failed: {e}"),
            PipelineError::Serve(e) => write!(f, "pipeline streamed-campaign step failed: {e}"),
            PipelineError::Interrupted => write!(
                f,
                "the streamed campaign was stopped by its sink before completion \
                 (completed chunks remain checkpointed; re-run to resume)"
            ),
            PipelineError::MetricsIo(e) => {
                write!(f, "writing the metrics snapshot failed: {e}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::InvalidConfig(_) | PipelineError::Interrupted => None,
            PipelineError::Zoo(e) => Some(e),
            PipelineError::Graph(e) => Some(e),
            PipelineError::Campaign(e) => Some(e),
            PipelineError::Serve(e) => Some(e),
            PipelineError::MetricsIo(e) => Some(e),
        }
    }
}

impl From<ZooError> for PipelineError {
    fn from(e: ZooError) -> Self {
        PipelineError::Zoo(e)
    }
}

impl From<GraphError> for PipelineError {
    fn from(e: GraphError) -> Self {
        PipelineError::Graph(e)
    }
}

impl From<CampaignError> for PipelineError {
    fn from(e: CampaignError) -> Self {
        PipelineError::Campaign(e)
    }
}

impl From<ServeError> for PipelineError {
    fn from(e: ServeError) -> Self {
        // A campaign failure is a campaign failure whichever executor surfaced it.
        match e {
            ServeError::Campaign(e) => PipelineError::Campaign(e),
            other => PipelineError::Serve(other),
        }
    }
}

/// A model protected by a [`Protector`], together with the bounds and statistics.
#[derive(Debug, Clone)]
pub struct ProtectedModel {
    /// The protected model (same metadata as the original, rewritten graph).
    pub model: Model,
    /// The restriction bounds derived from the training data.
    pub bounds: ActivationBounds,
    /// Insertion statistics (clamp counts, instrumentation time).
    pub stats: RangerStats,
}

/// Profiles restriction bounds from `fraction` of the model's training data and applies
/// `protector`.
///
/// # Errors
///
/// Returns a [`GraphError`] if profiling or the transformation fails.
pub fn protect_model(
    model: &Model,
    seed: u64,
    fraction: f64,
    bounds_config: &BoundsConfig,
    protector: &dyn Protector,
) -> Result<ProtectedModel, GraphError> {
    let samples = profiling_samples(model.config.kind, seed, fraction);
    protect_with_samples(model, &samples, bounds_config, protector)
}

/// [`protect_model`], but profiling the dataset generated by an explicit training recipe
/// (so a custom-trained model is profiled on the data it actually saw).
///
/// # Errors
///
/// Returns a [`GraphError`] if profiling or the transformation fails.
pub fn protect_model_for(
    model: &Model,
    seed: u64,
    fraction: f64,
    bounds_config: &BoundsConfig,
    protector: &dyn Protector,
    recipe: &TrainConfig,
) -> Result<ProtectedModel, GraphError> {
    let samples = profiling_samples_for(model.config.kind, seed, fraction, recipe);
    protect_with_samples(model, &samples, bounds_config, protector)
}

fn protect_with_samples(
    model: &Model,
    samples: &[ranger_tensor::Tensor],
    bounds_config: &BoundsConfig,
    protector: &dyn Protector,
) -> Result<ProtectedModel, GraphError> {
    let bounds = profile_bounds(&model.graph, &model.input_name, samples, bounds_config)?;
    let (graph, stats) = protector.protect(&model.graph, &bounds)?;
    let mut protected = model.clone();
    protected.graph = graph;
    Ok(ProtectedModel {
        model: protected,
        bounds,
        stats,
    })
}

/// Runs a fault-injection campaign against a model (protected or not).
///
/// # Errors
///
/// Returns a [`CampaignError`] if the campaign configuration is degenerate or any forward
/// pass fails.
pub fn run_model_campaign(
    model: &Model,
    inputs: &[ranger_tensor::Tensor],
    judge: &dyn ranger_inject::SdcJudge,
    config: &CampaignConfig,
) -> Result<CampaignResult, CampaignError> {
    let target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    run_campaign(&target, inputs, judge, config)
}

/// Runs a fault-injection campaign through the checkpointed streaming executor shared
/// with the campaign service: the trial space is decomposed into the canonical chunk
/// partition, every completed chunk is appended (and fsynced) to a fingerprint-keyed
/// checkpoint file under `checkpoint_dir` before its event reaches `sink`, and a rerun
/// over the same directory resumes from the durable prefix — reproducing bit-for-bit
/// the counts of [`run_model_campaign`].
///
/// # Errors
///
/// Returns [`PipelineError::Interrupted`] if `sink` stops the campaign early (completed
/// chunks stay durable), and a campaign or serve error if the configuration is
/// degenerate or the checkpoint store cannot be used.
pub fn drive_model_campaign(
    model: &Model,
    inputs: &[ranger_tensor::Tensor],
    judge: &dyn SdcJudge,
    config: &CampaignConfig,
    checkpoint_dir: &Path,
    sink: &mut dyn CampaignSink,
) -> Result<CampaignResult, PipelineError> {
    config.validate()?;
    let target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    let chunk_len = ranger_inject::default_chunk_len(config);
    let fingerprint =
        campaign_fingerprint(&target, inputs, config, &judge.categories(), chunk_len)?;
    let mut store = CheckpointStore::open(
        &checkpoint_dir.join(format!("{fingerprint}.jsonl")),
        &fingerprint,
    )?;
    let prepared = PreparedCampaign::new(&target, inputs, judge, config)?;
    let pool = ThreadPool::new(config.workers);
    let cancel = AtomicBool::new(false);
    match drive(&prepared, &mut store, &pool, &cancel, sink)? {
        DriveOutcome::Completed(result) => Ok(result),
        DriveOutcome::Stopped(_) => Err(PipelineError::Interrupted),
    }
}

/// Runs a fault-injection campaign by sharding its chunk space across `hosts`
/// in-process worker hosts coordinated by the campaign service's lease + merge-verify
/// machinery (see `ranger_serve::run_sharded`) — the multi-host execution path, minus
/// the sockets. Checkpointing, resumption and the event stream behave exactly like
/// [`drive_model_campaign`], and the merged counts are bit-for-bit the single-host
/// counts.
///
/// # Errors
///
/// As [`drive_model_campaign`].
pub fn shard_model_campaign(
    model: &Model,
    inputs: &[ranger_tensor::Tensor],
    judge: &dyn SdcJudge,
    config: &CampaignConfig,
    checkpoint_dir: &Path,
    hosts: usize,
    sink: &mut dyn CampaignSink,
) -> Result<CampaignResult, PipelineError> {
    config.validate()?;
    let target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    let chunk_len = ranger_inject::default_chunk_len(config);
    let fingerprint =
        campaign_fingerprint(&target, inputs, config, &judge.categories(), chunk_len)?;
    let store = CheckpointStore::open(
        &checkpoint_dir.join(format!("{fingerprint}.jsonl")),
        &fingerprint,
    )?;
    let prepared = PreparedCampaign::new(&target, inputs, judge, config)?;
    let options = ranger_serve::ShardOptions::hosts(hosts);
    match ranger_serve::run_sharded(&prepared, store, &options, sink)? {
        DriveOutcome::Completed(result) => Ok(result),
        DriveOutcome::Stopped(_) => Err(PipelineError::Interrupted),
    }
}

/// How the pipeline executes its campaign arms: directly in-process, through the
/// checkpointed streaming driver shared with the campaign service, or sharded across
/// in-process worker hosts via the lease coordinator.
enum CampaignExec<'s> {
    InProcess,
    Streamed {
        dir: PathBuf,
        sink: &'s mut dyn CampaignSink,
    },
    Sharded {
        dir: PathBuf,
        hosts: usize,
        sink: &'s mut dyn CampaignSink,
    },
}

impl CampaignExec<'_> {
    fn run(
        &mut self,
        model: &Model,
        inputs: &[ranger_tensor::Tensor],
        judge: &dyn SdcJudge,
        config: &CampaignConfig,
    ) -> Result<CampaignResult, PipelineError> {
        match self {
            CampaignExec::InProcess => Ok(run_model_campaign(model, inputs, judge, config)?),
            CampaignExec::Streamed { dir, sink } => {
                drive_model_campaign(model, inputs, judge, config, dir, &mut **sink)
            }
            CampaignExec::Sharded { dir, hosts, sink } => {
                shard_model_campaign(model, inputs, judge, config, dir, *hosts, &mut **sink)
            }
        }
    }
}

/// The SDC rate of one judge category, with counts and the 95% confidence half-width.
#[derive(Debug, Clone, Serialize)]
pub struct RateSummary {
    /// Category name (e.g. `top-1`, `threshold-15`).
    pub category: String,
    /// SDC trials observed.
    pub sdc_count: u64,
    /// Total trials.
    pub trials: u64,
    /// SDC rate in percent.
    pub sdc_percent: f64,
    /// 95% confidence half-width in percentage points (normal approximation).
    pub ci95_percent: f64,
}

impl RateSummary {
    fn from_result(result: &CampaignResult) -> Vec<RateSummary> {
        result
            .rates()
            .into_iter()
            .map(|(category, rate)| RateSummary {
                category,
                sdc_count: rate.successes,
                trials: rate.trials,
                sdc_percent: rate.rate_percent(),
                ci95_percent: rate.confidence95_percent(),
            })
            .collect()
    }
}

/// Side-by-side campaign results for the unprotected and protected arms.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignComparison {
    /// The execution backend every forward pass (golden and faulty) ran on.
    pub backend: String,
    /// Trials per input.
    pub trials_per_input: usize,
    /// Number of (correctly predicted) inputs injected into.
    pub inputs: usize,
    /// Per-category rates of the unprotected model.
    pub baseline: Vec<RateSummary>,
    /// Per-category rates of the protected model.
    pub protected: Vec<RateSummary>,
    /// SDC coverage per category: `1 - protected/baseline`, in percent (clamped to
    /// `[0, 100]`; 0 when the baseline rate is 0).
    pub coverage_percent: Vec<f64>,
}

/// Bounds-derivation summary.
#[derive(Debug, Clone, Serialize)]
pub struct BoundsSummary {
    /// Number of activation operations that received a restriction bound.
    pub activations_bounded: usize,
    /// Bytes needed to store the bounds at deployment time.
    pub storage_bytes: usize,
    /// The percentile used for the upper bound (100 = observed maximum).
    pub percentile: f64,
    /// Fraction of the training set profiled.
    pub profile_fraction: f64,
}

/// FLOPs overhead summary (Table IV's accounting).
#[derive(Debug, Clone, Serialize)]
pub struct OverheadSummary {
    /// FLOPs of one unprotected forward pass.
    pub baseline_flops: u64,
    /// FLOPs of one protected forward pass.
    pub protected_flops: u64,
    /// Relative FLOPs overhead in percent.
    pub flops_percent: f64,
}

/// Everything one pipeline run produced, serializable as a JSON experiment record.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// The model's paper name (e.g. `LeNet`).
    pub model: String,
    /// The seed the model, datasets and campaigns were derived from.
    pub seed: u64,
    /// The protection strategy applied (a [`Protector::name`]).
    pub protector: String,
    /// Validation accuracy of the trained model (top-1, or within-15° for steering).
    pub validation_accuracy: f64,
    /// Bounds-derivation summary.
    pub bounds: BoundsSummary,
    /// Insertion statistics of the protection step.
    pub insertion: RangerStats,
    /// FLOPs and memory overhead of the protection.
    pub overhead: OverheadSummary,
    /// Campaign results, if a campaign was configured.
    pub campaign: Option<CampaignComparison>,
}

/// The outcome of [`Pipeline::run_full`]: the serializable report plus the artifacts the
/// report summarizes, for callers that keep computing (parity tests, custom tables,
/// follow-up campaigns).
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The serializable experiment record.
    pub report: PipelineReport,
    /// The trained, unprotected model.
    pub model: Model,
    /// The protected model with its bounds and stats.
    pub protected: ProtectedModel,
    /// Raw campaign result of the unprotected arm, if a campaign ran.
    pub baseline_result: Option<CampaignResult>,
    /// Raw campaign result of the protected arm, if a campaign ran.
    pub protected_result: Option<CampaignResult>,
    /// The (correctly predicted) inputs the campaign injected into; empty when no
    /// campaign was configured. Exposed so comparison arms (e.g. the Table VI baselines)
    /// can be judged on the exact same inputs without re-running selection.
    pub campaign_inputs: Vec<ranger_tensor::Tensor>,
}

/// Fluent builder for the profile → protect → inject experiment arc.
///
/// See the [module docs](self) for an end-to-end example. Every setter has a paper-faithful
/// default: seed 42, 20% profiling fraction, maximum-observed bounds, saturating Ranger
/// protection, and no campaign until [`Pipeline::campaign`] is called.
///
/// Degenerate configurations are rejected by [`Pipeline::run`] before any training
/// starts:
///
/// ```
/// use ranger_engine::{Pipeline, PipelineError};
/// use ranger_models::ModelKind;
///
/// let err = Pipeline::for_model(ModelKind::LeNet)
///     .profile_fraction(1.5)
///     .run()
///     .unwrap_err();
/// assert!(matches!(err, PipelineError::InvalidConfig(_)));
/// assert!(err.to_string().contains("profile fraction"));
/// ```
pub struct Pipeline {
    config: ModelConfig,
    seed: u64,
    train: Option<TrainConfig>,
    zoo: Option<ModelZoo>,
    bounds_config: BoundsConfig,
    profile_fraction: f64,
    protector: Box<dyn Protector>,
    protector_name: String,
    campaign: Option<CampaignConfig>,
    batch: Option<usize>,
    workers: Option<usize>,
    backend: Option<ranger_graph::BackendKind>,
    tile: Option<usize>,
    inputs: usize,
    judge: JudgeSpec,
    steering_tolerance_degrees: f32,
    serve_checkpoints: Option<PathBuf>,
    metrics_json: Option<PathBuf>,
}

impl Pipeline {
    /// Starts a pipeline for the paper-default configuration of `kind`.
    pub fn for_model(kind: ModelKind) -> Self {
        Pipeline::for_config(ModelConfig::new(kind))
    }

    /// Starts a pipeline for an explicit model configuration (e.g. the Tanh variant used
    /// by the Hong et al. baseline).
    pub fn for_config(config: ModelConfig) -> Self {
        let protector = RangerProtector::default();
        Pipeline {
            config,
            seed: 42,
            train: None,
            zoo: None,
            bounds_config: BoundsConfig::default(),
            profile_fraction: DEFAULT_PROFILE_FRACTION,
            protector_name: protector.name(),
            protector: Box::new(protector),
            campaign: None,
            batch: None,
            workers: None,
            backend: None,
            tile: None,
            inputs: 5,
            judge: JudgeSpec::Auto,
            steering_tolerance_degrees: 60.0,
            serve_checkpoints: None,
            metrics_json: None,
        }
    }

    /// Sets the seed for training, datasets, profiling and campaigns.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Trains with an explicit recipe (bypassing the zoo cache) instead of
    /// `load_or_train` with the kind's default recipe.
    pub fn train(mut self, config: TrainConfig) -> Self {
        self.train = Some(config);
        self
    }

    /// Uses a specific model zoo (cache directory) instead of the default one.
    pub fn zoo(mut self, zoo: ModelZoo) -> Self {
        self.zoo = Some(zoo);
        self
    }

    /// Configures the bound-profiling step.
    pub fn profile(mut self, config: BoundsConfig) -> Self {
        self.bounds_config = config;
        self
    }

    /// Sets the fraction of the training set profiled for bounds (the paper uses 0.2).
    ///
    /// Values outside `[0, 1]` are rejected by [`Pipeline::run`] with a descriptive
    /// error; within that range, degenerate values are clamped up to a 1% floor at
    /// sampling time so sensitivity sweeps can pass raw grid values.
    pub fn profile_fraction(mut self, fraction: f64) -> Self {
        self.profile_fraction = fraction;
        self
    }

    /// Protects with Ranger under the given configuration (the default protection).
    pub fn protect(self, config: RangerConfig) -> Self {
        self.protect_with(RangerProtector::new(config))
    }

    /// Protects with an arbitrary [`Protector`] (design alternatives, baselines).
    pub fn protect_with(mut self, protector: impl Protector + 'static) -> Self {
        self.protector_name = protector.name();
        self.protector = Box::new(protector);
        self
    }

    /// Enables the fault-injection campaign step with this configuration.
    pub fn campaign(mut self, config: CampaignConfig) -> Self {
        self.campaign = Some(config);
        self
    }

    /// Sets the campaign batch size: how many injection trials (or golden inputs) each
    /// forward pass executes. Overrides [`CampaignConfig::batch`] in whatever config was
    /// (or will be) passed to [`Pipeline::campaign`]. Any batch size produces bit-for-bit
    /// the SDC counts of `batch = 1`; larger batches amortize per-pass overhead.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Sets the campaign worker count: how many threads execute injection trials.
    /// Overrides [`CampaignConfig::workers`] in whatever config was (or will be) passed
    /// to [`Pipeline::campaign`]. Any worker count produces bit-for-bit the SDC counts
    /// of `workers = 1` (fault plans are keyed by `(input, trial)` index); more workers
    /// cut campaign wall-clock on multi-core hosts.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the campaign execution backend: every golden and faulty forward pass runs on
    /// it. Overrides [`CampaignConfig::backend`] in whatever config was (or will be)
    /// passed to [`Pipeline::campaign`], and — when the configured fault model's datatype
    /// no longer matches a fixed-point backend — aligns the fault datatype to the
    /// backend's word format (the only valid pairing; see
    /// [`CampaignConfig::validate`]), keeping the flip count.
    pub fn backend(mut self, backend: ranger_graph::BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Sets the campaign row-group size: how many trials of each batched forward pass
    /// the tiled scheduler executes per row group (`0` = untiled,
    /// [`ranger_inject::TILE_AUTO`] = derive from the warmed plan's cache footprint).
    /// Overrides [`CampaignConfig::tile`] in whatever config was (or will be) passed to
    /// [`Pipeline::campaign`]. Any tile size produces bit-for-bit the SDC counts of the
    /// untiled batched pass; cache-sized row groups cut batched wall-clock on
    /// convolutional models.
    pub fn tile(mut self, tile: usize) -> Self {
        self.tile = Some(tile);
        self
    }

    /// Sets how many correctly-predicted validation inputs the campaign injects into.
    pub fn inputs(mut self, n: usize) -> Self {
        self.inputs = n;
        self
    }

    /// Overrides the SDC criterion (the default follows the paper per task).
    pub fn judge(mut self, judge: JudgeSpec) -> Self {
        self.judge = judge;
        self
    }

    /// Sets the checkpoint directory [`Pipeline::serve_run`] keeps its per-arm campaign
    /// checkpoint files under. Ignored by [`Pipeline::run`] / [`Pipeline::run_full`].
    pub fn serve_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.serve_checkpoints = Some(dir.into());
        self
    }

    /// Turns the metrics registry on for this run and writes its snapshot — the
    /// one-line JSON document of `ranger_obs::MetricsSnapshot::to_json`, covering
    /// per-op plan timings, pool worker tallies and campaign latency histograms — to
    /// `path` once the pipeline finishes. Metrics draw no RNG and never steer
    /// execution, so every reported count is bit-for-bit the unobserved run's.
    pub fn metrics(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_json = Some(path.into());
        self
    }

    /// Runs the pipeline and returns the serializable report.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] if training, profiling, protection or a campaign fails.
    pub fn run(self) -> Result<PipelineReport, PipelineError> {
        Ok(self.run_full()?.report)
    }

    /// Runs the pipeline and returns the report together with the underlying artifacts.
    ///
    /// # Errors
    ///
    /// See [`Pipeline::run`].
    pub fn run_full(self) -> Result<PipelineOutcome, PipelineError> {
        self.run_with_exec(&mut CampaignExec::InProcess)
    }

    /// Runs the pipeline like [`Pipeline::run_full`], but executes both campaign arms
    /// through the checkpointed streaming driver shared with the campaign service:
    /// `sink` observes both arms' full event streams (the baseline arm first, then the
    /// protected arm), and every completed chunk is durable under the configured
    /// checkpoint directory before its event is emitted — so a killed pipeline re-run
    /// resumes its campaign arms instead of recomputing them, with bit-for-bit
    /// identical counts.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] if [`Pipeline::serve_checkpoint_dir`]
    /// was not set, [`PipelineError::Interrupted`] if `sink` stops a campaign arm
    /// early, and the [`Pipeline::run`] errors otherwise.
    pub fn serve_run(
        mut self,
        sink: &mut dyn CampaignSink,
    ) -> Result<PipelineOutcome, PipelineError> {
        let dir = self.serve_checkpoints.take().ok_or_else(|| {
            PipelineError::InvalidConfig(
                "serve_run needs a checkpoint directory; call serve_checkpoint_dir(..) first"
                    .to_string(),
            )
        })?;
        self.run_with_exec(&mut CampaignExec::Streamed { dir, sink })
    }

    /// Runs the pipeline like [`Pipeline::serve_run`], but executes both campaign arms
    /// sharded across `hosts` in-process worker hosts coordinated by the campaign
    /// service's lease table and merge-verify pass — the full multi-host machinery,
    /// minus the sockets. Counts are bit-for-bit the single-host counts, and the
    /// checkpoint files interoperate with [`Pipeline::serve_run`]'s: a sharded run can
    /// resume a streamed one and vice versa.
    ///
    /// # Errors
    ///
    /// As [`Pipeline::serve_run`].
    pub fn shard_run(
        mut self,
        sink: &mut dyn CampaignSink,
        hosts: usize,
    ) -> Result<PipelineOutcome, PipelineError> {
        let dir = self.serve_checkpoints.take().ok_or_else(|| {
            PipelineError::InvalidConfig(
                "shard_run needs a checkpoint directory; call serve_checkpoint_dir(..) first"
                    .to_string(),
            )
        })?;
        self.run_with_exec(&mut CampaignExec::Sharded { dir, hosts, sink })
    }

    fn run_with_exec(self, exec: &mut CampaignExec<'_>) -> Result<PipelineOutcome, PipelineError> {
        if self.metrics_json.is_some() {
            // Must be on before plans are warmed: timing slots are sized at warm time.
            ranger_obs::set_enabled(true);
        }
        if !(0.0..=1.0).contains(&self.profile_fraction) || self.profile_fraction.is_nan() {
            return Err(PipelineError::InvalidConfig(format!(
                "profile fraction must lie in [0, 1], got {} (the paper profiles 20% of \
                 the training set)",
                self.profile_fraction
            )));
        }
        let campaign_config = self.campaign.map(|mut config| {
            if let Some(batch) = self.batch {
                config.batch = batch;
            }
            if let Some(workers) = self.workers {
                config.workers = workers;
            }
            if let Some(tile) = self.tile {
                config.tile = tile;
            }
            if let Some(backend) = self.backend {
                config.backend = backend;
                if let Some(spec) = backend.spec() {
                    // A fixed-point backend flips bits in its own words; the datatype is
                    // the backend's format by construction (flip count is preserved).
                    config.fault.datatype = ranger_tensor::DataType::Fixed(spec);
                }
            }
            config
        });
        if let Some(config) = &campaign_config {
            config.validate()?;
        }
        let zoo = self.zoo.unwrap_or_else(ModelZoo::with_default_dir);
        let trained = match &self.train {
            Some(recipe) => zoo.train_with(&self.config, recipe, self.seed)?,
            None => zoo.load_or_train(&self.config, self.seed)?,
        };
        let model = trained.model;
        // Profiling and input selection must regenerate the dataset the model was
        // actually trained on, which a custom recipe re-sizes.
        let recipe = self
            .train
            .unwrap_or_else(|| TrainConfig::for_kind(self.config.kind));

        let protected = protect_model_for(
            &model,
            self.seed,
            self.profile_fraction,
            &self.bounds_config,
            self.protector.as_ref(),
            &recipe,
        )?;

        let input = canonical_input(&model);
        let overhead = flops_overhead(
            &model.graph,
            &protected.model.graph,
            &model.input_name,
            &input,
        )?;

        let (campaign, baseline_result, protected_result, campaign_inputs) = match &campaign_config
        {
            None => (None, None, None, Vec::new()),
            Some(config) => {
                let inputs = match model.task {
                    Task::Classification { .. } => {
                        correct_classifier_inputs_for(&model, self.seed, self.inputs, &recipe)?
                    }
                    Task::Regression { .. } => correct_steering_inputs_for(
                        &model,
                        self.seed,
                        self.inputs,
                        self.steering_tolerance_degrees,
                        &recipe,
                    )?,
                };
                let judge = self.judge.build(&model);
                let baseline = exec.run(&model, &inputs, judge.as_ref(), config)?;
                let shielded = exec.run(&protected.model, &inputs, judge.as_ref(), config)?;
                let coverage_percent = baseline
                    .rates()
                    .iter()
                    .zip(shielded.rates())
                    .map(|((_, base), (_, prot))| {
                        if base.rate() <= 0.0 {
                            0.0
                        } else {
                            ((1.0 - prot.rate() / base.rate()) * 100.0).clamp(0.0, 100.0)
                        }
                    })
                    .collect();
                (
                    Some(CampaignComparison {
                        backend: config.backend.backend().name().to_string(),
                        trials_per_input: config.trials,
                        inputs: inputs.len(),
                        baseline: RateSummary::from_result(&baseline),
                        protected: RateSummary::from_result(&shielded),
                        coverage_percent,
                    }),
                    Some(baseline),
                    Some(shielded),
                    inputs,
                )
            }
        };

        let report = PipelineReport {
            model: self.config.kind.paper_name().to_string(),
            seed: self.seed,
            protector: self.protector_name,
            validation_accuracy: trained.validation_accuracy,
            bounds: BoundsSummary {
                activations_bounded: protected.bounds.len(),
                storage_bytes: protected.bounds.storage_bytes(),
                percentile: self.bounds_config.percentile,
                profile_fraction: self.profile_fraction,
            },
            insertion: protected.stats,
            overhead: OverheadSummary {
                baseline_flops: overhead.baseline_flops,
                protected_flops: overhead.protected_flops,
                flops_percent: overhead.percent(),
            },
            campaign,
        };
        if let Some(path) = &self.metrics_json {
            let mut json = ranger_obs::registry().snapshot().to_json();
            json.push('\n');
            std::fs::write(path, json).map_err(PipelineError::MetricsIo)?;
        }
        Ok(PipelineOutcome {
            report,
            model,
            protected,
            baseline_result,
            protected_result,
            campaign_inputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranger::protect::Unprotected;
    use ranger_inject::FaultModel;

    fn quick_recipe() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 16,
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            train_samples: 60,
            validation_samples: 24,
        }
    }

    fn temp_zoo(tag: &str) -> ModelZoo {
        let dir =
            std::env::temp_dir().join(format!("ranger-engine-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ModelZoo::new(dir)
    }

    #[test]
    fn pipeline_produces_a_complete_report() {
        let report = Pipeline::for_model(ModelKind::LeNet)
            .seed(7)
            .train(quick_recipe())
            .zoo(temp_zoo("report"))
            .profile(BoundsConfig::default())
            .protect(RangerConfig::default())
            .campaign(CampaignConfig {
                trials: 30,
                batch: 1,
                workers: 1,
                seed: 7,
                ..CampaignConfig::default()
            })
            .inputs(2)
            .run()
            .unwrap();
        assert_eq!(report.model, "LeNet");
        assert_eq!(report.seed, 7);
        assert_eq!(report.protector, "ranger");
        assert!(report.insertion.clamps_inserted > 0);
        assert!(report.bounds.activations_bounded > 0);
        assert!(report.overhead.flops_percent > 0.0);
        // The report serializes as a JSON experiment record.
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"model\": \"LeNet\""));
        let campaign = report.campaign.expect("campaign configured");
        assert_eq!(campaign.trials_per_input, 30);
        assert_eq!(campaign.inputs, 2);
        assert_eq!(campaign.baseline.len(), campaign.protected.len());
        assert_eq!(campaign.baseline[0].trials, 60);
    }

    #[test]
    fn pipeline_without_campaign_skips_injection() {
        let report = Pipeline::for_model(ModelKind::LeNet)
            .seed(8)
            .train(quick_recipe())
            .zoo(temp_zoo("nocampaign"))
            .run()
            .unwrap();
        assert!(report.campaign.is_none());
        assert!(report.insertion.clamps_inserted > 0);
    }

    #[test]
    fn unprotected_arm_reports_zero_insertions_and_coverage() {
        let outcome = Pipeline::for_model(ModelKind::LeNet)
            .seed(9)
            .train(quick_recipe())
            .zoo(temp_zoo("unprot"))
            .protect_with(Unprotected)
            .campaign(CampaignConfig {
                trials: 10,
                batch: 1,
                workers: 1,
                seed: 9,
                ..CampaignConfig::default()
            })
            .inputs(1)
            .run_full()
            .unwrap();
        assert_eq!(outcome.report.protector, "unprotected");
        assert_eq!(outcome.report.insertion.clamps_inserted, 0);
        assert_eq!(outcome.model.graph, outcome.protected.model.graph);
        // Identical graphs ⇒ identical campaigns ⇒ zero coverage.
        let campaign = outcome.report.campaign.expect("campaign ran");
        assert!(campaign.coverage_percent.iter().all(|&c| c == 0.0));
        assert_eq!(
            outcome.baseline_result.unwrap().sdc_counts,
            outcome.protected_result.unwrap().sdc_counts
        );
    }

    #[test]
    fn degenerate_configs_fail_before_training_starts() {
        // None of these should touch the zoo (or the filesystem): they are rejected up
        // front with a descriptive error.
        for fraction in [-0.1, 1.5, f64::NAN] {
            let err = Pipeline::for_model(ModelKind::LeNet)
                .profile_fraction(fraction)
                .run()
                .unwrap_err();
            assert!(
                matches!(err, PipelineError::InvalidConfig(_)),
                "fraction {fraction} should be rejected, got {err:?}"
            );
            assert!(err.to_string().contains("profile fraction"));
        }
        let zero_trials = Pipeline::for_model(ModelKind::LeNet)
            .campaign(CampaignConfig {
                trials: 0,
                ..CampaignConfig::default()
            })
            .run()
            .unwrap_err();
        assert!(zero_trials.to_string().contains("trials must be positive"));
        let zero_batch = Pipeline::for_model(ModelKind::LeNet)
            .campaign(CampaignConfig::default())
            .batch(0)
            .run()
            .unwrap_err();
        assert!(zero_batch.to_string().contains("batch must be positive"));
        let zero_workers = Pipeline::for_model(ModelKind::LeNet)
            .campaign(CampaignConfig::default())
            .workers(0)
            .run()
            .unwrap_err();
        assert!(zero_workers
            .to_string()
            .contains("workers must be positive"));
    }

    /// The `.workers(n)` knob changes only the execution strategy: a parallel pipeline
    /// campaign reports exactly the counts of the serial one.
    #[test]
    fn parallel_pipeline_campaign_matches_serial_bit_for_bit() {
        let run = |workers: usize| {
            Pipeline::for_model(ModelKind::LeNet)
                .seed(23)
                .train(quick_recipe())
                .zoo(temp_zoo("workers"))
                .campaign(CampaignConfig {
                    trials: 20,
                    batch: 1,
                    workers: 1,
                    seed: 23,
                    ..CampaignConfig::default()
                })
                .workers(workers)
                .inputs(2)
                .run_full()
                .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(
            serial.baseline_result.unwrap().sdc_counts,
            parallel.baseline_result.unwrap().sdc_counts,
            "parallel baseline arm diverged from serial"
        );
        assert_eq!(
            serial.protected_result.unwrap().sdc_counts,
            parallel.protected_result.unwrap().sdc_counts,
            "parallel protected arm diverged from serial"
        );
    }

    /// The `.backend(...)` knob runs the whole campaign on the fixed-point path: the
    /// report is produced end-to-end, the fault datatype follows the backend's word
    /// format, and worker count still cannot change the counts.
    #[test]
    fn fixed16_pipeline_campaign_runs_end_to_end_and_stays_deterministic() {
        use ranger_inject::BackendKind;
        let run = |workers: usize| {
            Pipeline::for_model(ModelKind::LeNet)
                .seed(29)
                .train(quick_recipe())
                .zoo(temp_zoo("fixed16"))
                .campaign(CampaignConfig {
                    trials: 15,
                    batch: 1,
                    workers: 1,
                    backend: BackendKind::F32, // overridden by the knob below
                    fault: FaultModel::single_bit_fixed32(), // realigned by the knob below
                    seed: 29,
                    tile: 0,
                })
                .backend(BackendKind::Fixed16)
                .workers(workers)
                .inputs(1)
                .run_full()
                .unwrap()
        };
        let serial = run(1);
        // The fault datatype was aligned to the backend's word format.
        assert_eq!(
            serial.report.campaign.as_ref().unwrap().trials_per_input,
            15
        );
        let parallel = run(4);
        assert_eq!(
            serial.baseline_result.as_ref().unwrap().sdc_counts,
            parallel.baseline_result.as_ref().unwrap().sdc_counts,
            "fixed16 baseline arm diverged across worker counts"
        );
        assert_eq!(
            serial.protected_result.as_ref().unwrap().sdc_counts,
            parallel.protected_result.as_ref().unwrap().sdc_counts,
            "fixed16 protected arm diverged across worker counts"
        );
    }

    /// The `.backend(BackendKind::Simd)` knob computes the same f32 semantics on the
    /// vector path, so the whole campaign section of the report — SDC counts included —
    /// is bit-for-bit the f32 pipeline's, and the report names the backend that ran.
    #[test]
    fn simd_pipeline_report_is_bit_for_bit_the_f32_report() {
        use ranger_inject::BackendKind;
        let run = |backend: BackendKind, zoo_tag: &str| {
            Pipeline::for_model(ModelKind::LeNet)
                .seed(23)
                .train(quick_recipe())
                .zoo(temp_zoo(zoo_tag))
                .campaign(CampaignConfig {
                    trials: 12,
                    batch: 1,
                    workers: 1,
                    backend: BackendKind::F32, // overridden by the knob below
                    fault: FaultModel::single_bit_fixed32(),
                    seed: 23,
                    tile: 0,
                })
                .backend(backend)
                .inputs(1)
                .run_full()
                .unwrap()
        };
        let f32_run = run(BackendKind::F32, "simd-parity-f32");
        let simd_run = run(BackendKind::Simd, "simd-parity-simd");
        assert_eq!(
            f32_run.baseline_result.as_ref().unwrap().sdc_counts,
            simd_run.baseline_result.as_ref().unwrap().sdc_counts,
            "simd baseline arm diverged from the f32 reference"
        );
        assert_eq!(
            f32_run.protected_result.as_ref().unwrap().sdc_counts,
            simd_run.protected_result.as_ref().unwrap().sdc_counts,
            "simd protected arm diverged from the f32 reference"
        );
        assert_eq!(
            simd_run.report.campaign.as_ref().unwrap().backend,
            "simd",
            "the report must name the backend that executed the campaign"
        );
        assert_eq!(f32_run.report.campaign.as_ref().unwrap().backend, "f32");
    }

    /// A mismatched backend/fault pairing in an explicit campaign config surfaces as a
    /// campaign error before any forward pass runs.
    #[test]
    fn mismatched_backend_fault_pairing_is_a_campaign_error() {
        use ranger_inject::BackendKind;
        let err = Pipeline::for_model(ModelKind::LeNet)
            .campaign(CampaignConfig {
                backend: BackendKind::Fixed32,
                fault: FaultModel::single_bit_fixed16(),
                ..CampaignConfig::default()
            })
            .run()
            .unwrap_err();
        assert!(
            err.to_string().contains("does not match"),
            "unexpected error: {err}"
        );
    }

    /// `serve_run` drives both campaign arms through the checkpointed streaming
    /// executor: results match `run_full` bit-for-bit, the sink observes both arms'
    /// full event streams, and a second run over the same checkpoint directory replays
    /// every chunk from the durable store instead of recomputing it.
    #[test]
    fn serve_run_matches_run_full_and_resumes_from_its_checkpoints() {
        use ranger_serve::{CampaignEvent, CollectSink};
        let build = || {
            Pipeline::for_model(ModelKind::LeNet)
                .seed(31)
                .train(quick_recipe())
                .zoo(temp_zoo("serve"))
                .campaign(CampaignConfig {
                    trials: 12,
                    batch: 1,
                    workers: 2,
                    seed: 31,
                    ..CampaignConfig::default()
                })
                .inputs(2)
        };
        let reference = build().run_full().unwrap();

        let dir =
            std::env::temp_dir().join(format!("ranger-engine-serve-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut sink = CollectSink::new();
        let outcome = build()
            .serve_checkpoint_dir(&dir)
            .serve_run(&mut sink)
            .unwrap();
        assert_eq!(outcome.baseline_result, reference.baseline_result);
        assert_eq!(outcome.protected_result, reference.protected_result);
        // Two arms ⇒ two complete event streams, nothing resumed on the first pass.
        let dones = sink
            .events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::CampaignDone { .. }))
            .count();
        assert_eq!(dones, 2);
        assert!(!sink
            .events
            .iter()
            .any(|e| matches!(e, CampaignEvent::ChunkDone { resumed: true, .. })));

        // A second run over the same directory finds every chunk durable: both arms
        // replay entirely as resumed, with identical results.
        let mut replay = CollectSink::new();
        let again = build()
            .serve_checkpoint_dir(&dir)
            .serve_run(&mut replay)
            .unwrap();
        assert_eq!(again.baseline_result, reference.baseline_result);
        assert_eq!(again.protected_result, reference.protected_result);
        assert!(replay.chunks_seen() > 0);
        assert!(!replay
            .events
            .iter()
            .any(|e| matches!(e, CampaignEvent::ChunkDone { resumed: false, .. })));

        // A sink that stops immediately interrupts the arm; durable chunks survive.
        let err = build()
            .serve_checkpoint_dir(&dir)
            .serve_run(&mut CollectSink::stopping_after(0))
            .unwrap_err();
        assert!(matches!(err, PipelineError::Interrupted), "got {err:?}");

        // Without a checkpoint directory, serve_run refuses up front.
        let err = build().serve_run(&mut CollectSink::new()).unwrap_err();
        assert!(
            matches!(err, PipelineError::InvalidConfig(_)),
            "got {err:?}"
        );
        assert!(err.to_string().contains("checkpoint"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `shard_run` drives both campaign arms through the in-process sharding
    /// coordinator with simulated worker hosts: results match `run_full` bit-for-bit,
    /// and the checkpoint files it writes are interchangeable with `serve_run`'s — a
    /// sharded fleet can resume a single-host campaign and vice versa.
    #[test]
    fn shard_run_matches_run_full_and_shares_checkpoints_with_serve_run() {
        use ranger_serve::{CampaignEvent, CollectSink};
        let build = || {
            Pipeline::for_model(ModelKind::LeNet)
                .seed(47)
                .train(quick_recipe())
                .zoo(temp_zoo("shard"))
                .campaign(CampaignConfig {
                    trials: 12,
                    batch: 1,
                    workers: 2,
                    seed: 47,
                    ..CampaignConfig::default()
                })
                .inputs(2)
        };
        let reference = build().run_full().unwrap();

        let dir =
            std::env::temp_dir().join(format!("ranger-engine-shard-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut sink = CollectSink::new();
        let outcome = build()
            .serve_checkpoint_dir(&dir)
            .shard_run(&mut sink, 3)
            .unwrap();
        assert_eq!(outcome.baseline_result, reference.baseline_result);
        assert_eq!(outcome.protected_result, reference.protected_result);
        let dones = sink
            .events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::CampaignDone { .. }))
            .count();
        assert_eq!(dones, 2);

        // The sharded fleet's checkpoints are the same durable format the streaming
        // executor writes: a single-host serve_run over the directory replays every
        // chunk without recomputing.
        let mut replay = CollectSink::new();
        let again = build()
            .serve_checkpoint_dir(&dir)
            .serve_run(&mut replay)
            .unwrap();
        assert_eq!(again.baseline_result, reference.baseline_result);
        assert_eq!(again.protected_result, reference.protected_result);
        assert!(!replay
            .events
            .iter()
            .any(|e| matches!(e, CampaignEvent::ChunkDone { resumed: false, .. })));

        // Without a checkpoint directory, shard_run refuses up front.
        let err = build().shard_run(&mut CollectSink::new(), 2).unwrap_err();
        assert!(
            matches!(err, PipelineError::InvalidConfig(_)),
            "got {err:?}"
        );
        assert!(err.to_string().contains("checkpoint"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_fraction_feeds_the_bounds_step() {
        let outcome = Pipeline::for_model(ModelKind::LeNet)
            .seed(11)
            .train(quick_recipe())
            .zoo(temp_zoo("fraction"))
            .profile_fraction(1.0)
            .run_full()
            .unwrap();
        assert_eq!(outcome.report.bounds.profile_fraction, 1.0);
        assert!(outcome.report.bounds.storage_bytes >= 8);
    }
}
