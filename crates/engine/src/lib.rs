//! The unified experiment engine of the Ranger reproduction.
//!
//! The paper's contribution is a *pipeline* — profile activation bounds on a fraction of
//! the training data, selectively insert range restriction, measure SDC rates under fault
//! injection — and this crate makes that pipeline a first-class API instead of plumbing
//! repeated in every binary:
//!
//! * [`Pipeline`] — a fluent builder running the full profile → protect → inject arc and
//!   returning a serializable [`PipelineReport`].
//! * [`data`] — profiling-sample selection, the paper's correctly-predicted input
//!   selection, and task-appropriate SDC judges ([`JudgeSpec`]).
//! * [`protect_model`] / [`run_model_campaign`] — the two arc segments as standalone
//!   functions for callers that need to compose them differently.
//!
//! Protection goes through the [`Protector`](ranger::protect::Protector) trait and
//! campaign execution through compiled [`ExecPlan`](ranger_graph::ExecPlan)s, so every
//! experiment — paper default, design alternative, baseline arm — runs the same hot path.
//!
//! # Example
//!
//! ```no_run
//! use ranger_engine::Pipeline;
//! use ranger_inject::CampaignConfig;
//! use ranger_models::ModelKind;
//!
//! // The fig. 6 LeNet cell in four lines:
//! let report = Pipeline::for_model(ModelKind::LeNet)
//!     .seed(42)
//!     .campaign(CampaignConfig::default())
//!     .run()?;
//! for rate in &report.campaign.as_ref().unwrap().protected {
//!     println!("{}: {:.2}%", rate.category, rate.sdc_percent);
//! }
//! # Ok::<(), ranger_engine::PipelineError>(())
//! ```

#![warn(missing_docs)]

pub mod data;
pub mod pipeline;

pub use data::{
    canonical_input, correct_classifier_inputs, correct_classifier_inputs_for,
    correct_steering_inputs, correct_steering_inputs_for, outputs_radians, profiling_samples,
    profiling_samples_for, JudgeSpec,
};
pub use pipeline::{
    drive_model_campaign, protect_model, protect_model_for, run_model_campaign, BoundsSummary,
    CampaignComparison, OverheadSummary, Pipeline, PipelineError, PipelineOutcome, PipelineReport,
    ProtectedModel, RateSummary, DEFAULT_PROFILE_FRACTION,
};
