//! Property-based tests for the dataflow-graph substrate: autodiff correctness against
//! numerical differentiation, rewrite semantics and execution determinism.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use ranger_graph::autodiff::{backward, mse_loss};
use ranger_graph::exec::NoopInterceptor;
use ranger_graph::{Executor, Graph, GraphBuilder, NodeId, Op};
use ranger_tensor::Tensor;

/// Builds a small two-layer MLP with the given hidden width, returning the graph, the
/// output node and the input width.
fn small_mlp(hidden: usize, seed: u64) -> (Graph, NodeId, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let h = b.dense(x, 3, hidden, &mut rng);
    let h = b.tanh(h);
    let y = b.dense(h, hidden, 2, &mut rng);
    (b.into_graph(), y, 3)
}

/// Evaluates the scalar loss `mean((f(x) - target)^2)` for the current parameters.
fn loss_of(graph: &Graph, output: NodeId, input: &Tensor, target: &Tensor) -> f32 {
    let exec = Executor::new(graph);
    let values = exec
        .run(&[("x", input.clone())], &mut NoopInterceptor)
        .unwrap();
    mse_loss(values.get(output).unwrap(), target).unwrap().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Analytical gradients of every trainable parameter agree with central-difference
    /// numerical gradients on random networks and inputs.
    #[test]
    fn analytic_gradients_match_numerical(
        hidden in 2usize..6,
        seed in 0u64..40,
        x0 in -1.0f32..1.0,
        x1 in -1.0f32..1.0,
        x2 in -1.0f32..1.0,
    ) {
        let (graph, y, _) = small_mlp(hidden, seed);
        let input = Tensor::from_vec(vec![1, 3], vec![x0, x1, x2]).unwrap();
        let target = Tensor::from_vec(vec![1, 2], vec![0.3, -0.7]).unwrap();

        let exec = Executor::new(&graph);
        let values = exec.run(&[("x", input.clone())], &mut NoopInterceptor).unwrap();
        let (_, grad_seed) = mse_loss(values.get(y).unwrap(), &target).unwrap();
        let grads = backward(&graph, &values, y, &grad_seed).unwrap();

        let eps = 1e-2f32;
        for param in graph.trainable_nodes() {
            let analytic = grads.get(param).unwrap().clone();
            let n = analytic.len();
            // Check a few coordinates of every parameter tensor.
            for idx in [0, n / 2, n - 1] {
                let mut plus = graph.clone();
                plus.node_mut(param).unwrap().value.as_mut().unwrap().data_mut()[idx] += eps;
                let mut minus = graph.clone();
                minus.node_mut(param).unwrap().value.as_mut().unwrap().data_mut()[idx] -= eps;
                let numerical = (loss_of(&plus, y, &input, &target)
                    - loss_of(&minus, y, &input, &target))
                    / (2.0 * eps);
                prop_assert!(
                    (numerical - analytic.data()[idx]).abs() < 2e-2,
                    "param {param} idx {idx}: numerical {numerical} vs analytic {}",
                    analytic.data()[idx]
                );
            }
        }
    }

    /// Inserting an Identity operator after any node leaves every output unchanged — the
    /// rewrite primitive itself does not disturb semantics (Ranger's correctness in the
    /// fault-free case builds on this plus clamp bounds covering observed values).
    #[test]
    fn identity_insertion_preserves_semantics(hidden in 2usize..6, seed in 0u64..40) {
        let (graph, y, width) = small_mlp(hidden, seed);
        let input = Tensor::filled(vec![1, width], 0.5);
        let exec = Executor::new(&graph);
        let before = exec.run_simple(&[("x", input.clone())], y).unwrap();

        let mut rewritten = graph.clone();
        // Insert an identity after every operator node of the original graph.
        for id in graph.operator_nodes().unwrap() {
            rewritten.insert_after(id, "noop", Op::Identity).unwrap();
        }
        let exec2 = Executor::new(&rewritten);
        let after = exec2.run_simple(&[("x", input)], y).unwrap();
        prop_assert!(before.approx_eq(&after, 1e-6).unwrap());
    }

    /// Execution is deterministic: running the same graph on the same input twice yields
    /// bit-identical outputs (required for the golden-run comparison in fault injection).
    #[test]
    fn execution_is_deterministic(hidden in 2usize..8, seed in 0u64..40, v in -2.0f32..2.0) {
        let (graph, y, width) = small_mlp(hidden, seed);
        let input = Tensor::filled(vec![1, width], v);
        let exec = Executor::new(&graph);
        let a = exec.run_simple(&[("x", input.clone())], y).unwrap();
        let b = exec.run_simple(&[("x", input)], y).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Adding a clamp after a node increases the profiled FLOPs by exactly two operations
    /// per element of that node's output.
    #[test]
    fn clamp_flops_are_two_per_element(hidden in 2usize..8, seed in 0u64..40) {
        let (graph, y, width) = small_mlp(hidden, seed);
        let input = Tensor::ones(vec![1, width]);
        let baseline = ranger_graph::flops::profile(&graph, &[("x", input.clone())]).unwrap();
        let mut protected = graph.clone();
        // Clamp the first Tanh.
        let tanh = graph
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Op::Tanh))
            .unwrap()
            .id;
        protected.insert_after(tanh, "clamp", Op::Clamp { lo: -1.0, hi: 1.0 }).unwrap();
        let with_clamp = ranger_graph::flops::profile(&protected, &[("x", input)]).unwrap();
        prop_assert_eq!(with_clamp.total - baseline.total, 2 * hidden as u64);
        let _ = y;
    }
}
