//! The ExecPlan buffer-arena acceptance test: repeated `run_into` passes perform zero
//! heap allocations after warm-up.
//!
//! A counting global allocator wraps the system allocator; the test runs a compiled plan
//! over a mixed conv/pool/dense graph until the per-node buffers reach steady state and
//! then asserts that further passes allocate nothing at all (output tensors included).
//! The file contains exactly one test so no concurrent test can perturb the counter.

use rand::{rngs::StdRng, SeedableRng};
use ranger_graph::exec::NoopInterceptor;
use ranger_graph::GraphBuilder;
use ranger_tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn repeated_plan_passes_allocate_nothing_after_warm_up() {
    // A small LeNet-shaped graph: conv -> bias -> relu -> pool -> flatten -> dense ->
    // softmax, covering the convolutional, pooling, reshaping and dense kernels.
    let mut rng = StdRng::seed_from_u64(7);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let c = b.conv2d(x, 1, 4, 3, 1, ranger_graph::op::Padding::Same, &mut rng);
    let r = b.relu(c);
    let p = b.max_pool(r, 2, 2);
    let f = b.flatten(p);
    let h = b.dense(f, 4 * 4 * 4, 10, &mut rng);
    let probs = b.softmax(h);
    let graph = b.into_graph();

    let plan = graph.compile().unwrap();
    let input = Tensor::ones(vec![1, 1, 8, 8]);
    let feeds = [("x", input)];
    plan.warm(&feeds).unwrap();

    // A warmed plan hands out buffers pre-sized from the recorded shapes, so even the
    // store's FIRST pass — and every pass after it — allocates nothing. The global
    // counter also sees the test harness's own threads, which may allocate at any
    // moment; a genuine per-pass allocation shows up in EVERY attempt, so asserting on
    // the minimum over a few attempts rejects that background noise without weakening
    // the property.
    let mut fewest = usize::MAX;
    for attempt in 0..3 {
        let mut values = plan.buffers();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..100 {
            plan.run_into(&mut values, &feeds, &mut NoopInterceptor)
                .unwrap();
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        fewest = fewest.min(after - before);
        if attempt == 0 {
            assert_eq!(values.get(probs).unwrap().dims(), &[1, 10]);
        }
        if fewest == 0 {
            break;
        }
    }
    assert_eq!(
        fewest, 0,
        "warmed run_into must not allocate ({fewest} allocations over 100 passes, first \
         included, in the quietest of 3 attempts)"
    );

    // An unwarmed store pays allocations only on its first pass; after that it is
    // allocation-free too (same minimum-of-attempts guard against harness noise).
    let mut fewest = usize::MAX;
    for _ in 0..3 {
        let mut cold = ranger_graph::exec::Values::default();
        plan.run_into(&mut cold, &feeds, &mut NoopInterceptor)
            .unwrap();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..10 {
            plan.run_into(&mut cold, &feeds, &mut NoopInterceptor)
                .unwrap();
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        fewest = fewest.min(after - before);
        if fewest == 0 {
            break;
        }
    }
    assert_eq!(
        fewest, 0,
        "cold store must be allocation-free from the second pass on"
    );

    // The fixed-point backend on the same graph shape, minus softmax (the f32-bridge
    // transcendental keeps a per-pass scratch row; conv/matmul/pool/reshape must not):
    // warmed passes — lazy-mirror read of the output included — allocate nothing. The
    // integer conv/matmul take the Q14.2 i64 fast path, which accumulates in place in
    // the output words; constants hit the per-arena quantization cache after the first
    // pass.
    let mut rng = StdRng::seed_from_u64(7);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let c = b.conv2d(x, 1, 4, 3, 1, ranger_graph::op::Padding::Same, &mut rng);
    let r = b.relu(c);
    let p = b.max_pool(r, 2, 2);
    let f = b.flatten(p);
    let out = b.dense(f, 4 * 4 * 4, 10, &mut rng);
    let graph = b.into_graph();
    let plan = graph
        .compile_with(ranger_graph::BackendKind::Fixed16.backend())
        .unwrap();
    let feeds = [("x", Tensor::ones(vec![1, 1, 8, 8]))];
    plan.warm(&feeds).unwrap();
    let mut fewest = usize::MAX;
    for _ in 0..3 {
        let mut values = plan.buffers();
        // First pass decodes the output mirror once into its pre-sized seed buffer.
        plan.run_into(&mut values, &feeds, &mut NoopInterceptor)
            .unwrap();
        values.get(out).unwrap();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..100 {
            plan.run_into(&mut values, &feeds, &mut NoopInterceptor)
                .unwrap();
            values.get(out).unwrap();
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        fewest = fewest.min(after - before);
        if fewest == 0 {
            break;
        }
    }
    assert_eq!(
        fewest, 0,
        "warmed fixed16 run_into + lazy-mirror read must not allocate ({fewest} \
         allocations over 100 passes in the quietest of 3 attempts)"
    );

    // The row-group tiled scheduler on a batched feed: the first tiled pass sizes the
    // per-node tile overlays inside Values (they live outside the plan, exactly like
    // the ordinary buffers), and every warmed+primed pass after it — segment scratch,
    // row views, overlay reuse included — allocates nothing. Priming one tiled pass
    // first is the documented contract: warm() records shapes, the first run_tiled_into
    // claims the overlay arena.
    let mut rng = StdRng::seed_from_u64(7);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let c = b.conv2d(x, 1, 4, 3, 1, ranger_graph::op::Padding::Same, &mut rng);
    let r = b.relu(c);
    let p = b.max_pool(r, 2, 2);
    let f = b.flatten(p);
    let h = b.dense(f, 4 * 4 * 4, 10, &mut rng);
    let probs = b.softmax(h);
    let graph = b.into_graph();
    let plan = graph.compile().unwrap();
    let feeds = [("x", Tensor::ones(vec![8, 1, 8, 8]))];
    plan.warm(&feeds).unwrap();
    let schedule = plan.tiled_schedule(&[probs]);
    assert!(
        schedule.segments() > 0,
        "the conv/pool/dense prefix must form at least one tileable segment"
    );
    let mut fewest = usize::MAX;
    for attempt in 0..3 {
        let mut values = plan.buffers();
        // Prime: the first tiled pass claims the overlay buffers for every segment.
        plan.run_tiled_into(&mut values, &feeds, &mut NoopInterceptor, &schedule, 2)
            .unwrap();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..100 {
            plan.run_tiled_into(&mut values, &feeds, &mut NoopInterceptor, &schedule, 2)
                .unwrap();
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        fewest = fewest.min(after - before);
        if attempt == 0 {
            assert_eq!(values.get(probs).unwrap().dims(), &[8, 10]);
        }
        if fewest == 0 {
            break;
        }
    }
    assert_eq!(
        fewest, 0,
        "warmed+primed run_tiled_into must not allocate ({fewest} allocations over 100 \
         tiled passes in the quietest of 3 attempts)"
    );

    // Metrics on: timing slots are sized once at warm() (one Vec of atomics), and a
    // timed pass only reads the clock and bumps pre-sized atomics — so the warmed hot
    // path stays allocation-free with the registry recording. This is the other half
    // of the observability contract (the determinism half is pinned in the repo-root
    // `metrics_determinism` test).
    let was_enabled = ranger_obs::enabled();
    ranger_obs::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(7);
    let mut b = GraphBuilder::new();
    let x = b.input("x");
    let c = b.conv2d(x, 1, 4, 3, 1, ranger_graph::op::Padding::Same, &mut rng);
    let r = b.relu(c);
    let p = b.max_pool(r, 2, 2);
    let f = b.flatten(p);
    let h = b.dense(f, 4 * 4 * 4, 10, &mut rng);
    let probs = b.softmax(h);
    let graph = b.into_graph();
    let plan = graph.compile().unwrap();
    let feeds = [("x", Tensor::ones(vec![1, 1, 8, 8]))];
    plan.warm(&feeds).unwrap();
    let mut fewest = usize::MAX;
    for attempt in 0..3 {
        let mut values = plan.buffers();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..100 {
            plan.run_into(&mut values, &feeds, &mut NoopInterceptor)
                .unwrap();
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        fewest = fewest.min(after - before);
        if attempt == 0 {
            assert_eq!(values.get(probs).unwrap().dims(), &[1, 10]);
        }
        if fewest == 0 {
            break;
        }
    }
    assert!(
        plan.timed_passes() > 0,
        "the enabled plan must actually have timed its passes"
    );
    ranger_obs::set_enabled(was_enabled);
    assert_eq!(
        fewest, 0,
        "metrics-enabled warmed run_into must not allocate ({fewest} allocations over \
         100 timed passes in the quietest of 3 attempts)"
    );
}
