//! FLOPs profiling, reproducing the paper's Table IV overhead accounting.
//!
//! The paper measures Ranger's runtime overhead in floating-point operations (FLOPs),
//! because FLOPs are independent of the host platform. The profiler runs one forward pass
//! to observe the concrete shape flowing through every operator and charges each operator
//! a conventional FLOP count (multiply-accumulate counted as two operations, element-wise
//! operators one operation per element, the Ranger clamp two operations per element for
//! its `min` and `max`).

use crate::error::GraphError;
use crate::exec::{Executor, Interceptor};
use crate::graph::{Graph, Node, NodeId};
use crate::op::Op;
use ranger_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// FLOP counts for a graph, per node and in total.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlopsReport {
    /// Per-node FLOP counts keyed by node name.
    pub per_node: Vec<(String, u64)>,
    /// Total FLOPs of one forward pass.
    pub total: u64,
}

impl FlopsReport {
    /// Returns the total FLOPs charged to nodes whose operator satisfies `pred`.
    pub fn total_for(&self, graph: &Graph, pred: impl Fn(&Op) -> bool) -> u64 {
        let by_name: HashMap<&str, u64> = self
            .per_node
            .iter()
            .map(|(n, f)| (n.as_str(), *f))
            .collect();
        graph
            .nodes()
            .iter()
            .filter(|n| pred(&n.op))
            .filter_map(|n| by_name.get(n.name.as_str()))
            .sum()
    }
}

struct ShapeRecorder {
    input_shapes: HashMap<NodeId, Vec<Vec<usize>>>,
    output_shapes: HashMap<NodeId, Vec<usize>>,
}

/// Charges FLOPs to a node given the shapes of its inputs and output.
fn flops_for(node: &Node, input_shapes: &[Vec<usize>], output_shape: &[usize]) -> u64 {
    let out_elems: u64 = output_shape.iter().product::<usize>() as u64;
    match &node.op {
        Op::Input | Op::Const | Op::Identity | Op::Flatten | Op::Reshape { .. } | Op::Concat => 0,
        Op::Conv2d { .. } => {
            // 2 * Kh * Kw * Cin FLOPs per output element (multiply + add).
            let w = input_shapes.get(1).cloned().unwrap_or_default();
            if w.len() == 4 {
                2 * (w[1] * w[2] * w[3]) as u64 * out_elems
            } else {
                0
            }
        }
        Op::MatMul => {
            let x = input_shapes.first().cloned().unwrap_or_default();
            let k = x.get(1).copied().unwrap_or(0) as u64;
            2 * k * out_elems
        }
        Op::BiasAdd | Op::Add | Op::Mul | Op::ScalarMul { .. } | Op::Relu => out_elems,
        // Transcendental activations are charged a conventional cost of a few FLOPs each.
        Op::Tanh | Op::Sigmoid | Op::Atan | Op::Elu => 4 * out_elems,
        Op::Softmax => 5 * out_elems,
        Op::MaxPool { kernel, .. } | Op::AvgPool { kernel, .. } => {
            (kernel * kernel) as u64 * out_elems
        }
        Op::GlobalAvgPool => {
            let x = input_shapes.first().cloned().unwrap_or_default();
            x.iter().product::<usize>() as u64
        }
        // Range restriction: one comparison for the lower bound and one for the upper.
        Op::Clamp { .. } | Op::RangeRestore { .. } => 2 * out_elems,
    }
}

impl Interceptor for ShapeRecorder {
    fn after_op(&mut self, node: &Node, output: &mut Tensor) {
        self.output_shapes.insert(node.id, output.dims().to_vec());
    }
}

/// Profiles one forward pass of `graph` on `feeds` and returns per-node and total FLOPs.
///
/// # Errors
///
/// Returns a [`GraphError`] if the forward pass fails.
pub fn profile(graph: &Graph, feeds: &[(&str, Tensor)]) -> Result<FlopsReport, GraphError> {
    let exec = Executor::new(graph);
    let mut recorder = ShapeRecorder {
        input_shapes: HashMap::new(),
        output_shapes: HashMap::new(),
    };
    let values = exec.run(feeds, &mut recorder)?;
    // Collect every node's output shape (including constants and inputs, which the
    // interceptor does not see) so operator input shapes can be resolved.
    let mut all_shapes: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (id, tensor) in values.iter() {
        all_shapes.insert(id, tensor.dims().to_vec());
    }
    for node in graph.nodes() {
        let shapes: Vec<Vec<usize>> = node
            .inputs
            .iter()
            .map(|i| all_shapes.get(i).cloned().unwrap_or_default())
            .collect();
        recorder.input_shapes.insert(node.id, shapes);
    }

    let mut per_node = Vec::with_capacity(graph.len());
    let mut total = 0u64;
    for node in graph.nodes() {
        let inputs = recorder
            .input_shapes
            .get(&node.id)
            .cloned()
            .unwrap_or_default();
        let output = all_shapes.get(&node.id).cloned().unwrap_or_default();
        let flops = flops_for(node, &inputs, &output);
        total += flops;
        per_node.push((node.name.clone(), flops));
    }
    Ok(FlopsReport { per_node, total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::Padding;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn matmul_flops_match_formula() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let y = b.dense(x, 8, 4, &mut rng);
        let g = b.into_graph();
        let report = profile(&g, &[("x", Tensor::ones(vec![2, 8]))]).unwrap();
        // MatMul: 2 * K * out_elems = 2 * 8 * (2*4) = 128; BiasAdd: 8.
        let _ = y;
        assert_eq!(report.total, 128 + 8);
    }

    #[test]
    fn conv_flops_match_formula() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let _ = b.conv2d(x, 3, 8, 3, 1, Padding::Same, &mut rng);
        let g = b.into_graph();
        let report = profile(&g, &[("x", Tensor::ones(vec![1, 3, 8, 8]))]).unwrap();
        // Conv: 2 * 3*3*3 * (1*8*8*8) = 27648; BiasAdd: 512.
        assert_eq!(report.total, 2 * 27 * 512 + 512);
    }

    #[test]
    fn clamp_overhead_is_two_flops_per_element() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 16, 16, &mut rng);
        let r = b.relu(h);
        let mut g = b.into_graph();
        let baseline = profile(&g, &[("x", Tensor::ones(vec![1, 16]))]).unwrap();
        g.insert_after(r, "ranger", Op::Clamp { lo: 0.0, hi: 1.0 })
            .unwrap();
        let protected = profile(&g, &[("x", Tensor::ones(vec![1, 16]))]).unwrap();
        assert_eq!(protected.total - baseline.total, 2 * 16);
        let clamp_only = protected.total_for(&g, |op| matches!(op, Op::Clamp { .. }));
        assert_eq!(clamp_only, 32);
    }

    #[test]
    fn shape_free_ops_are_not_charged() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let c = b.conv2d(x, 1, 2, 3, 1, Padding::Same, &mut rng);
        let f = b.flatten(c);
        let _ = b.identity(f, "out");
        let g = b.into_graph();
        let report = profile(&g, &[("x", Tensor::ones(vec![1, 1, 4, 4]))]).unwrap();
        let flatten_flops: u64 = report
            .per_node
            .iter()
            .filter(|(n, _)| n.contains("Flatten") || n == "out")
            .map(|(_, f)| *f)
            .sum();
        assert_eq!(flatten_flops, 0);
    }
}
