//! Static dataflow graph, operators, executor and autodiff.
//!
//! This crate is the reproduction's stand-in for the TensorFlow runtime the paper builds
//! on. It provides the two interfaces Ranger and the fault injector need:
//!
//! 1. **A static, rewritable dataflow graph** ([`Graph`], [`Node`], [`Op`]) — Ranger's
//!    Algorithm 1 walks the operator list and inserts range-restriction ([`Op::Clamp`])
//!    operators after selected operations, exactly as the paper's TensorFlow implementation
//!    duplicates the graph and remaps operator inputs.
//! 2. **An executor with per-operator interception hooks** ([`exec::Executor`],
//!    [`exec::Interceptor`]) — the TensorFI-style fault injector corrupts the output of a
//!    randomly chosen operator during a forward pass.
//!
//! On top of those the crate provides reverse-mode automatic differentiation
//! ([`autodiff`]) so the benchmark models can be trained from scratch, and a FLOPs
//! profiler ([`flops`]) used to reproduce the paper's Table IV overhead accounting.
//!
//! # Example
//!
//! ```
//! use ranger_graph::builder::GraphBuilder;
//! use ranger_graph::exec::Executor;
//! use ranger_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut b = GraphBuilder::new();
//! let x = b.input("x");
//! let h = b.dense(x, 4, 8, &mut rng);
//! let h = b.relu(h);
//! let y = b.dense(h, 8, 3, &mut rng);
//! let graph = b.into_graph();
//!
//! let exec = Executor::new(&graph);
//! let out = exec.run_simple(&[("x", Tensor::zeros(vec![1, 4]))], y)?;
//! assert_eq!(out.dims(), &[1, 3]);
//! # Ok::<(), ranger_graph::GraphError>(())
//! ```

#![warn(missing_docs)]

pub mod autodiff;
pub mod backend;
pub mod builder;
pub mod error;
pub mod exec;
pub mod flops;
pub mod graph;
pub mod op;
pub mod ops;
pub mod plan;

pub use backend::{
    default_backend, try_default_backend, BackendKind, ExecBackend, FixedBackend, ReferenceBackend,
    SimdBackend,
};
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use exec::{Executor, Interceptor, TileRows};
pub use graph::{Graph, Node, NodeId};
pub use op::Op;
pub use plan::{ExecPlan, SegmentPlan, TileStep, TiledSchedule, DEFAULT_TILE_BUDGET_BYTES};
