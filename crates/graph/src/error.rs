//! Error type for graph construction, execution and differentiation.

use crate::graph::NodeId;
use ranger_tensor::TensorError;
use std::fmt;

/// Errors produced by graph construction, execution and differentiation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node referenced an id that does not exist in the graph.
    UnknownNode(NodeId),
    /// A graph input was not fed at execution time.
    MissingFeed(String),
    /// A node that must carry a constant value does not.
    MissingConstValue(NodeId),
    /// An operator received the wrong number of inputs.
    ArityMismatch {
        /// The offending node.
        node: NodeId,
        /// Operator name.
        op: String,
        /// Expected input count.
        expected: usize,
        /// Actual input count.
        actual: usize,
    },
    /// An operator received an input of an unsupported shape.
    ShapeError {
        /// The offending node.
        node: NodeId,
        /// Human-readable description.
        message: String,
    },
    /// The graph contains a cycle and cannot be topologically ordered.
    CyclicGraph,
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// The backward pass does not support this operator.
    UnsupportedBackward {
        /// Operator name.
        op: String,
    },
    /// A named node was not found.
    UnknownName(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown node id {}", id.index()),
            GraphError::MissingFeed(name) => write!(f, "missing feed for input '{name}'"),
            GraphError::MissingConstValue(id) => {
                write!(f, "constant node {} has no value", id.index())
            }
            GraphError::ArityMismatch {
                node,
                op,
                expected,
                actual,
            } => write!(
                f,
                "operator {op} at node {} expects {expected} inputs but received {actual}",
                node.index()
            ),
            GraphError::ShapeError { node, message } => {
                write!(f, "shape error at node {}: {message}", node.index())
            }
            GraphError::CyclicGraph => write!(f, "graph contains a cycle"),
            GraphError::Tensor(e) => write!(f, "tensor error: {e}"),
            GraphError::UnsupportedBackward { op } => {
                write!(f, "backward pass not supported for operator {op}")
            }
            GraphError::UnknownName(name) => write!(f, "no node named '{name}'"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = GraphError::MissingFeed("x".to_string());
        assert!(err.to_string().contains("x"));
        let err = GraphError::ArityMismatch {
            node: NodeId::new(3),
            op: "Conv2D".into(),
            expected: 2,
            actual: 1,
        };
        assert!(err.to_string().contains("Conv2D"));
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn tensor_errors_convert() {
        let terr = TensorError::ShapeDataMismatch {
            expected: 4,
            actual: 2,
        };
        let gerr: GraphError = terr.clone().into();
        assert_eq!(gerr, GraphError::Tensor(terr));
    }
}
