//! Graph execution with per-operator interception hooks.
//!
//! The executor evaluates the graph in topological order. After computing each operator's
//! output it hands the node and a mutable reference to the output tensor to the registered
//! [`Interceptor`], which is how the fault injector corrupts a single operator output
//! mid-inference (the TensorFI model) and how the bound profiler observes activation
//! ranges without modifying the graph.
//!
//! [`Executor`] plans every forward pass from scratch; hot paths that execute the same
//! graph repeatedly (fault-injection campaigns, batched profiling) should call
//! [`Graph::compile`] once and reuse the returned [`ExecPlan`](crate::plan::ExecPlan),
//! which `Executor` itself is a thin per-run wrapper over.

use crate::error::GraphError;
use crate::graph::{Graph, Node, NodeId};
use crate::op::Op;
use crate::ops;
use ranger_tensor::{QTensor, Tensor};
use std::cell::RefCell;
use std::sync::OnceLock;

/// Observes (and may mutate) operator outputs during a forward pass.
///
/// Implementors receive every operator node in execution order together with its freshly
/// computed output. Constants and graph inputs are not intercepted, mirroring the paper's
/// fault model in which memory is ECC-protected and faults arise in datapath computations.
///
/// On the f32 reference backend the hook is [`Interceptor::after_op`]; on a fixed-point
/// backend it is [`Interceptor::after_op_words`], which receives the operator's stored
/// integer words. The default `after_op_words` bridges to `after_op` through a
/// dequantize → mutate → requantize round trip (re-encoding only the elements the
/// interceptor actually changed), so existing interceptors keep working on every backend;
/// performance-critical implementors (the fault injector, the no-op golden-run hook)
/// override it to act on the words directly.
pub trait Interceptor {
    /// Called after `node`'s output has been computed; the output may be mutated in place.
    fn after_op(&mut self, node: &Node, output: &mut Tensor);

    /// Word-level twin of [`Interceptor::after_op`], called by fixed-point backends with
    /// the operator's raw integer output.
    ///
    /// The default implementation exposes the dequantized values to `after_op` and
    /// re-encodes exactly the elements whose bits changed — untouched words survive
    /// verbatim, so a read-only interceptor never perturbs values whose magnitude
    /// exceeds `f32` precision.
    fn after_op_words(&mut self, node: &Node, output: &mut QTensor) {
        let mirror = output.dequantize();
        let mut mutated = mirror.clone();
        self.after_op(node, &mut mutated);
        for (i, (&before, &after)) in mirror.data().iter().zip(mutated.data()).enumerate() {
            if before.to_bits() != after.to_bits() {
                output.set_from_f32(i, after);
            }
        }
    }

    /// Row-group twin of [`Interceptor::after_op`], called by tiled execution
    /// ([`ExecPlan::run_tiled_into`](crate::plan::ExecPlan::run_tiled_into)) with one
    /// row group of `node`'s output and its position within the full batch.
    ///
    /// The default delegates to `after_op`, treating the tile as if it were the whole
    /// output — exact when the tile *is* the whole batch (one row group), and the
    /// behavior a recording hook usually wants (it observes every group). Interceptors
    /// whose mutations are addressed in whole-batch element coordinates (the fault
    /// injectors) override this to translate [`TileRows`] offsets, so a flip lands on
    /// the same element no matter how the batch is tiled.
    fn after_op_tile(&mut self, node: &Node, output: &mut Tensor, rows: TileRows) {
        let _ = rows;
        self.after_op(node, output);
    }

    /// Word-level twin of [`Interceptor::after_op_tile`], called by tiled execution on
    /// fixed-point backends. The default delegates to [`Interceptor::after_op_words`]
    /// under the same whole-output convention.
    fn after_op_words_tile(&mut self, node: &Node, output: &mut QTensor, rows: TileRows) {
        let _ = rows;
        self.after_op_words(node, output);
    }
}

/// The position of one row group within a tiled pass: rows
/// `[row_start, row_start + rows)` of a batch of `total_rows`.
///
/// Handed to the tile interceptor hooks so element-addressed mutations (fault plans
/// drawn against the whole batched output) can be translated into tile-local offsets —
/// the tiled schedule's bit-for-bit contract depends on that translation, not on any
/// particular tile size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRows {
    /// First batch row of this group.
    pub row_start: usize,
    /// Number of rows in this group (the last group may be short).
    pub rows: usize,
    /// Total batch rows in the pass.
    pub total_rows: usize,
}

/// An interceptor that does nothing (fault-free golden runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopInterceptor;

impl Interceptor for NoopInterceptor {
    fn after_op(&mut self, _node: &Node, _output: &mut Tensor) {}

    fn after_op_words(&mut self, _node: &Node, _output: &mut QTensor) {}
}

/// An interceptor that records every operator output, used for activation-range profiling
/// and for debugging fault propagation.
#[derive(Debug, Default)]
pub struct RecordingInterceptor {
    /// Operator outputs keyed by node id, in execution order.
    pub outputs: Vec<(NodeId, Tensor)>,
}

impl Interceptor for RecordingInterceptor {
    fn after_op(&mut self, node: &Node, output: &mut Tensor) {
        self.outputs.push((node.id, output.clone()));
    }
}

/// One node's **lazily decoded** f32 mirror of the words a fixed-point backend stored.
///
/// [`Values::set_q`] arms the slot: it clears any previously decoded tensor and parks the
/// node's recycled f32 buffer in `seed`. The first [`Values::get`] for the node that pass
/// moves the seed out, decodes the words into it, and publishes it through `decoded` —
/// at most once per pass, under `&self`. Campaigns only read the judged output node, so
/// for every other node the decode (a full extra write+read of the activation) never
/// happens at all.
///
/// Concurrency shape: `OnceLock` provides the lazy-init-under-`&self`; the `RefCell`
/// around the seed is borrowed only inside the init closure and never escapes, so no
/// borrow is ever held across a call boundary. (`Values` is a per-worker store — the
/// `RefCell` makes it `!Sync`, which it never needed to be.)
#[derive(Debug, Clone, Default)]
struct LazyMirror {
    decoded: OnceLock<Tensor>,
    seed: RefCell<Option<Tensor>>,
}

/// The values produced by a full forward pass, indexed by node id.
///
/// A `Values` doubles as the reusable buffer arena of a compiled
/// [`ExecPlan`](crate::plan::ExecPlan): `ExecPlan::run_into` moves the previous pass's
/// tensors into a per-node recycle pool and every operator writes its output into its
/// node's recycled buffer. Since a node's output shape is constant across passes of the
/// same graph on same-shaped feeds, the buffers reach steady-state capacity after one
/// pass and repeated passes perform **zero output-tensor allocations**.
#[derive(Debug, Clone, Default)]
pub struct Values {
    values: Vec<Option<Tensor>>,
    /// Last pass's tensors, keyed by node id; [`Values::take_recycled`] hands them out as
    /// output buffers during the current pass.
    recycled: Vec<Option<Tensor>>,
    /// Raw fixed-point words, keyed by node id — the working set of a fixed-point
    /// backend, recycled exactly like the f32 tensors. Empty under the reference backend.
    qvalues: Vec<Option<QTensor>>,
    qrecycled: Vec<Option<QTensor>>,
    /// Per-node lazy f32 mirrors of the stored words (see [`LazyMirror`]); armed by
    /// [`Values::set_q`], decoded on first [`Values::get`], recycled by [`Values::reset`].
    qmirrors: Vec<LazyMirror>,
    /// Constant-quantization cache tags: `(const data pointer, element count, format)`
    /// recorded when a constant node's words were stored, so later passes can reuse the
    /// quantization instead of re-encoding the whole weight tensor
    /// ([`Values::take_recycled_q_const`]). A tag is cleared whenever its slot is
    /// recycled through the generic path, so a store reused across plans can never leak
    /// stale words.
    qconst_tags: Vec<Option<(usize, usize, ranger_tensor::FixedSpec)>>,
    /// Row-group scratch overlay for tiled execution (see
    /// [`ExecPlan::run_tiled_into`](crate::plan::ExecPlan::run_tiled_into)): while a
    /// segment runs one row group, each segment node's current tile lives here and
    /// [`Values::get`] serves it ahead of any full-batch value. Empty (zero-length, so
    /// every lookup is one cheap bounds-check miss) unless a tiled pass is running.
    tile_values: Vec<Option<Tensor>>,
    /// Recycle pool for the tile overlay, swept by [`Values::recycle_tiles`] at the end
    /// of every row group — tile buffers reach steady-state capacity after the first
    /// tiled pass exactly like the full-batch arena.
    tile_recycled: Vec<Option<Tensor>>,
    /// Fixed-point twins of the tile overlay.
    tile_qvalues: Vec<Option<QTensor>>,
    tile_qrecycled: Vec<Option<QTensor>>,
}

impl Values {
    pub(crate) fn new(len: usize) -> Self {
        let mut qmirrors = Vec::new();
        qmirrors.resize_with(len, LazyMirror::default);
        Values {
            values: vec![None; len],
            recycled: vec![None; len],
            qvalues: vec![None; len],
            qrecycled: vec![None; len],
            qmirrors,
            qconst_tags: vec![None; len],
            tile_values: Vec::new(),
            tile_recycled: Vec::new(),
            tile_qvalues: Vec::new(),
            tile_qrecycled: Vec::new(),
        }
    }

    /// Starts a new pass over a graph of `len` nodes: the previous pass's tensors become
    /// the recycle pool and the value slots are cleared (keeping their allocation).
    ///
    /// Slots that produced no value last pass keep whatever buffer the pool already held
    /// — in particular the pre-sized buffers seeded by [`Values::preallocate`] survive
    /// until their node first executes.
    pub(crate) fn reset(&mut self, len: usize) {
        self.values.resize(len, None);
        self.recycled.resize(len, None);
        self.qvalues.resize(len, None);
        self.qrecycled.resize(len, None);
        self.qmirrors.resize_with(len, LazyMirror::default);
        self.qconst_tags.resize(len, None);
        for (value, pooled) in self.values.iter_mut().zip(&mut self.recycled) {
            if let Some(tensor) = value.take() {
                *pooled = Some(tensor);
            }
        }
        // Mirror buffers — decoded last pass, or still-armed seeds that were never read —
        // return to the f32 recycle pool, and the slot is cleared so a stale decode can
        // never be served for a later pass.
        for (slot, pooled) in self.qmirrors.iter_mut().zip(&mut self.recycled) {
            if let Some(tensor) = slot.decoded.take().or_else(|| slot.seed.get_mut().take()) {
                if pooled.is_none() {
                    *pooled = Some(tensor);
                }
            }
        }
        for (value, pooled) in self.qvalues.iter_mut().zip(&mut self.qrecycled) {
            if let Some(tensor) = value.take() {
                *pooled = Some(tensor);
            }
        }
        // A tiled pass that aborted mid-group may have left tiles behind; sweep them to
        // the pool so they can never shadow this pass's values. No-op (empty vectors)
        // unless tiled execution has run on this store.
        self.recycle_tiles();
    }

    /// Takes the recycled output buffer for `id` (an empty tensor if none is pooled).
    ///
    /// Execution backends call this at the start of a node evaluation and hand the buffer
    /// back through [`Values::set`]; the pairing is what makes repeated passes
    /// allocation-free.
    pub fn take_recycled(&mut self, id: NodeId) -> Tensor {
        self.recycled
            .get_mut(id.index())
            .and_then(Option::take)
            .unwrap_or_else(Tensor::empty)
    }

    /// Takes the recycled word buffer for `id`, reformatted to `spec` (an empty word
    /// tensor if none is pooled) — the fixed-point twin of [`Values::take_recycled`].
    pub fn take_recycled_q(&mut self, id: NodeId, spec: ranger_tensor::FixedSpec) -> QTensor {
        if let Some(tag) = self.qconst_tags.get_mut(id.index()) {
            *tag = None;
        }
        self.qrecycled
            .get_mut(id.index())
            .and_then(Option::take)
            .map(|mut q| {
                q.reset_fill(spec, &[0], 0);
                q
            })
            .unwrap_or_else(|| QTensor::new(spec))
    }

    /// Takes the recycled word buffer for the constant node `id`, **keeping its
    /// contents** when they are the already-quantized words of `value` under `spec`
    /// (validated against the tag recorded by [`Values::mark_q_const`]). Returns the
    /// buffer and whether it still holds that cached quantization — constants never
    /// change between passes of a plan, so a hit skips re-encoding the whole tensor.
    pub fn take_recycled_q_const(
        &mut self,
        id: NodeId,
        spec: ranger_tensor::FixedSpec,
        value: &Tensor,
    ) -> (QTensor, bool) {
        let tag = (value.data().as_ptr() as usize, value.len(), spec);
        let cached = self.qconst_tags.get(id.index()).copied().flatten() == Some(tag);
        match self.qrecycled.get_mut(id.index()).and_then(Option::take) {
            Some(q) if cached && q.spec() == spec && q.len() == value.len() => (q, true),
            Some(mut q) => {
                q.reset_fill(spec, &[0], 0);
                (q, false)
            }
            None => (QTensor::new(spec), false),
        }
    }

    /// Records that `id`'s stored words are the quantization of `value` under `spec`,
    /// enabling the [`Values::take_recycled_q_const`] cache on the next pass.
    pub fn mark_q_const(&mut self, id: NodeId, spec: ranger_tensor::FixedSpec, value: &Tensor) {
        if let Some(slot) = self.qconst_tags.get_mut(id.index()) {
            *slot = Some((value.data().as_ptr() as usize, value.len(), spec));
        }
    }

    /// Prepares the tile overlay for a tiled pass over a graph of `len` nodes.
    ///
    /// Sizing the overlay lazily — only here, never in [`Values::new`] — keeps untiled
    /// stores at four empty vectors, so the tile-first lookup in [`Values::get`] stays a
    /// single failing bounds check on the untiled hot path.
    pub(crate) fn begin_tiles(&mut self, len: usize) {
        self.tile_values.resize(len, None);
        self.tile_recycled.resize(len, None);
        self.tile_qvalues.resize(len, None);
        self.tile_qrecycled.resize(len, None);
    }

    /// Takes the recycled tile buffer for `id` (an empty tensor if none is pooled) —
    /// the row-group twin of [`Values::take_recycled`].
    pub fn take_tile_recycled(&mut self, id: NodeId) -> Tensor {
        self.tile_recycled
            .get_mut(id.index())
            .and_then(Option::take)
            .unwrap_or_else(Tensor::empty)
    }

    /// Takes the recycled tile word buffer for `id`, reformatted to `spec` — the
    /// row-group twin of [`Values::take_recycled_q`].
    pub fn take_tile_recycled_q(&mut self, id: NodeId, spec: ranger_tensor::FixedSpec) -> QTensor {
        self.tile_qrecycled
            .get_mut(id.index())
            .and_then(Option::take)
            .map(|mut q| {
                q.reset_fill(spec, &[0], 0);
                q
            })
            .unwrap_or_else(|| QTensor::new(spec))
    }

    /// Stores `id`'s output for the current row group (pairs with
    /// [`Values::take_tile_recycled`]). Served by [`Values::get`] ahead of any
    /// full-batch value until the internal end-of-group sweep recycles the tile.
    pub fn set_tile(&mut self, id: NodeId, value: Tensor) {
        self.tile_values[id.index()] = Some(value);
    }

    /// Word-level twin of [`Values::set_tile`]. Tile words carry no lazy mirror: a
    /// tile is only ever read back through [`Values::get_q`] by the nodes of its own
    /// segment, never through the f32 accessor.
    pub fn set_tile_q(&mut self, id: NodeId, value: QTensor) {
        self.tile_qvalues[id.index()] = Some(value);
    }

    /// Slices rows `[start, start + rows)` of `id`'s full-batch value into its tile
    /// slot, reusing the pooled tile buffer — how a segment's carrying external inputs
    /// are fed to the row group without copying the whole batch.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` holds no full-batch f32 value, or a
    /// shape error if the row range is out of bounds.
    pub(crate) fn slice_rows_to_tile(
        &mut self,
        id: NodeId,
        start: usize,
        rows: usize,
    ) -> Result<(), GraphError> {
        let mut buf = self.take_tile_recycled(id);
        {
            let src = self
                .values
                .get(id.index())
                .and_then(|v| v.as_ref())
                .ok_or(GraphError::UnknownNode(id))?;
            src.slice_rows_into(start, rows, &mut buf)
                .map_err(|e| GraphError::ShapeError {
                    node: id,
                    message: e.to_string(),
                })?;
        }
        self.tile_values[id.index()] = Some(buf);
        Ok(())
    }

    /// Word-level twin of [`Values::slice_rows_to_tile`], for fixed-point passes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `id` holds no stored words, or a shape
    /// error if the row range is out of bounds.
    pub(crate) fn slice_rows_to_tile_q(
        &mut self,
        id: NodeId,
        start: usize,
        rows: usize,
    ) -> Result<(), GraphError> {
        let mut buf = self.take_tile_recycled_q(
            id,
            match self.qvalues.get(id.index()).and_then(|v| v.as_ref()) {
                Some(q) => q.spec(),
                None => return Err(GraphError::UnknownNode(id)),
            },
        );
        {
            let src = self
                .qvalues
                .get(id.index())
                .and_then(|v| v.as_ref())
                .ok_or(GraphError::UnknownNode(id))?;
            let dims = src.dims();
            if dims.is_empty() || start + rows > dims[0] {
                return Err(GraphError::ShapeError {
                    node: id,
                    message: format!(
                        "row range {start}..{} out of bounds for shape {dims:?}",
                        start + rows
                    ),
                });
            }
            let per_row: usize = dims[1..].iter().product();
            let words = &src.words()[start * per_row..(start + rows) * per_row];
            buf.reset_rows_from_words(src.spec(), rows, &dims[1..], words)
                .map_err(|e| GraphError::ShapeError {
                    node: id,
                    message: e.to_string(),
                })?;
        }
        self.tile_qvalues[id.index()] = Some(buf);
        Ok(())
    }

    /// Appends the current row-group tile of `id` to its full-batch value — the
    /// materialization step for segment outputs consumed outside their segment. The
    /// first group (`first == true`) claims the node's recycled full-batch buffer;
    /// later groups append in place ([`Tensor::push_rows`]), which never reallocates
    /// once the buffer has reached whole-batch capacity.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if no tile (or, for later groups, no
    /// full-batch value) exists for `id`.
    pub(crate) fn materialize_tile(&mut self, id: NodeId, first: bool) -> Result<(), GraphError> {
        let idx = id.index();
        let Values {
            values,
            recycled,
            tile_values,
            ..
        } = self;
        let tile = tile_values
            .get(idx)
            .and_then(|v| v.as_ref())
            .ok_or(GraphError::UnknownNode(id))?;
        if first {
            let mut full = recycled
                .get_mut(idx)
                .and_then(Option::take)
                .unwrap_or_else(Tensor::empty);
            full.reset_from_slice(tile.dims(), tile.data())
                .expect("shape and data of an existing tensor agree");
            values[idx] = Some(full);
        } else {
            let full = values
                .get_mut(idx)
                .and_then(|v| v.as_mut())
                .ok_or(GraphError::UnknownNode(id))?;
            full.push_rows(tile)
                .expect("row groups of one node share trailing dims");
        }
        Ok(())
    }

    /// Word-level twin of [`Values::materialize_tile`]. Also arms the node's lazy f32
    /// mirror exactly as [`Values::set_q`] would, so a post-pass [`Values::get`]
    /// decodes the assembled words and never serves a stale decode.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if no tile (or, for later groups, no
    /// full-batch words) exists for `id`.
    pub(crate) fn materialize_tile_q(&mut self, id: NodeId, first: bool) -> Result<(), GraphError> {
        let idx = id.index();
        let Values {
            recycled,
            qvalues,
            qrecycled,
            qmirrors,
            tile_qvalues,
            ..
        } = self;
        let tile = tile_qvalues
            .get(idx)
            .and_then(|v| v.as_ref())
            .ok_or(GraphError::UnknownNode(id))?;
        if first {
            let spec = tile.spec();
            let mut full = qrecycled
                .get_mut(idx)
                .and_then(Option::take)
                .unwrap_or_else(|| QTensor::new(spec));
            full.reset_from_words(spec, tile.dims(), tile.words())
                .expect("shape and words of an existing tensor agree");
            qvalues[idx] = Some(full);
        } else {
            let full = qvalues
                .get_mut(idx)
                .and_then(|v| v.as_mut())
                .ok_or(GraphError::UnknownNode(id))?;
            full.push_rows(tile)
                .expect("row groups of one node share trailing dims");
        }
        // Arm the lazy mirror (the set_q discipline): invalidate any decode, and make
        // sure a seed buffer is parked for the first post-pass read. Re-arming on every
        // group keeps the parked seed instead of discarding it.
        let slot = &mut qmirrors[idx];
        if let Some(decoded) = slot.decoded.take() {
            *slot.seed.get_mut() = Some(decoded);
        }
        let seed = slot.seed.get_mut();
        if seed.is_none() {
            *seed = recycled.get_mut(idx).and_then(Option::take);
        }
        Ok(())
    }

    /// Ends a row group: every tile moves to the tile recycle pool, so the next group
    /// (or the next tiled pass) reuses its buffers and a finished pass never serves a
    /// partial tile through [`Values::get`].
    pub(crate) fn recycle_tiles(&mut self) {
        for (value, pooled) in self.tile_values.iter_mut().zip(&mut self.tile_recycled) {
            if let Some(tensor) = value.take() {
                *pooled = Some(tensor);
            }
        }
        for (value, pooled) in self.tile_qvalues.iter_mut().zip(&mut self.tile_qrecycled) {
            if let Some(tensor) = value.take() {
                *pooled = Some(tensor);
            }
        }
    }

    /// Seeds the recycle pool for `id` with a buffer pre-sized for an output of shape
    /// `dims`, so even the first pass through this store allocates nothing for that node.
    pub(crate) fn preallocate(&mut self, id: NodeId, dims: &[usize]) {
        if let Some(slot) = self.recycled.get_mut(id.index()) {
            *slot = Some(Tensor::with_capacity_for(dims));
        }
    }

    /// Seeds the word recycle pool for `id` with a buffer pre-sized for an output of
    /// shape `dims` — the fixed-point twin of [`Values::preallocate`], applied when the
    /// plan's backend computes on words.
    pub(crate) fn preallocate_q(
        &mut self,
        id: NodeId,
        spec: ranger_tensor::FixedSpec,
        dims: &[usize],
    ) {
        if let Some(slot) = self.qrecycled.get_mut(id.index()) {
            *slot = Some(QTensor::with_capacity_for(spec, dims));
        }
        if let Some(tag) = self.qconst_tags.get_mut(id.index()) {
            *tag = None;
        }
    }

    /// Returns the value computed for `id`.
    ///
    /// On a fixed-point backend this is the dequantized mirror of the stored words (see
    /// [`Values::get_q`]), so campaign judges, parity tests and report code read every
    /// backend's outputs through the same accessor. The mirror is **lazy**: a node's
    /// words are decoded at most once per pass, on the first `get` for that node —
    /// nodes nobody reads (every intermediate of a campaign pass) never decode at all.
    /// [`Values::set_q`] invalidates the slot whenever new words are stored, so a stale
    /// mirror is never served.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if the node was not evaluated.
    pub fn get(&self, id: NodeId) -> Result<&Tensor, GraphError> {
        // During a tiled pass a segment node's current row group shadows any full-batch
        // value; outside tiled execution the overlay is zero-length and this is one
        // failing bounds check.
        if let Some(tile) = self.tile_values.get(id.index()).and_then(|v| v.as_ref()) {
            return Ok(tile);
        }
        if let Some(value) = self.values.get(id.index()).and_then(|v| v.as_ref()) {
            return Ok(value);
        }
        let q = self
            .qvalues
            .get(id.index())
            .and_then(|v| v.as_ref())
            .ok_or(GraphError::UnknownNode(id))?;
        let slot = &self.qmirrors[id.index()];
        Ok(slot.decoded.get_or_init(|| {
            let mut mirror = slot.seed.borrow_mut().take().unwrap_or_else(Tensor::empty);
            q.dequantize_into(&mut mirror);
            mirror
        }))
    }

    /// The dimensions of `id`'s computed value — read from the stored words on a
    /// fixed-point backend, so checking a shape never forces a mirror decode.
    pub fn dims_of(&self, id: NodeId) -> Option<&[usize]> {
        if let Some(tensor) = self.values.get(id.index()).and_then(|v| v.as_ref()) {
            return Some(tensor.dims());
        }
        self.qvalues
            .get(id.index())
            .and_then(|v| v.as_ref())
            .map(|q| q.dims())
    }

    /// Whether `id`'s f32 mirror has been decoded this pass — test instrumentation for
    /// the laziness contract.
    #[doc(hidden)]
    pub fn mirror_decoded(&self, id: NodeId) -> bool {
        self.qmirrors
            .get(id.index())
            .is_some_and(|slot| slot.decoded.get().is_some())
    }

    /// Returns the raw fixed-point words computed for `id` (fixed-point backends only).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if the node was not evaluated on a fixed-point
    /// backend.
    pub fn get_q(&self, id: NodeId) -> Result<&QTensor, GraphError> {
        if let Some(tile) = self.tile_qvalues.get(id.index()).and_then(|v| v.as_ref()) {
            return Ok(tile);
        }
        self.qvalues
            .get(id.index())
            .and_then(|v| v.as_ref())
            .ok_or(GraphError::UnknownNode(id))
    }

    /// Stores the computed value for `id` (backends pair this with
    /// [`Values::take_recycled`]).
    pub fn set(&mut self, id: NodeId, value: Tensor) {
        self.values[id.index()] = Some(value);
    }

    /// Stores the computed words for `id` (fixed-point backends pair this with
    /// [`Values::take_recycled_q`]) and **arms the lazy f32 mirror**: any previously
    /// decoded mirror for the node is invalidated, and the node's recycled f32 buffer is
    /// parked as the seed the first [`Values::get`] will decode into. Storing words after
    /// *any* mutation — kernel output, word-level fault injection, or the generic
    /// interceptor bridge — therefore forces the next read to decode fresh words.
    pub fn set_q(&mut self, id: NodeId, value: QTensor) {
        self.qvalues[id.index()] = Some(value);
        let seed = self.take_recycled(id);
        let slot = &mut self.qmirrors[id.index()];
        slot.decoded.take();
        *slot.seed.get_mut() = Some(seed);
    }

    /// Iterates over all evaluated `(node id, tensor)` pairs.
    ///
    /// On a fixed-point backend this decodes the mirror of **every** stored node — it is
    /// the whole-graph introspection path (FLOPs profiling, debugging); hot paths read
    /// single nodes through [`Values::get`] instead.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Tensor)> {
        (0..self.values.len().max(self.qvalues.len())).filter_map(move |i| {
            let id = NodeId::new(i);
            self.get(id).ok().map(|t| (id, t))
        })
    }
}

/// Builds the [`GraphError::ArityMismatch`] for a node that received the wrong number of
/// inputs — shared by every backend's operand checks.
pub fn arity_err(node: &Node, expected: usize) -> GraphError {
    GraphError::ArityMismatch {
        node: node.id,
        op: node.op.kind_name().to_string(),
        expected,
        actual: node.inputs.len(),
    }
}

pub(crate) fn input<'v>(
    node: &Node,
    values: &'v Values,
    idx: usize,
) -> Result<&'v Tensor, GraphError> {
    let id = *node
        .inputs
        .get(idx)
        .ok_or_else(|| arity_err(node, idx + 1))?;
    values.get(id)
}

/// Evaluates one node given the values of its inputs and the feed list, writing the
/// result into the recycled buffer `out`.
///
/// This is the workspace's **single semantic reference**: the f32
/// [`ReferenceBackend`](crate::backend::ReferenceBackend) (and through it `Executor` and
/// every `ExecPlan`) dispatches here, and every alternative backend is pinned against it
/// by parity tests, so execution paths cannot diverge semantically. `out` is an output
/// buffer whose allocation is reused (see [`Values::take_recycled`]); on error its
/// contents are unspecified but no value is stored for the node.
///
/// # Errors
///
/// Returns a [`GraphError`] if a feed is missing or any operator receives invalid
/// operands.
pub fn eval_node_into(
    node: &Node,
    values: &Values,
    feeds: &[(&str, Tensor)],
    out: &mut Tensor,
) -> Result<(), GraphError> {
    match &node.op {
        Op::Input => {
            let fed = feeds
                .iter()
                .find(|(name, _)| *name == node.name)
                .map(|(_, t)| t)
                .or(node.value.as_ref())
                .ok_or_else(|| GraphError::MissingFeed(node.name.clone()))?;
            out.reset_from_slice(fed.dims(), fed.data())
                .expect("shape and data of an existing tensor agree");
            Ok(())
        }
        Op::Const => {
            let value = node
                .value
                .as_ref()
                .ok_or(GraphError::MissingConstValue(node.id))?;
            out.reset_from_slice(value.dims(), value.data())
                .expect("shape and data of an existing tensor agree");
            Ok(())
        }
        Op::Conv2d { stride, padding } => {
            if node.inputs.len() != 2 {
                return Err(arity_err(node, 2));
            }
            let x = input(node, values, 0)?;
            let w = input(node, values, 1)?;
            ops::conv2d_forward_into(node.id, x, w, *stride, *padding, out)
        }
        Op::MatMul => {
            if node.inputs.len() != 2 {
                return Err(arity_err(node, 2));
            }
            ops::matmul_forward_into(
                node.id,
                input(node, values, 0)?,
                input(node, values, 1)?,
                out,
            )
        }
        Op::BiasAdd => {
            if node.inputs.len() != 2 {
                return Err(arity_err(node, 2));
            }
            ops::bias_add_forward_into(
                node.id,
                input(node, values, 0)?,
                input(node, values, 1)?,
                out,
            )
        }
        Op::Relu => {
            ops::relu_forward_into(input(node, values, 0)?, out);
            Ok(())
        }
        Op::Tanh => {
            ops::tanh_forward_into(input(node, values, 0)?, out);
            Ok(())
        }
        Op::Sigmoid => {
            ops::sigmoid_forward_into(input(node, values, 0)?, out);
            Ok(())
        }
        Op::Atan => {
            ops::atan_forward_into(input(node, values, 0)?, out);
            Ok(())
        }
        Op::Elu => {
            ops::elu_forward_into(input(node, values, 0)?, out);
            Ok(())
        }
        Op::Softmax => ops::softmax_forward_into(node.id, input(node, values, 0)?, out),
        Op::MaxPool { kernel, stride } => {
            ops::max_pool_forward_into(node.id, input(node, values, 0)?, *kernel, *stride, out)
        }
        Op::AvgPool { kernel, stride } => {
            ops::avg_pool_forward_into(node.id, input(node, values, 0)?, *kernel, *stride, out)
        }
        Op::GlobalAvgPool => {
            ops::global_avg_pool_forward_into(node.id, input(node, values, 0)?, out)
        }
        Op::Flatten => ops::flatten_forward_into(node.id, input(node, values, 0)?, out),
        Op::Reshape { dims } => {
            ops::reshape_forward_into(node.id, input(node, values, 0)?, dims, out)
        }
        Op::Concat => {
            if node.inputs.is_empty() {
                return Err(arity_err(node, 1));
            }
            let mut tensors = Vec::with_capacity(node.inputs.len());
            for i in 0..node.inputs.len() {
                tensors.push(input(node, values, i)?);
            }
            ops::concat_forward_into(node.id, &tensors, out)
        }
        Op::Add => {
            if node.inputs.len() != 2 {
                return Err(arity_err(node, 2));
            }
            ops::add_forward_into(
                node.id,
                input(node, values, 0)?,
                input(node, values, 1)?,
                out,
            )
        }
        Op::Mul => {
            if node.inputs.len() != 2 {
                return Err(arity_err(node, 2));
            }
            ops::mul_forward_into(
                node.id,
                input(node, values, 0)?,
                input(node, values, 1)?,
                out,
            )
        }
        Op::ScalarMul { factor } => {
            let factor = *factor;
            input(node, values, 0)?.map_into(out, |v| v * factor);
            Ok(())
        }
        Op::Identity => {
            let x = input(node, values, 0)?;
            out.reset_from_slice(x.dims(), x.data())
                .expect("shape and data of an existing tensor agree");
            Ok(())
        }
        Op::Clamp { lo, hi } => {
            ops::clamp_forward_into(input(node, values, 0)?, *lo, *hi, out);
            Ok(())
        }
        Op::RangeRestore { lo, hi, policy } => {
            ops::range_restore_forward_into(input(node, values, 0)?, *lo, *hi, *policy, out);
            Ok(())
        }
    }
}

/// Executes a [`Graph`] on fed inputs, planning each run from scratch.
///
/// This is the convenience single-shot API; it compiles a fresh
/// [`ExecPlan`](crate::plan::ExecPlan) per call. Code that runs the same graph many times
/// should compile the plan once instead.
#[derive(Debug, Clone, Copy)]
pub struct Executor<'g> {
    graph: &'g Graph,
}

impl<'g> Executor<'g> {
    /// Creates an executor over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        Executor { graph }
    }

    /// Runs a forward pass and returns the values of every node.
    ///
    /// `feeds` maps input-node names to tensors. The `interceptor` is called after every
    /// operator (not for inputs or constants).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a feed is missing, the graph is cyclic, or any operator
    /// receives invalid operands.
    pub fn run(
        &self,
        feeds: &[(&str, Tensor)],
        interceptor: &mut dyn Interceptor,
    ) -> Result<Values, GraphError> {
        self.graph.compile()?.run(feeds, interceptor)
    }

    /// Runs a forward pass and returns only the value of `fetch`, using no interceptor.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] under the same conditions as [`Executor::run`].
    pub fn run_simple(
        &self,
        feeds: &[(&str, Tensor)],
        fetch: NodeId,
    ) -> Result<Tensor, GraphError> {
        let values = self.run(feeds, &mut NoopInterceptor)?;
        values.get(fetch).cloned()
    }

    /// Runs a forward pass with an interceptor and returns only the value of `fetch`.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] under the same conditions as [`Executor::run`].
    pub fn run_with(
        &self,
        feeds: &[(&str, Tensor)],
        fetch: NodeId,
        interceptor: &mut dyn Interceptor,
    ) -> Result<Tensor, GraphError> {
        let values = self.run(feeds, interceptor)?;
        values.get(fetch).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Padding;

    fn relu_net() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let w = g.add_const(
            "w",
            Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
            true,
        );
        let mm = g.add_node("matmul", Op::MatMul, vec![x, w]);
        let relu = g.add_node("relu", Op::Relu, vec![mm]);
        (g, mm, relu)
    }

    #[test]
    fn forward_pass_computes_expected_values() {
        let (g, _, relu) = relu_net();
        let exec = Executor::new(&g);
        let x = Tensor::from_vec(vec![1, 2], vec![-1.0, 2.0]).unwrap();
        let out = exec.run_simple(&[("x", x)], relu).unwrap();
        assert_eq!(out.data(), &[0.0, 2.0]);
    }

    #[test]
    fn missing_feed_is_an_error() {
        let (g, _, relu) = relu_net();
        let exec = Executor::new(&g);
        assert!(matches!(
            exec.run_simple(&[], relu),
            Err(GraphError::MissingFeed(_))
        ));
    }

    #[test]
    fn interceptor_sees_each_operator_once_in_order() {
        let (g, mm, relu) = relu_net();
        let exec = Executor::new(&g);
        let mut rec = RecordingInterceptor::default();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        exec.run_with(&[("x", x)], relu, &mut rec).unwrap();
        let ids: Vec<NodeId> = rec.outputs.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![mm, relu]);
    }

    #[test]
    fn interceptor_can_corrupt_an_operator_output() {
        struct CorruptMatmul;
        impl Interceptor for CorruptMatmul {
            fn after_op(&mut self, node: &Node, output: &mut Tensor) {
                if node.name == "matmul" {
                    output.data_mut()[0] = 1.0e6;
                }
            }
        }
        let (g, _, relu) = relu_net();
        let exec = Executor::new(&g);
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let out = exec
            .run_with(&[("x", x)], relu, &mut CorruptMatmul)
            .unwrap();
        assert_eq!(out.data()[0], 1.0e6);
    }

    #[test]
    fn clamp_node_restricts_corrupted_value() {
        struct CorruptMatmul;
        impl Interceptor for CorruptMatmul {
            fn after_op(&mut self, node: &Node, output: &mut Tensor) {
                if node.name == "matmul" {
                    output.data_mut()[0] = 1.0e6;
                }
            }
        }
        let (mut g, mm, relu) = relu_net();
        g.insert_after(mm, "ranger", Op::Clamp { lo: 0.0, hi: 10.0 })
            .unwrap();
        let exec = Executor::new(&g);
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let out = exec
            .run_with(&[("x", x)], relu, &mut CorruptMatmul)
            .unwrap();
        assert_eq!(out.data()[0], 10.0);
    }

    #[test]
    fn conv_graph_end_to_end() {
        let mut g = Graph::new();
        let x = g.add_input("image");
        let w = g.add_const("w", Tensor::ones(vec![2, 1, 3, 3]), true);
        let b = g.add_const("b", Tensor::zeros(vec![2]), true);
        let conv = g.add_node(
            "conv",
            Op::Conv2d {
                stride: 1,
                padding: Padding::Same,
            },
            vec![x, w],
        );
        let biased = g.add_node("bias", Op::BiasAdd, vec![conv, b]);
        let relu = g.add_node("relu", Op::Relu, vec![biased]);
        let pool = g.add_node(
            "pool",
            Op::MaxPool {
                kernel: 2,
                stride: 2,
            },
            vec![relu],
        );
        let flat = g.add_node("flatten", Op::Flatten, vec![pool]);

        let exec = Executor::new(&g);
        let img = Tensor::ones(vec![1, 1, 4, 4]);
        let out = exec.run_simple(&[("image", img)], flat).unwrap();
        assert_eq!(out.dims(), &[1, 8]);
        assert!(out.data().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn arity_errors_are_reported() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        g.add_node("bad", Op::MatMul, vec![x]);
        let bad = g.by_name("bad").unwrap();
        let exec = Executor::new(&g);
        let err = exec
            .run_simple(&[("x", Tensor::ones(vec![1, 1]))], bad)
            .unwrap_err();
        assert!(matches!(err, GraphError::ArityMismatch { .. }));
    }

    #[test]
    fn values_iterate_in_id_order() {
        let (g, mm, relu) = relu_net();
        let exec = Executor::new(&g);
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let values = exec.run(&[("x", x)], &mut NoopInterceptor).unwrap();
        let ids: Vec<NodeId> = values.iter().map(|(id, _)| id).collect();
        assert!(ids.contains(&mm) && ids.contains(&relu));
        assert!(values.get(relu).is_ok());
    }
}
