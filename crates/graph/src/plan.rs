//! Compiled execution plans: plan a graph once, run it many times.
//!
//! [`Executor`](crate::exec::Executor) re-derives the topological order and re-allocates
//! its value store on every forward pass. That is fine for one-shot evaluation but wasteful
//! on the reproduction's hot path — a fault-injection campaign runs the *same* graph
//! thousands of times, and a bound-profiling pass runs it once per profiling sample. An
//! [`ExecPlan`] front-loads the per-run planning work:
//!
//! * the topological order is computed once at [`Graph::compile`] time instead of being
//!   re-derived (with its O(nodes) bookkeeping allocations) on every pass,
//! * the output shape of every node can be recorded once ([`ExecPlan::warm`]) and reused
//!   for introspection — and to pre-size the buffer arena handed out by
//!   [`ExecPlan::buffers`],
//! * the node-value store ([`Values`]) doubles as a per-node buffer arena: every operator
//!   writes its output into the buffer its node produced on the previous pass, so a
//!   `run_into` loop performs zero output-tensor allocations after warm-up (verified by
//!   the `alloc_free_plan` integration test with a counting global allocator).
//!
//! The [`Interceptor`] hook behaves exactly as it does under `Executor` — the fault
//! injector and the bound profiler observe the same nodes in the same order — and the
//! computed values are bit-for-bit identical (`Executor` is itself implemented as
//! "compile, then run once").
//!
//! # Example
//!
//! ```
//! use ranger_graph::exec::NoopInterceptor;
//! use ranger_graph::builder::GraphBuilder;
//! use ranger_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut b = GraphBuilder::new();
//! let x = b.input("x");
//! let h = b.dense(x, 4, 8, &mut rng);
//! let y = b.relu(h);
//! let graph = b.into_graph();
//!
//! let plan = graph.compile()?;
//! let mut values = plan.buffers();
//! for _ in 0..100 {
//!     plan.run_into(&mut values, &[("x", Tensor::ones(vec![1, 4]))], &mut NoopInterceptor)?;
//!     assert_eq!(values.get(y)?.dims(), &[1, 8]);
//! }
//! # Ok::<(), ranger_graph::GraphError>(())
//! ```

use crate::backend::{ExecBackend, ReferenceBackend};
use crate::error::GraphError;
use crate::exec::{Interceptor, NoopInterceptor, TileRows, Values};
use crate::graph::{Graph, NodeId};
use crate::op::Op;
use ranger_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static REFERENCE: ReferenceBackend = ReferenceBackend;

impl Graph {
    /// Compiles this graph into a reusable execution plan on the `f32`
    /// [`ReferenceBackend`].
    ///
    /// # Example
    ///
    /// ```
    /// use ranger_graph::{Graph, Op};
    /// use ranger_tensor::Tensor;
    ///
    /// let mut g = Graph::new();
    /// let x = g.add_input("x");
    /// let y = g.add_node("double", Op::ScalarMul { factor: 2.0 }, vec![x]);
    /// let plan = g.compile()?;
    /// let out = plan.run_simple(&[("x", Tensor::ones(vec![1, 3]))], y)?;
    /// assert_eq!(out.data(), &[2.0, 2.0, 2.0]);
    /// # Ok::<(), ranger_graph::GraphError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CyclicGraph`] if the graph contains a cycle (the same check
    /// every `Executor` run would perform).
    pub fn compile(&self) -> Result<ExecPlan<'_>, GraphError> {
        self.compile_with(&REFERENCE)
    }

    /// Compiles this graph into an execution plan on an explicit backend — the seam for
    /// alternative compute paths (fixed-point today; SIMD/GPU backends tomorrow).
    ///
    /// The planning work (topological order, shape recording, buffer arena) is
    /// backend-independent; only per-node kernel dispatch changes.
    ///
    /// # Example
    ///
    /// ```
    /// use ranger_graph::backend::BackendKind;
    /// use ranger_graph::{Graph, Op};
    /// use ranger_tensor::Tensor;
    ///
    /// let mut g = Graph::new();
    /// let x = g.add_input("x");
    /// let y = g.add_node("double", Op::ScalarMul { factor: 2.0 }, vec![x]);
    /// let plan = g.compile_with(BackendKind::Fixed16.backend())?;
    /// // 0.3 quantizes to 0.25 on the Q14.2 grid before the multiply.
    /// let out = plan.run_simple(&[("x", Tensor::filled(vec![1, 2], 0.3))], y)?;
    /// assert_eq!(out.data(), &[0.5, 0.5]);
    /// # Ok::<(), ranger_graph::GraphError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CyclicGraph`] if the graph contains a cycle.
    pub fn compile_with<'g>(
        &'g self,
        backend: &'g dyn ExecBackend,
    ) -> Result<ExecPlan<'g>, GraphError> {
        let order = self.topological_order()?;
        Ok(ExecPlan {
            graph: self,
            backend,
            order,
            shapes: OnceLock::new(),
            timings: OnceLock::new(),
        })
    }
}

/// Pre-sized per-node wall-time slots, created once at [`ExecPlan::warm`] time.
///
/// One `AtomicU64` of accumulated nanoseconds per graph node plus a pass counter:
/// recording from [`ExecPlan::run_into`] is two clock reads and one relaxed
/// `fetch_add` per node, with **zero allocations** — the slots exist before the
/// first timed pass, so the `alloc_free_plan` counting-allocator pin holds with
/// metrics enabled. Atomic slots also let the many worker threads sharing one
/// campaign plan record concurrently.
#[derive(Debug)]
struct PlanTimings {
    /// Accumulated wall nanoseconds per node, indexed by `NodeId::index()`.
    node_nanos: Vec<AtomicU64>,
    /// Number of completed timed passes.
    passes: AtomicU64,
    /// Segments executed by tiled passes ([`ExecPlan::run_tiled_into`]).
    tile_segments: AtomicU64,
    /// Batch rows pushed through segments by tiled passes (rows × segments).
    tile_rows: AtomicU64,
    /// Wall nanoseconds spent inside segment execution (slicing, row-group kernels,
    /// materialization) by tiled passes.
    tile_nanos: AtomicU64,
}

/// The default per-segment working-set budget [`ExecPlan::derive_tile_rows`] sizes row
/// groups against: half a MiB, comfortably inside a typical per-core L2 so a segment's
/// live activations stay cache-resident between consecutive nodes.
pub const DEFAULT_TILE_BUDGET_BYTES: usize = 512 * 1024;

/// One step of a [`TiledSchedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileStep {
    /// Consecutive nodes evaluated once on the whole batch, exactly as
    /// [`ExecPlan::run_into`] would — constants, inputs, batch barriers (softmax), and
    /// anything that does not tile row-wise.
    Whole(Vec<NodeId>),
    /// Consecutive row-tileable nodes evaluated one row group at a time.
    Segment(SegmentPlan),
}

/// A maximal run of consecutive row-tileable nodes, with the bookkeeping tiled
/// execution needs: which outputs must be assembled back into full-batch values, and
/// which batch-carrying values computed outside the segment feed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPlan {
    /// The segment's nodes, in execution order.
    pub nodes: Vec<NodeId>,
    /// For each node of `nodes`: whether its row groups are materialized into a
    /// full-batch value (true iff the node is consumed outside the segment, kept by the
    /// caller, or has no consumers at all). Non-materialized outputs live only as
    /// row-group scratch and are unreadable after the pass.
    pub materialize: Vec<bool>,
    /// Batch-carrying inputs computed outside the segment, row-sliced into the tile
    /// overlay for every group. Non-carrying inputs (weights, biases) are read whole.
    pub externals: Vec<NodeId>,
}

/// A tiled execution schedule: the plan's topological order partitioned into
/// [`TileStep`]s by [`ExecPlan::tiled_schedule`]. Owns no borrows, so campaigns build
/// it once next to the plan and reuse it across every pass and worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TiledSchedule {
    steps: Vec<TileStep>,
}

impl TiledSchedule {
    /// The schedule's steps, in execution order.
    pub fn steps(&self) -> &[TileStep] {
        &self.steps
    }

    /// Number of [`TileStep::Segment`] steps — 0 means tiling degenerates to the
    /// untiled order and callers may as well use [`ExecPlan::run_into`].
    pub fn segments(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, TileStep::Segment(_)))
            .count()
    }
}

/// Classifies one node for the tiled scheduler, given the carrying flags of every
/// already-classified (topologically earlier) node. Returns `(carrying, tileable)`:
/// whether the node's output carries the batch in its leading dimension, and whether
/// the node may run inside a row-group segment.
///
/// The rules are structural (no shapes needed):
///
/// - `Input` carries the batch but runs whole — the feed is copied once per pass, then
///   row-sliced into each group as a segment external.
/// - `Const` never carries.
/// - `Conv2d` / `MatMul` / `BiasAdd` carry through their first operand and tile iff the
///   data operand carries while the weight operand does not.
/// - `Softmax` carries but is a batch **barrier** — campaigns inject whole-batch faults
///   into its output, and keeping it whole also keeps the fixed-point kernel's row
///   buffer out of the per-group loop.
/// - Elementwise, pooling and shape ops tile iff their single input carries.
/// - `Add` / `Mul` tile iff **both** operands carry; `Concat` iff all of them do
///   (a non-carrying operand would need broadcasting the tiler does not do).
///
/// Anything non-tileable lands in a [`TileStep::Whole`] run, where the reference
/// (untiled) evaluation and interception semantics apply verbatim.
fn classify(op: &Op, inputs: &[NodeId], carrying: &[bool]) -> (bool, bool) {
    let c = |i: usize| {
        inputs
            .get(i)
            .is_some_and(|id| carrying.get(id.index()).copied().unwrap_or(false))
    };
    match op {
        Op::Input => (true, false),
        Op::Const => (false, false),
        Op::Conv2d { .. } | Op::MatMul | Op::BiasAdd => (c(0), inputs.len() == 2 && c(0) && !c(1)),
        Op::Softmax => (c(0), false),
        Op::Add | Op::Mul => (c(0) || c(1), inputs.len() == 2 && c(0) && c(1)),
        Op::Concat => {
            let any = (0..inputs.len()).any(c);
            let all = !inputs.is_empty() && (0..inputs.len()).all(c);
            (any, all)
        }
        Op::Relu
        | Op::Tanh
        | Op::Sigmoid
        | Op::Atan
        | Op::Elu
        | Op::MaxPool { .. }
        | Op::AvgPool { .. }
        | Op::GlobalAvgPool
        | Op::Flatten
        | Op::Reshape { .. }
        | Op::ScalarMul { .. }
        | Op::Identity
        | Op::Clamp { .. }
        | Op::RangeRestore { .. } => (c(0), inputs.len() == 1 && c(0)),
    }
}

/// A compiled execution plan over a borrowed [`Graph`].
///
/// Create with [`Graph::compile`] (the `f32` reference backend) or
/// [`Graph::compile_with`] (any [`ExecBackend`]). The plan borrows the graph immutably,
/// so any number of plans can coexist, and the graph cannot be rewritten while a plan
/// over it is alive — exactly the staleness bug the borrow checker should reject.
#[derive(Debug)]
pub struct ExecPlan<'g> {
    graph: &'g Graph,
    backend: &'g dyn ExecBackend,
    order: Vec<NodeId>,
    /// Per-node output dimensions, recorded on the first completed run.
    shapes: OnceLock<Vec<Option<Vec<usize>>>>,
    /// Per-node wall-time slots, created at warm time iff metrics are enabled.
    timings: OnceLock<PlanTimings>,
}

impl<'g> ExecPlan<'g> {
    /// The graph this plan executes.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The backend this plan dispatches kernels through.
    pub fn backend(&self) -> &'g dyn ExecBackend {
        self.backend
    }

    /// The topological execution order computed at compile time.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Returns a value store sized for this plan, for use with [`ExecPlan::run_into`].
    ///
    /// If the plan has been [warmed](ExecPlan::warm), every per-node output buffer is
    /// pre-allocated to the recorded shape's element count, so even the store's first
    /// `run_into` pass allocates no output tensors (for feeds of the warmed batch size).
    pub fn buffers(&self) -> Values {
        let mut values = Values::new(self.graph.len());
        if let Some(shapes) = self.shapes.get() {
            let spec = self.backend.spec();
            for (index, dims) in shapes.iter().enumerate() {
                if let Some(dims) = dims {
                    values.preallocate(NodeId::new(index), dims);
                    if let Some(spec) = spec {
                        values.preallocate_q(NodeId::new(index), spec, dims);
                    }
                }
            }
        }
        values
    }

    /// Runs a forward pass into a caller-owned value store, reusing its allocations.
    ///
    /// This is the hot-path entry point: the previous pass's tensors become the output
    /// buffers of the current pass (see [`Values`]), so after the first pass a `run_into`
    /// loop performs **zero output-tensor allocations** — each operator writes into its
    /// node's recycled buffer. The `interceptor` is called after every operator, as under
    /// [`Executor`](crate::exec::Executor).
    ///
    /// If the plan was [warmed](ExecPlan::warm) while metrics were enabled
    /// (`ranger_obs`), each node's wall time is accumulated into a pre-sized atomic
    /// slot — still zero allocations, no RNG, and no branching on observed values,
    /// so results are bit-for-bit identical with metrics on or off. Drain the slots
    /// into the global registry with [`ExecPlan::publish_timings`].
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a feed is missing or any operator receives invalid
    /// operands.
    pub fn run_into(
        &self,
        values: &mut Values,
        feeds: &[(&str, Tensor)],
        interceptor: &mut dyn Interceptor,
    ) -> Result<(), GraphError> {
        values.reset(self.graph.len());
        if let Some(timings) = self.timings.get() {
            for &id in &self.order {
                let node = self.graph.node(id)?;
                let start = Instant::now();
                self.backend.eval_node(node, values, feeds, interceptor)?;
                let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                timings.node_nanos[id.index()].fetch_add(nanos, Ordering::Relaxed);
            }
            timings.passes.fetch_add(1, Ordering::Relaxed);
        } else {
            for &id in &self.order {
                let node = self.graph.node(id)?;
                self.backend.eval_node(node, values, feeds, interceptor)?;
            }
        }
        Ok(())
    }

    /// Partitions this plan's topological order into a [`TiledSchedule`]: maximal runs
    /// of row-tileable nodes become [`TileStep::Segment`]s, everything else stays in
    /// [`TileStep::Whole`] runs with the untiled semantics. `keep` names nodes whose
    /// full-batch outputs the caller will read after the pass (a campaign passes its
    /// injection target's output); they are materialized even when consumed only inside
    /// their segment.
    ///
    /// The partition is structural — no shapes needed, so the schedule can be built
    /// before warming — and deterministic: the same graph always yields the same steps.
    pub fn tiled_schedule(&self, keep: &[NodeId]) -> TiledSchedule {
        let mut carrying = vec![false; self.graph.len()];
        let mut steps: Vec<TileStep> = Vec::new();
        let mut whole: Vec<NodeId> = Vec::new();
        let mut seg: Vec<NodeId> = Vec::new();
        for &id in &self.order {
            let Ok(node) = self.graph.node(id) else {
                continue;
            };
            let (carries, tileable) = classify(&node.op, &node.inputs, &carrying);
            if let Some(slot) = carrying.get_mut(id.index()) {
                *slot = carries;
            }
            if tileable {
                if !whole.is_empty() {
                    steps.push(TileStep::Whole(std::mem::take(&mut whole)));
                }
                seg.push(id);
            } else {
                if !seg.is_empty() {
                    let plan = self.finalize_segment(std::mem::take(&mut seg), keep, &carrying);
                    steps.push(TileStep::Segment(plan));
                }
                whole.push(id);
            }
        }
        if !seg.is_empty() {
            let plan = self.finalize_segment(seg, keep, &carrying);
            steps.push(TileStep::Segment(plan));
        }
        if !whole.is_empty() {
            steps.push(TileStep::Whole(whole));
        }
        TiledSchedule { steps }
    }

    /// Completes a segment's bookkeeping: which outputs to materialize, which carrying
    /// values to row-slice in.
    fn finalize_segment(
        &self,
        nodes: Vec<NodeId>,
        keep: &[NodeId],
        carrying: &[bool],
    ) -> SegmentPlan {
        let mut materialize = Vec::with_capacity(nodes.len());
        for &id in &nodes {
            let consumers = self.graph.consumers(id);
            let escapes = consumers.is_empty() || consumers.iter().any(|c| !nodes.contains(c));
            materialize.push(escapes || keep.contains(&id));
        }
        let mut externals: Vec<NodeId> = Vec::new();
        for &id in &nodes {
            let Ok(node) = self.graph.node(id) else {
                continue;
            };
            for &input in &node.inputs {
                if carrying.get(input.index()).copied().unwrap_or(false)
                    && !nodes.contains(&input)
                    && !externals.contains(&input)
                {
                    externals.push(input);
                }
            }
        }
        SegmentPlan {
            nodes,
            materialize,
            externals,
        }
    }

    /// Derives a row-group height from this plan's warmed shapes: the largest
    /// `tile_rows` whose worst-case segment working set (one row of every segment node
    /// plus every sliced external, 4 bytes per element, times `tile_rows`) fits
    /// `budget_bytes`. Returns at least 1; [`ExecPlan::run_tiled_into`] caps the value
    /// at the pass's actual batch rows.
    ///
    /// Requires a [warmed](ExecPlan::warm) plan — without recorded shapes (or with a
    /// schedule that has no segments) there is nothing to size against and the answer
    /// is 1.
    pub fn derive_tile_rows(&self, schedule: &TiledSchedule, budget_bytes: usize) -> usize {
        let Some(shapes) = self.shapes.get() else {
            return 1;
        };
        let row_bytes = |id: NodeId| -> usize {
            shapes
                .get(id.index())
                .and_then(|dims| dims.as_ref())
                .map(|dims| {
                    let per_row: usize = dims.get(1..).map(|d| d.iter().product()).unwrap_or(1);
                    per_row.max(1) * std::mem::size_of::<f32>()
                })
                .unwrap_or(0)
        };
        let mut worst = 0usize;
        for step in &schedule.steps {
            if let TileStep::Segment(seg) = step {
                let bytes: usize = seg
                    .nodes
                    .iter()
                    .chain(&seg.externals)
                    .map(|&id| row_bytes(id))
                    .sum();
                worst = worst.max(bytes);
            }
        }
        if worst == 0 {
            return 1;
        }
        (budget_bytes / worst).max(1)
    }

    /// Runs one forward pass under a [`TiledSchedule`], `tile_rows` batch rows at a
    /// time: each [`TileStep::Segment`] slices its carrying externals into row-group
    /// views, pushes the group through every segment node back-to-back (so the group's
    /// live activations stay cache-resident across the segment), materializes the
    /// outputs that escape the segment, and recycles the group's scratch.
    /// [`TileStep::Whole`] runs evaluate exactly as [`ExecPlan::run_into`] does.
    ///
    /// Semantics: with an interceptor that translates [`TileRows`] offsets (the fault
    /// injectors) — or with none — the pass's readable outputs are **bit-for-bit**
    /// identical to the untiled pass at every tile size, because every kernel sees the
    /// same per-row operands in the same order and row groups merely partition the
    /// batch. Only nodes evaluated whole or materialized are readable afterwards;
    /// interior segment scratch is not.
    ///
    /// `tile_rows` is clamped to `[1, batch rows]`; `tile_rows >= batch` degenerates to
    /// one group per segment (still exercising the tile code path).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a feed is missing, any operator receives invalid
    /// operands, or a segment external lacks a leading batch dimension shared by its
    /// peers.
    pub fn run_tiled_into(
        &self,
        values: &mut Values,
        feeds: &[(&str, Tensor)],
        interceptor: &mut dyn Interceptor,
        schedule: &TiledSchedule,
        tile_rows: usize,
    ) -> Result<(), GraphError> {
        values.reset(self.graph.len());
        values.begin_tiles(self.graph.len());
        let timings = self.timings.get();
        let spec = self.backend.spec();
        let mut seg_count = 0u64;
        let mut rows_done = 0u64;
        let mut seg_nanos = 0u64;
        for step in &schedule.steps {
            match step {
                TileStep::Whole(nodes) => {
                    for &id in nodes {
                        let node = self.graph.node(id)?;
                        if let Some(t) = timings {
                            let start = Instant::now();
                            self.backend.eval_node(node, values, feeds, interceptor)?;
                            let nanos =
                                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            t.node_nanos[id.index()].fetch_add(nanos, Ordering::Relaxed);
                        } else {
                            self.backend.eval_node(node, values, feeds, interceptor)?;
                        }
                    }
                }
                TileStep::Segment(seg) => {
                    let seg_start = timings.map(|_| Instant::now());
                    // Every carrying external must agree on the batch row count.
                    let mut total_rows: Option<usize> = None;
                    for &e in &seg.externals {
                        let dims = values.dims_of(e).ok_or(GraphError::UnknownNode(e))?;
                        let lead = *dims.first().ok_or_else(|| GraphError::ShapeError {
                            node: e,
                            message: "tiled segment input requires a leading batch dimension"
                                .into(),
                        })?;
                        match total_rows {
                            None => total_rows = Some(lead),
                            Some(rows) if rows == lead => {}
                            Some(rows) => {
                                return Err(GraphError::ShapeError {
                                    node: e,
                                    message: format!(
                                        "segment inputs disagree on batch rows: {lead} vs {rows}"
                                    ),
                                });
                            }
                        }
                    }
                    let total_rows = total_rows.unwrap_or(0);
                    let step_rows = tile_rows.clamp(1, total_rows.max(1));
                    let mut row_start = 0usize;
                    while row_start < total_rows {
                        let rows = step_rows.min(total_rows - row_start);
                        let tr = TileRows {
                            row_start,
                            rows,
                            total_rows,
                        };
                        for &e in &seg.externals {
                            if spec.is_some() {
                                values.slice_rows_to_tile_q(e, row_start, rows)?;
                            } else {
                                values.slice_rows_to_tile(e, row_start, rows)?;
                            }
                        }
                        for &id in &seg.nodes {
                            let node = self.graph.node(id)?;
                            if let Some(t) = timings {
                                let start = Instant::now();
                                self.backend.eval_node_tile(
                                    node,
                                    values,
                                    feeds,
                                    interceptor,
                                    tr,
                                )?;
                                let nanos =
                                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                                t.node_nanos[id.index()].fetch_add(nanos, Ordering::Relaxed);
                            } else {
                                self.backend.eval_node_tile(
                                    node,
                                    values,
                                    feeds,
                                    interceptor,
                                    tr,
                                )?;
                            }
                        }
                        for (&id, &mat) in seg.nodes.iter().zip(&seg.materialize) {
                            if mat {
                                if spec.is_some() {
                                    values.materialize_tile_q(id, row_start == 0)?;
                                } else {
                                    values.materialize_tile(id, row_start == 0)?;
                                }
                            }
                        }
                        values.recycle_tiles();
                        row_start += rows;
                        rows_done += rows as u64;
                    }
                    seg_count += 1;
                    if let Some(start) = seg_start {
                        seg_nanos = seg_nanos.saturating_add(
                            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                    }
                }
            }
        }
        if let Some(t) = timings {
            t.passes.fetch_add(1, Ordering::Relaxed);
            t.tile_segments.fetch_add(seg_count, Ordering::Relaxed);
            t.tile_rows.fetch_add(rows_done, Ordering::Relaxed);
            t.tile_nanos.fetch_add(seg_nanos, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Runs one forward pass on `feeds` and records every node's output shape, making
    /// [`ExecPlan::output_dims`] available. Shapes are computed at most once per plan;
    /// subsequent calls only run the pass if recording has not happened yet.
    ///
    /// Recording is explicit (not part of [`ExecPlan::run_into`]) so single-shot
    /// executions — including every [`Executor`](crate::exec::Executor) call, which
    /// compiles a throwaway plan — never pay for shape bookkeeping they cannot use.
    ///
    /// # Errors
    ///
    /// See [`ExecPlan::run_into`].
    pub fn warm(&self, feeds: &[(&str, Tensor)]) -> Result<(), GraphError> {
        if self.shapes.get().is_some() {
            self.ensure_timings();
            return Ok(());
        }
        let values = self.run(feeds, &mut NoopInterceptor)?;
        // dims_of reads shapes from whichever representation the backend stored, so
        // warming a fixed-point plan records every node without decoding any mirror.
        let recorded: Vec<Option<Vec<usize>>> = (0..self.graph.len())
            .map(|i| values.dims_of(NodeId::new(i)).map(|d| d.to_vec()))
            .collect();
        let _ = self.shapes.set(recorded);
        self.ensure_timings();
        Ok(())
    }

    /// Creates the per-node timing slots if metrics are enabled and none exist yet.
    ///
    /// Allocation happens here — at warm time, outside the hot loop — never in
    /// [`ExecPlan::run_into`]. Plans warmed while metrics are disabled never time
    /// at all, so the disabled cost in the pass loop is a single pointer check.
    fn ensure_timings(&self) {
        if self.timings.get().is_none() && ranger_obs::enabled() {
            let _ = self.timings.set(PlanTimings {
                node_nanos: (0..self.graph.len()).map(|_| AtomicU64::new(0)).collect(),
                passes: AtomicU64::new(0),
                tile_segments: AtomicU64::new(0),
                tile_rows: AtomicU64::new(0),
                tile_nanos: AtomicU64::new(0),
            });
        }
    }

    /// Accumulated wall nanoseconds recorded for node `id`, or `None` if the plan
    /// is not timing (never warmed with metrics enabled).
    pub fn node_nanos(&self, id: NodeId) -> Option<u64> {
        self.timings
            .get()
            .and_then(|t| t.node_nanos.get(id.index()))
            .map(|slot| slot.load(Ordering::Relaxed))
    }

    /// Number of timed passes completed so far (0 if the plan is not timing).
    pub fn timed_passes(&self) -> u64 {
        self.timings
            .get()
            .map(|t| t.passes.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Drains the per-node timing slots into the global metrics registry,
    /// aggregated by operator kind.
    ///
    /// For each kind present in the graph this adds to three counters in
    /// [`ranger_obs::registry()`]:
    ///
    /// - `plan.op.<Kind>.nanos` — accumulated wall time across that kind's nodes,
    /// - `plan.op.<Kind>.calls` — kernel invocations (timed passes × nodes of the
    ///   kind),
    ///
    /// plus `plan.passes` for the pass total, and — when tiled passes ran — the
    /// per-segment tiling counters `plan.tile.segments`, `plan.tile.rows` and
    /// `plan.tile.nanos`. Slots are swapped to zero, so calling this repeatedly
    /// (e.g. once per campaign on a reused plan) never double-counts. A plan that
    /// is not timing publishes nothing.
    ///
    /// Note on `plan.op.<Kind>.calls` under tiling: the counter remains passes ×
    /// nodes of the kind — one "call" per node per pass, regardless of how many row
    /// groups that pass split the node into (use `plan.tile.rows` /
    /// `plan.tile.segments` for the group count).
    pub fn publish_timings(&self) {
        let Some(timings) = self.timings.get() else {
            return;
        };
        let passes = timings.passes.swap(0, Ordering::Relaxed);
        let tile_segments = timings.tile_segments.swap(0, Ordering::Relaxed);
        let tile_rows = timings.tile_rows.swap(0, Ordering::Relaxed);
        let tile_nanos = timings.tile_nanos.swap(0, Ordering::Relaxed);
        // Aggregate per op kind; the kind set is tiny, so a linear scan beats a map.
        let mut kinds: Vec<(&'static str, u64, u64)> = Vec::new();
        for &id in &self.order {
            let Ok(node) = self.graph.node(id) else {
                continue;
            };
            let nanos = timings.node_nanos[id.index()].swap(0, Ordering::Relaxed);
            let kind = node.op.kind_name();
            match kinds.iter_mut().find(|(k, _, _)| *k == kind) {
                Some((_, total, nodes)) => {
                    *total += nanos;
                    *nodes += 1;
                }
                None => kinds.push((kind, nanos, 1)),
            }
        }
        let registry = ranger_obs::registry();
        registry.counter("plan.passes").add(passes);
        registry.counter("plan.tile.segments").add(tile_segments);
        registry.counter("plan.tile.rows").add(tile_rows);
        registry.counter("plan.tile.nanos").add(tile_nanos);
        for (kind, nanos, nodes) in kinds {
            registry
                .counter(&format!("plan.op.{kind}.nanos"))
                .add(nanos);
            registry
                .counter(&format!("plan.op.{kind}.calls"))
                .add(passes * nodes);
        }
    }

    /// Runs a forward pass and returns a freshly allocated value store.
    ///
    /// # Errors
    ///
    /// See [`ExecPlan::run_into`].
    pub fn run(
        &self,
        feeds: &[(&str, Tensor)],
        interceptor: &mut dyn Interceptor,
    ) -> Result<Values, GraphError> {
        let mut values = self.buffers();
        self.run_into(&mut values, feeds, interceptor)?;
        Ok(values)
    }

    /// Runs a forward pass and returns only the value of `fetch`, using no interceptor.
    ///
    /// # Errors
    ///
    /// See [`ExecPlan::run_into`].
    pub fn run_simple(
        &self,
        feeds: &[(&str, Tensor)],
        fetch: NodeId,
    ) -> Result<Tensor, GraphError> {
        let values = self.run(feeds, &mut NoopInterceptor)?;
        values.get(fetch).cloned()
    }

    /// The output dimensions of `id` as recorded by [`ExecPlan::warm`], or `None` if the
    /// plan has not been warmed (or the node produced no value).
    pub fn output_dims(&self, id: NodeId) -> Option<&[usize]> {
        self.shapes
            .get()
            .and_then(|shapes| shapes.get(id.index()))
            .and_then(|dims| dims.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::exec::{Executor, RecordingInterceptor};
    use crate::graph::Node;
    use crate::op::Op;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (Graph, NodeId) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 4, 6, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 6, 2, &mut rng);
        (b.into_graph(), y)
    }

    #[test]
    fn plan_matches_executor_bit_for_bit() {
        let (graph, y) = toy();
        let plan = graph.compile().unwrap();
        let exec = Executor::new(&graph);
        for i in 0..5 {
            let input = Tensor::filled(vec![1, 4], 0.3 * i as f32);
            let a = exec.run_simple(&[("x", input.clone())], y).unwrap();
            let b = plan.run_simple(&[("x", input)], y).unwrap();
            assert_eq!(a, b, "plan output must equal executor output exactly");
        }
    }

    #[test]
    fn run_into_reuses_the_store_across_passes() {
        let (graph, y) = toy();
        let plan = graph.compile().unwrap();
        let mut values = plan.buffers();
        let mut outputs = Vec::new();
        for i in 0..3 {
            let input = Tensor::filled(vec![1, 4], i as f32);
            plan.run_into(&mut values, &[("x", input)], &mut NoopInterceptor)
                .unwrap();
            outputs.push(values.get(y).unwrap().clone());
        }
        // Stale values from earlier passes must not leak into later ones.
        assert_ne!(outputs[0], outputs[1]);
        let exec = Executor::new(&graph);
        let fresh = exec
            .run_simple(&[("x", Tensor::filled(vec![1, 4], 2.0))], y)
            .unwrap();
        assert_eq!(outputs[2], fresh);
    }

    #[test]
    fn interceptor_order_matches_executor() {
        let (graph, y) = toy();
        let plan = graph.compile().unwrap();
        let exec = Executor::new(&graph);
        let input = Tensor::ones(vec![1, 4]);
        let mut rec_plan = RecordingInterceptor::default();
        let mut rec_exec = RecordingInterceptor::default();
        plan.run(&[("x", input.clone())], &mut rec_plan).unwrap();
        exec.run_with(&[("x", input)], y, &mut rec_exec).unwrap();
        let ids =
            |r: &RecordingInterceptor| r.outputs.iter().map(|(id, _)| *id).collect::<Vec<_>>();
        assert_eq!(ids(&rec_plan), ids(&rec_exec));
    }

    #[test]
    fn interceptor_corruption_propagates_under_the_plan() {
        struct Corrupt;
        impl Interceptor for Corrupt {
            fn after_op(&mut self, node: &Node, output: &mut Tensor) {
                if matches!(node.op, Op::Relu) {
                    output.data_mut()[0] = 77.0;
                }
            }
        }
        let (graph, _) = toy();
        let relu = graph
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Op::Relu))
            .unwrap()
            .id;
        let plan = graph.compile().unwrap();
        let values = plan
            .run(&[("x", Tensor::ones(vec![1, 4]))], &mut Corrupt)
            .unwrap();
        assert_eq!(values.get(relu).unwrap().data()[0], 77.0);
    }

    #[test]
    fn output_shapes_are_recorded_by_warming() {
        let (graph, y) = toy();
        let plan = graph.compile().unwrap();
        // Plain runs never record shapes — single-shot executions skip the bookkeeping.
        plan.run_simple(&[("x", Tensor::ones(vec![1, 4]))], y)
            .unwrap();
        assert!(plan.output_dims(y).is_none(), "no shapes before warming");
        plan.warm(&[("x", Tensor::ones(vec![1, 4]))]).unwrap();
        assert_eq!(plan.output_dims(y), Some(&[1usize, 2][..]));
        // Warming twice is a no-op.
        plan.warm(&[("x", Tensor::ones(vec![1, 4]))]).unwrap();
        assert_eq!(plan.order().len(), graph.len());
    }

    /// One test (not several) because it toggles the process-global enable flag:
    /// graph tests run in parallel, and a sibling test observing the flag
    /// mid-toggle would be racy.
    #[test]
    fn timing_slots_follow_the_metrics_enable_state() {
        let was_enabled = ranger_obs::enabled();

        // Warmed while disabled: no slots, no timing.
        if !was_enabled {
            let (graph, y) = toy();
            let plan = graph.compile().unwrap();
            plan.warm(&[("x", Tensor::ones(vec![1, 4]))]).unwrap();
            plan.run_simple(&[("x", Tensor::ones(vec![1, 4]))], y)
                .unwrap();
            assert_eq!(plan.timed_passes(), 0);
            assert_eq!(plan.node_nanos(y), None);
        }

        let (graph, y) = toy();
        let plan = graph.compile().unwrap();
        ranger_obs::set_enabled(true);
        plan.warm(&[("x", Tensor::ones(vec![1, 4]))]).unwrap();
        let mut values = plan.buffers();
        for _ in 0..2 {
            plan.run_into(
                &mut values,
                &[("x", Tensor::ones(vec![1, 4]))],
                &mut NoopInterceptor,
            )
            .unwrap();
        }
        // warm() itself ran one pass before the slots existed; only the two
        // explicit passes are timed.
        assert_eq!(plan.timed_passes(), 2);
        assert!(plan.node_nanos(y).is_some());

        // Publishing drains the slots into per-kind registry counters. Deltas, not
        // absolutes: the registry is process-global and other tests share it.
        let registry = ranger_obs::registry();
        let calls_before = registry.counter("plan.op.MatMul.calls").value();
        plan.publish_timings();
        // toy() has two dense layers = two MatMul nodes, each called twice.
        assert_eq!(
            registry.counter("plan.op.MatMul.calls").value() - calls_before,
            4
        );
        assert_eq!(plan.timed_passes(), 0, "publishing drains the slots");
        // Publishing again adds nothing.
        plan.publish_timings();
        assert_eq!(
            registry.counter("plan.op.MatMul.calls").value() - calls_before,
            4
        );
        ranger_obs::set_enabled(was_enabled);
    }

    /// A conv stack with a batch barrier in the middle of the carrying chain: input →
    /// conv → relu → pool → flatten → dense → softmax. Exercises Whole steps (input,
    /// constants, softmax), one real segment, and materialization of the segment
    /// output the softmax consumes.
    fn conv_net() -> (Graph, NodeId) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let c = b.conv2d(x, 2, 3, 3, 1, crate::op::Padding::Same, &mut rng);
        let c = b.relu(c);
        let p = b.max_pool(c, 2, 2);
        let f = b.flatten(p);
        let h = b.dense(f, 3 * 3 * 3, 8, &mut rng);
        let h = b.tanh(h);
        let y = b.dense(h, 8, 4, &mut rng);
        let probs = b.softmax(y);
        (b.into_graph(), probs)
    }

    #[test]
    fn tiled_schedule_partitions_around_barriers_and_constants() {
        let (graph, probs) = conv_net();
        let plan = graph.compile().unwrap();
        let schedule = plan.tiled_schedule(&[probs]);
        assert!(
            schedule.segments() >= 1,
            "the conv chain must form a segment"
        );
        // The softmax node is a barrier: it must sit in a Whole step.
        for step in schedule.steps() {
            if let TileStep::Segment(seg) = step {
                for &id in &seg.nodes {
                    assert!(
                        !matches!(
                            graph.node(id).unwrap().op,
                            Op::Softmax | Op::Const | Op::Input
                        ),
                        "barriers and non-carrying nodes must not tile"
                    );
                }
                assert_eq!(seg.nodes.len(), seg.materialize.len());
            }
        }
        // Scheduling is deterministic.
        assert_eq!(schedule, plan.tiled_schedule(&[probs]));
    }

    #[test]
    fn tiled_pass_matches_untiled_bit_for_bit_across_backends_and_tile_sizes() {
        use crate::backend::BackendKind;
        let (graph, probs) = conv_net();
        let feed: Vec<f32> = (0..6 * 2 * 6 * 6)
            .map(|i| (i as f32 * 0.13).sin())
            .collect();
        let feeds = [("x", Tensor::from_vec(vec![6, 2, 6, 6], feed).unwrap())];
        for kind in BackendKind::all() {
            let plan = graph.compile_with(kind.backend()).unwrap();
            let untiled = plan.run(&feeds, &mut NoopInterceptor).unwrap();
            let schedule = plan.tiled_schedule(&[probs]);
            assert!(schedule.segments() >= 1);
            // Tile sizes spanning single-row, uneven tail, exact divisor and >= batch.
            for tile_rows in [1usize, 2, 4, 6, 9] {
                let mut values = plan.buffers();
                plan.run_tiled_into(
                    &mut values,
                    &feeds,
                    &mut NoopInterceptor,
                    &schedule,
                    tile_rows,
                )
                .unwrap();
                let (a, b) = (untiled.get(probs).unwrap(), values.get(probs).unwrap());
                assert_eq!(a.dims(), b.dims());
                let (ab, bb): (Vec<u32>, Vec<u32>) = (
                    a.data().iter().map(|v| v.to_bits()).collect(),
                    b.data().iter().map(|v| v.to_bits()).collect(),
                );
                assert_eq!(ab, bb, "{kind:?} tile_rows={tile_rows} diverged");
            }
        }
    }

    #[test]
    fn tiled_pass_reuses_buffers_and_keeps_interior_scratch_unreadable() {
        let (graph, probs) = conv_net();
        let plan = graph.compile().unwrap();
        let feeds = [("x", Tensor::ones(vec![4, 2, 6, 6]))];
        plan.warm(&feeds).unwrap();
        let schedule = plan.tiled_schedule(&[probs]);
        let relu = graph
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Op::Relu))
            .unwrap()
            .id;
        let mut values = plan.buffers();
        for _ in 0..3 {
            plan.run_tiled_into(&mut values, &feeds, &mut NoopInterceptor, &schedule, 2)
                .unwrap();
            // probs (whole-step) and the kept output are readable...
            assert_eq!(values.get(probs).unwrap().dims(), &[4, 4]);
            // ... but interior segment scratch (the relu, consumed only by the pool in
            // the same segment) is not a full-batch value after the pass.
            assert!(
                values.get(relu).is_err(),
                "interior segment outputs must not be readable post-pass"
            );
            // An untiled pass through the same store restores full readability.
            plan.run_into(&mut values, &feeds, &mut NoopInterceptor)
                .unwrap();
            assert_eq!(values.get(relu).unwrap().dims(), &[4, 3, 6, 6]);
        }
    }

    #[test]
    fn derive_tile_rows_scales_with_the_budget() {
        let (graph, probs) = conv_net();
        let plan = graph.compile().unwrap();
        let schedule = plan.tiled_schedule(&[probs]);
        // Unwarmed: nothing to size against.
        assert_eq!(
            plan.derive_tile_rows(&schedule, DEFAULT_TILE_BUDGET_BYTES),
            1
        );
        plan.warm(&[("x", Tensor::ones(vec![4, 2, 6, 6]))]).unwrap();
        let small = plan.derive_tile_rows(&schedule, 1);
        let big = plan.derive_tile_rows(&schedule, usize::MAX / 2);
        assert_eq!(small, 1, "a tiny budget still yields one row");
        assert!(big >= small, "a bigger budget never shrinks the group");
        assert!(big > 1, "an effectively unbounded budget allows many rows");
    }

    #[test]
    fn compile_rejects_cyclic_graphs() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let a = g.add_node("a", Op::Identity, vec![x]);
        let b = g.add_node("b", Op::Identity, vec![a]);
        g.rewire_input(a, x, b).unwrap();
        assert!(matches!(g.compile(), Err(GraphError::CyclicGraph)));
    }

    #[test]
    fn missing_feed_error_is_preserved() {
        let (graph, y) = toy();
        let plan = graph.compile().unwrap();
        assert!(matches!(
            plan.run_simple(&[], y),
            Err(GraphError::MissingFeed(_))
        ));
    }
}
