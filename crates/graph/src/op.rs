//! The operator set of the dataflow graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a range-restriction operator does with an out-of-bounds value.
///
/// The paper's Section VI-C compares Ranger's default (saturating the value at the
/// restriction bound) with two design alternatives: resetting it to zero (as Minerva-style
/// detectors do) and replacing it with a random in-range value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RestorePolicy {
    /// Clamp the value to the nearest restriction bound (Ranger's default).
    #[default]
    Saturate,
    /// Replace any out-of-bounds value with zero.
    Zero,
    /// Replace any out-of-bounds value with a deterministic pseudo-random value inside the
    /// restriction range (derived from the value's bit pattern, so runs stay reproducible).
    Random,
}

/// Padding mode for convolution and pooling operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Padding {
    /// No padding; the output spatial size shrinks by `kernel - 1`.
    Valid,
    /// Zero padding so that the output spatial size equals `ceil(input / stride)`.
    Same,
}

/// A graph operator.
///
/// The operator set mirrors the subset of TensorFlow operators the paper's eight benchmark
/// DNNs are built from, plus [`Op::Clamp`] which is the range-restriction operator Ranger
/// inserts (the paper implements it as a `tf.minimum`/`tf.maximum` pair).
///
/// Activation tensors use the `NCHW` layout: `[batch, channels, height, width]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// A graph input fed at execution time.
    Input,
    /// A constant tensor stored in the node (weights, biases, hyper-parameter constants).
    Const,
    /// 2-D convolution. Inputs: `[activations (N,Cin,H,W), weights (Cout,Cin,Kh,Kw)]`.
    Conv2d {
        /// Spatial stride (same in both dimensions).
        stride: usize,
        /// Padding mode.
        padding: Padding,
    },
    /// Matrix multiplication. Inputs: `[activations (N,K), weights (K,M)]`.
    MatMul,
    /// Adds a per-channel (rank-4 input) or per-feature (rank-2 input) bias vector.
    /// Inputs: `[activations, bias]`.
    BiasAdd,
    /// Rectified linear unit activation.
    Relu,
    /// Hyperbolic tangent activation.
    Tanh,
    /// Logistic sigmoid activation.
    Sigmoid,
    /// Elementwise arc-tangent. The Nvidia Dave model uses `2 * atan(x)` to produce a
    /// steering angle in radians; the scaling is expressed with [`Op::ScalarMul`].
    Atan,
    /// Elementwise exponential linear unit with `alpha = 1` (used by the Comma.ai model).
    Elu,
    /// Softmax over the last dimension.
    Softmax,
    /// Max pooling with square window `kernel` and stride `stride`.
    MaxPool {
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling with square window `kernel` and stride `stride`.
    AvgPool {
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling over the spatial dimensions, producing `(N, C)`.
    GlobalAvgPool,
    /// Flattens `(N, ...)` into `(N, features)`.
    Flatten,
    /// Reshapes to `[batch, dims...]`, preserving the batch dimension.
    Reshape {
        /// Target dimensions excluding the batch dimension.
        dims: Vec<usize>,
    },
    /// Concatenates inputs along the channel dimension (axis 1).
    Concat,
    /// Elementwise addition of two tensors with identical shapes (residual connections).
    Add,
    /// Elementwise multiplication of two tensors with identical shapes.
    Mul,
    /// Multiplies every element by a compile-time scalar constant.
    ScalarMul {
        /// The scalar factor (stored as bits for `Eq`/`Hash` friendliness is not needed;
        /// plain `f32` keeps the API simple).
        factor: f32,
    },
    /// Identity pass-through (used to give stable names to logical layer outputs).
    Identity,
    /// Range restriction: clamps every element into `[lo, hi]`. This is the operator
    /// Ranger inserts.
    Clamp {
        /// Lower restriction bound.
        lo: f32,
        /// Upper restriction bound.
        hi: f32,
    },
    /// Range restriction with an explicit out-of-bounds policy (the Section VI-C design
    /// alternatives). `RangeRestore { policy: Saturate, .. }` behaves like [`Op::Clamp`].
    RangeRestore {
        /// Lower restriction bound.
        lo: f32,
        /// Upper restriction bound.
        hi: f32,
        /// What to do with out-of-bounds values.
        policy: RestorePolicy,
    },
}

impl Op {
    /// Returns `true` if this operator is an activation function.
    ///
    /// Ranger's Algorithm 1 keys its insertion decisions off the activation (ACT)
    /// operations of the network.
    pub fn is_activation(&self) -> bool {
        matches!(
            self,
            Op::Relu | Op::Tanh | Op::Sigmoid | Op::Elu | Op::Softmax
        )
    }

    /// Returns `true` if this operator belongs to the set `{MaxPool, AvgPool, Reshape}`
    /// that Algorithm 1 extends an ACT operation's restriction bound to (line 5–6).
    pub fn extends_activation_bound(&self) -> bool {
        matches!(
            self,
            Op::MaxPool { .. }
                | Op::AvgPool { .. }
                | Op::GlobalAvgPool
                | Op::Reshape { .. }
                | Op::Flatten
        )
    }

    /// Returns `true` if this operator is a concatenation (Algorithm 1 line 7–8 handles
    /// `Concat` specially by merging the bounds of the preceding ACT operations).
    pub fn is_concat(&self) -> bool {
        matches!(self, Op::Concat)
    }

    /// Returns `true` if this operator has inherently bounded output regardless of its
    /// input (e.g. Tanh in (-1, 1)), in which case profiling is unnecessary.
    pub fn inherent_bounds(&self) -> Option<(f32, f32)> {
        match self {
            Op::Tanh => Some((-1.0, 1.0)),
            Op::Sigmoid => Some((0.0, 1.0)),
            Op::Softmax => Some((0.0, 1.0)),
            Op::Atan => Some((-std::f32::consts::FRAC_PI_2, std::f32::consts::FRAC_PI_2)),
            _ => None,
        }
    }

    /// Returns `true` if the operator carries trainable or constant data in its node.
    pub fn is_const(&self) -> bool {
        matches!(self, Op::Const)
    }

    /// Returns a short, TensorFlow-flavoured operator name used in node naming and reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Op::Input => "Placeholder",
            Op::Const => "Const",
            Op::Conv2d { .. } => "Conv2D",
            Op::MatMul => "MatMul",
            Op::BiasAdd => "BiasAdd",
            Op::Relu => "Relu",
            Op::Tanh => "Tanh",
            Op::Sigmoid => "Sigmoid",
            Op::Atan => "Atan",
            Op::Elu => "Elu",
            Op::Softmax => "Softmax",
            Op::MaxPool { .. } => "MaxPool",
            Op::AvgPool { .. } => "AvgPool",
            Op::GlobalAvgPool => "GlobalAvgPool",
            Op::Flatten => "Flatten",
            Op::Reshape { .. } => "Reshape",
            Op::Concat => "ConcatV2",
            Op::Add => "Add",
            Op::Mul => "Mul",
            Op::ScalarMul { .. } => "ScalarMul",
            Op::Identity => "Identity",
            Op::Clamp { .. } => "RangeRestriction",
            Op::RangeRestore { .. } => "RangeRestore",
        }
    }

    /// Returns `true` for operators whose outputs the fault injector may corrupt.
    ///
    /// Inputs and constants are excluded: the fault model assumes memory (weights and
    /// inputs) is ECC-protected and faults arise in the datapath computations.
    pub fn is_injectable(&self) -> bool {
        !matches!(self, Op::Input | Op::Const)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_classification() {
        assert!(Op::Relu.is_activation());
        assert!(Op::Tanh.is_activation());
        assert!(Op::Elu.is_activation());
        assert!(!Op::Conv2d {
            stride: 1,
            padding: Padding::Same
        }
        .is_activation());
        assert!(!Op::MaxPool {
            kernel: 2,
            stride: 2
        }
        .is_activation());
    }

    #[test]
    fn bound_extension_set_matches_algorithm1() {
        assert!(Op::MaxPool {
            kernel: 2,
            stride: 2
        }
        .extends_activation_bound());
        assert!(Op::AvgPool {
            kernel: 2,
            stride: 2
        }
        .extends_activation_bound());
        assert!(Op::Reshape { dims: vec![10] }.extends_activation_bound());
        assert!(Op::Flatten.extends_activation_bound());
        assert!(!Op::Conv2d {
            stride: 1,
            padding: Padding::Valid
        }
        .extends_activation_bound());
        assert!(Op::Concat.is_concat());
    }

    #[test]
    fn inherent_bounds_for_saturating_activations() {
        assert_eq!(Op::Tanh.inherent_bounds(), Some((-1.0, 1.0)));
        assert_eq!(Op::Sigmoid.inherent_bounds(), Some((0.0, 1.0)));
        assert_eq!(Op::Relu.inherent_bounds(), None);
        let (lo, hi) = Op::Atan.inherent_bounds().unwrap();
        assert!(lo < 0.0 && hi > 0.0);
    }

    #[test]
    fn injectability_excludes_inputs_and_constants() {
        assert!(!Op::Input.is_injectable());
        assert!(!Op::Const.is_injectable());
        assert!(Op::Relu.is_injectable());
        assert!(Op::Clamp { lo: 0.0, hi: 1.0 }.is_injectable());
    }

    #[test]
    fn display_uses_kind_name() {
        assert_eq!(
            Op::Conv2d {
                stride: 1,
                padding: Padding::Same
            }
            .to_string(),
            "Conv2D"
        );
        assert_eq!(
            Op::Clamp { lo: 0.0, hi: 1.0 }.to_string(),
            "RangeRestriction"
        );
    }
}
