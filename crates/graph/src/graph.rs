//! The static dataflow graph and its rewriting utilities.

use crate::error::GraphError;
use crate::op::Op;
use ranger_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the raw index of this node id.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single operator instance in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// This node's id (equal to its position in the graph's node list).
    pub id: NodeId,
    /// Human-readable, unique name (TensorFlow-style, e.g. `conv1/Relu`).
    pub name: String,
    /// The operator this node applies.
    pub op: Op,
    /// Ids of the nodes whose outputs feed this node, in operator-defined order.
    pub inputs: Vec<NodeId>,
    /// Constant value (present only for [`Op::Const`] and [`Op::Input`] defaults).
    pub value: Option<Tensor>,
    /// Whether this constant participates in gradient-based training.
    pub trainable: bool,
}

/// A static dataflow graph: an append-ordered list of operator nodes.
///
/// Nodes are stored in insertion order, which is also a valid construction order for the
/// original (pre-rewrite) graph. Execution always re-derives a topological order, so
/// rewrites that append nodes (as Ranger's transformation does) stay valid.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<Node>,
    names: HashMap<String, NodeId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node and returns its id.
    ///
    /// If the name is already taken a unique suffix is appended, mirroring TensorFlow's
    /// name-uniquing behaviour.
    pub fn add_node(&mut self, name: impl Into<String>, op: Op, inputs: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len());
        let mut name = name.into();
        if self.names.contains_key(&name) {
            let mut suffix = 1usize;
            while self.names.contains_key(&format!("{name}_{suffix}")) {
                suffix += 1;
            }
            name = format!("{name}_{suffix}");
        }
        self.names.insert(name.clone(), id);
        self.nodes.push(Node {
            id,
            name,
            op,
            inputs,
            value: None,
            trainable: false,
        });
        id
    }

    /// Adds a graph input placeholder.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, Op::Input, Vec::new())
    }

    /// Adds a constant node holding `value`; `trainable` marks it as a parameter.
    pub fn add_const(&mut self, name: impl Into<String>, value: Tensor, trainable: bool) -> NodeId {
        let id = self.add_node(name, Op::Const, Vec::new());
        let node = &mut self.nodes[id.0];
        node.value = Some(value);
        node.trainable = trainable;
        id
    }

    /// Returns the node with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if the id is not present.
    pub fn node(&self, id: NodeId) -> Result<&Node, GraphError> {
        self.nodes.get(id.0).ok_or(GraphError::UnknownNode(id))
    }

    /// Returns a mutable reference to the node with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if the id is not present.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, GraphError> {
        self.nodes.get_mut(id.0).ok_or(GraphError::UnknownNode(id))
    }

    /// Returns all nodes in insertion order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Returns the number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks a node up by name.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownName`] if no node has that name.
    pub fn by_name(&self, name: &str) -> Result<NodeId, GraphError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| GraphError::UnknownName(name.to_string()))
    }

    /// Returns the ids of all trainable constant nodes (the model parameters).
    pub fn trainable_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.trainable && n.op.is_const())
            .map(|n| n.id)
            .collect()
    }

    /// Returns the total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.trainable)
            .filter_map(|n| n.value.as_ref())
            .map(|t| t.len())
            .sum()
    }

    /// Returns the ids of all graph input placeholders.
    pub fn input_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Input))
            .map(|n| n.id)
            .collect()
    }

    /// Returns the ids of the nodes that consume `id`'s output.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// Returns a topological ordering of the node ids.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CyclicGraph`] if the graph contains a cycle.
    pub fn topological_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let n = self.nodes.len();
        let mut in_degree = vec![0usize; n];
        for node in &self.nodes {
            for input in &node.inputs {
                if input.0 >= n {
                    return Err(GraphError::UnknownNode(*input));
                }
            }
            in_degree[node.id.0] = node.inputs.len();
        }
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for node in &self.nodes {
            for input in &node.inputs {
                consumers[input.0].push(node.id.0);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(NodeId(i));
            for &c in &consumers[i] {
                in_degree[c] -= 1;
                if in_degree[c] == 0 {
                    ready.push(c);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(GraphError::CyclicGraph)
        }
    }

    /// Inserts a new node that consumes `after`'s output and rewires every existing
    /// consumer of `after` to read from the new node instead.
    ///
    /// This is the rewrite primitive Ranger's Algorithm 1 is built on: inserting a
    /// [`Op::Clamp`] after an activation makes every downstream operator observe the
    /// restricted values. The equivalent in the paper's TensorFlow implementation is graph
    /// duplication with an `input_map` that substitutes the bounded operator.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `after` does not exist.
    pub fn insert_after(
        &mut self,
        after: NodeId,
        name: impl Into<String>,
        op: Op,
    ) -> Result<NodeId, GraphError> {
        if after.0 >= self.nodes.len() {
            return Err(GraphError::UnknownNode(after));
        }
        let consumers = self.consumers(after);
        let new_id = self.add_node(name, op, vec![after]);
        for consumer in consumers {
            let node = &mut self.nodes[consumer.0];
            for input in &mut node.inputs {
                if *input == after {
                    *input = new_id;
                }
            }
        }
        Ok(new_id)
    }

    /// Replaces occurrences of `from` in `node`'s input list with `to`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if any id does not exist.
    pub fn rewire_input(
        &mut self,
        node: NodeId,
        from: NodeId,
        to: NodeId,
    ) -> Result<(), GraphError> {
        if to.0 >= self.nodes.len() {
            return Err(GraphError::UnknownNode(to));
        }
        let n = self.node_mut(node)?;
        for input in &mut n.inputs {
            if *input == from {
                *input = to;
            }
        }
        Ok(())
    }

    /// Returns the ids of operator nodes (everything except inputs and constants) in
    /// topological order. This is the operator list Algorithm 1 traverses and the
    /// population the fault injector samples from.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CyclicGraph`] if the graph contains a cycle.
    pub fn operator_nodes(&self) -> Result<Vec<NodeId>, GraphError> {
        Ok(self
            .topological_order()?
            .into_iter()
            .filter(|id| self.nodes[id.0].op.is_injectable())
            .collect())
    }

    /// Counts nodes whose operator is a [`Op::Clamp`] (useful for overhead accounting and
    /// for asserting transformation effects in tests).
    pub fn clamp_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Clamp { .. }))
            .count()
    }

    /// Counts all range-restriction operators, regardless of out-of-bounds policy:
    /// [`Op::Clamp`] plus [`Op::RangeRestore`] (the Section VI-C design alternatives).
    pub fn restriction_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Clamp { .. } | Op::RangeRestore { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Padding;

    fn tiny_graph() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let w = g.add_const("w", Tensor::ones(vec![2, 2]), true);
        let mm = g.add_node("matmul", Op::MatMul, vec![x, w]);
        let relu = g.add_node("relu", Op::Relu, vec![mm]);
        (g, x, mm, relu)
    }

    #[test]
    fn node_lookup_by_name_and_id() {
        let (g, x, mm, _) = tiny_graph();
        assert_eq!(g.by_name("x").unwrap(), x);
        assert_eq!(g.by_name("matmul").unwrap(), mm);
        assert!(g.by_name("nope").is_err());
        assert!(g.node(NodeId::new(99)).is_err());
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn duplicate_names_are_uniqued() {
        let mut g = Graph::new();
        let a = g.add_input("x");
        let b = g.add_input("x");
        assert_ne!(g.node(a).unwrap().name, g.node(b).unwrap().name);
        assert_eq!(g.by_name("x").unwrap(), a);
        assert_eq!(g.by_name("x_1").unwrap(), b);
    }

    #[test]
    fn trainable_and_parameter_count() {
        let (g, ..) = tiny_graph();
        assert_eq!(g.trainable_nodes().len(), 1);
        assert_eq!(g.parameter_count(), 4);
        assert_eq!(g.input_nodes().len(), 1);
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let (g, ..) = tiny_graph();
        let order = g.topological_order().unwrap();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for node in g.nodes() {
            for input in &node.inputs {
                assert!(pos[input] < pos[&node.id]);
            }
        }
    }

    #[test]
    fn cycle_detection() {
        let (mut g, x, _, relu) = tiny_graph();
        // Manually create a cycle: make the matmul read from the relu.
        let mm = g.by_name("matmul").unwrap();
        g.rewire_input(mm, x, relu).unwrap();
        assert_eq!(g.topological_order(), Err(GraphError::CyclicGraph));
    }

    #[test]
    fn insert_after_rewires_consumers() {
        let (mut g, _, mm, relu) = tiny_graph();
        let clamp = g
            .insert_after(mm, "ranger/clamp", Op::Clamp { lo: 0.0, hi: 5.0 })
            .unwrap();
        // The relu must now consume the clamp, and the clamp must consume the matmul.
        assert_eq!(g.node(relu).unwrap().inputs, vec![clamp]);
        assert_eq!(g.node(clamp).unwrap().inputs, vec![mm]);
        assert_eq!(g.clamp_count(), 1);
    }

    #[test]
    fn consumers_lists_direct_readers() {
        let (g, _, mm, relu) = tiny_graph();
        assert_eq!(g.consumers(mm), vec![relu]);
        assert!(g.consumers(relu).is_empty());
    }

    #[test]
    fn operator_nodes_excludes_inputs_and_consts() {
        let (g, ..) = tiny_graph();
        let ops = g.operator_nodes().unwrap();
        assert_eq!(ops.len(), 2);
        for id in ops {
            assert!(g.node(id).unwrap().op.is_injectable());
        }
    }

    #[test]
    fn insert_after_unknown_node_errors() {
        let (mut g, ..) = tiny_graph();
        assert!(g.insert_after(NodeId::new(42), "c", Op::Identity).is_err());
    }

    #[test]
    fn conv_padding_attributes_survive_clone() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let w = g.add_const("w", Tensor::ones(vec![1, 1, 3, 3]), true);
        g.add_node(
            "conv",
            Op::Conv2d {
                stride: 2,
                padding: Padding::Same,
            },
            vec![x, w],
        );
        let g2 = g.clone();
        assert_eq!(g, g2);
    }
}
