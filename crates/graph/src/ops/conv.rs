//! 2-D convolution kernels (forward and backward) in NCHW layout.

use crate::error::GraphError;
use crate::graph::NodeId;
use crate::op::Padding;
use ranger_tensor::Tensor;

/// Computes the output spatial size and the leading padding for one spatial dimension
/// (shared with the fixed-point backend, which must agree on padding semantics exactly).
pub(crate) fn padded_geometry(
    input: usize,
    kernel: usize,
    stride: usize,
    padding: Padding,
) -> (usize, usize) {
    match padding {
        Padding::Valid => {
            let out = if input >= kernel {
                (input - kernel) / stride + 1
            } else {
                0
            };
            (out, 0)
        }
        Padding::Same => {
            let out = input.div_ceil(stride);
            let needed = (out - 1) * stride + kernel;
            let pad_total = needed.saturating_sub(input);
            (out, pad_total / 2)
        }
    }
}

fn shape_err(node: NodeId, message: impl Into<String>) -> GraphError {
    GraphError::ShapeError {
        node,
        message: message.into(),
    }
}

/// Validated 2-D convolution geometry, shared by the f32 and fixed-point kernels so
/// every backend accepts exactly the same operands with exactly the same errors.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Conv2dGeometry {
    pub batch: usize,
    pub cin: usize,
    pub height: usize,
    pub width: usize,
    pub cout: usize,
    pub kh: usize,
    pub kw: usize,
    pub out_h: usize,
    pub out_w: usize,
    pub pad_h: usize,
    pub pad_w: usize,
}

/// Checks conv operand ranks, channel agreement and stride, and computes the padded
/// output geometry.
pub(crate) fn conv2d_geometry(
    node: NodeId,
    xd: &[usize],
    wd: &[usize],
    stride: usize,
    padding: Padding,
) -> Result<Conv2dGeometry, GraphError> {
    if xd.len() != 4 || wd.len() != 4 {
        return Err(shape_err(
            node,
            format!("conv2d expects rank-4 operands, got {xd:?} and {wd:?}"),
        ));
    }
    if xd[1] != wd[1] {
        return Err(shape_err(
            node,
            format!(
                "conv2d channel mismatch: input has {} channels, filter expects {}",
                xd[1], wd[1]
            ),
        ));
    }
    if stride == 0 {
        return Err(shape_err(node, "conv2d stride must be positive"));
    }
    let (out_h, pad_h) = padded_geometry(xd[2], wd[2], stride, padding);
    let (out_w, pad_w) = padded_geometry(xd[3], wd[3], stride, padding);
    Ok(Conv2dGeometry {
        batch: xd[0],
        cin: xd[1],
        height: xd[2],
        width: xd[3],
        cout: wd[0],
        kh: wd[2],
        kw: wd[3],
        out_h,
        out_w,
        pad_h,
        pad_w,
    })
}

/// 2-D convolution forward pass.
///
/// * `x` — activations with shape `(N, Cin, H, W)`.
/// * `w` — filters with shape `(Cout, Cin, Kh, Kw)`.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the operands are not rank 4 or the channel
/// counts disagree.
pub fn conv2d_forward(
    node: NodeId,
    x: &Tensor,
    w: &Tensor,
    stride: usize,
    padding: Padding,
) -> Result<Tensor, GraphError> {
    let mut out = Tensor::empty();
    conv2d_forward_into(node, x, w, stride, padding, &mut out)?;
    Ok(out)
}

/// [`conv2d_forward`], writing into a recycled output buffer.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the operands are not rank 4 or the channel
/// counts disagree; `out` is left unchanged.
pub fn conv2d_forward_into(
    node: NodeId,
    x: &Tensor,
    w: &Tensor,
    stride: usize,
    padding: Padding,
    out: &mut Tensor,
) -> Result<(), GraphError> {
    let g = conv2d_geometry(node, x.dims(), w.dims(), stride, padding)?;
    let (n, cin, h, win) = (g.batch, g.cin, g.height, g.width);
    let (cout, kh, kw) = (g.cout, g.kh, g.kw);
    let (ho, pad_h) = (g.out_h, g.pad_h);
    let (wo, pad_w) = (g.out_w, g.pad_w);

    let xdat = x.data();
    let wdat = w.data();
    out.reset_fill(&[n, cout, ho, wo], 0.0);
    let odat = out.data_mut();

    // Row-group blocked loop nest: the innermost loop walks one *output row* while
    // reading one contiguous input row and one contiguous filter row, so consecutive
    // iterations hit consecutive cache lines instead of striding across the channel and
    // kernel dimensions per output element (the conv-locality item batched campaigns
    // exposed: per-output-element gathers made batching cache-neutral on LeNet).
    //
    // The interchange is bit-for-bit safe: for any fixed output element the partial
    // products still arrive in (ic, ky, kx) order — only the position of the `ox` loop
    // moved — so the f32 accumulation order, and therefore every campaign count pinned
    // on this kernel, is unchanged (asserted against the naive nest in the tests below).
    for b in 0..n {
        for oc in 0..cout {
            for oy in 0..ho {
                let out_row = &mut odat[((b * cout + oc) * ho + oy) * wo..][..wo];
                for ic in 0..cin {
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad_h as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let x_row = &xdat[((b * cin + ic) * h + iy as usize) * win..][..win];
                        let w_row = &wdat[((oc * cin + ic) * kh + ky) * kw..][..kw];
                        for (kx, &wv) in w_row.iter().enumerate() {
                            // Valid output columns: 0 <= ox * stride + kx - pad_w < win.
                            let kx_off = kx as isize - pad_w as isize;
                            // A kernel column entirely in the padding (possible when the
                            // kernel is much wider than the input) contributes to no
                            // output column: both bounds clamp to wo, an empty range.
                            let ox_min = if kx_off >= 0 {
                                0
                            } else {
                                wo.min(((-kx_off) as usize).div_ceil(stride))
                            };
                            let ox_end = if win as isize <= kx_off {
                                0
                            } else {
                                wo.min((win as isize - 1 - kx_off) as usize / stride + 1)
                            };
                            for (o, ox) in
                                out_row[ox_min..ox_end.max(ox_min)].iter_mut().zip(ox_min..)
                            {
                                let ix = (ox * stride) as isize + kx_off;
                                *o += x_row[ix as usize] * wv;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// 2-D convolution backward pass.
///
/// Returns `(grad_x, grad_w)` given the forward operands and the gradient of the loss with
/// respect to the convolution output.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] on operand rank/shape mismatches.
pub fn conv2d_backward(
    node: NodeId,
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    padding: Padding,
) -> Result<(Tensor, Tensor), GraphError> {
    let xd = x.dims();
    let wd = w.dims();
    let gd = grad_out.dims();
    if xd.len() != 4 || wd.len() != 4 || gd.len() != 4 {
        return Err(shape_err(node, "conv2d backward expects rank-4 operands"));
    }
    let (n, cin, h, win) = (xd[0], xd[1], xd[2], xd[3]);
    let (cout, _, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    let (ho, pad_h) = padded_geometry(h, kh, stride, padding);
    let (wo, pad_w) = padded_geometry(win, kw, stride, padding);
    if gd != [n, cout, ho, wo] {
        return Err(shape_err(
            node,
            format!(
                "conv2d backward gradient shape {gd:?} does not match expected {:?}",
                [n, cout, ho, wo]
            ),
        ));
    }

    let xdat = x.data();
    let wdat = w.data();
    let gdat = grad_out.data();
    let mut gx = vec![0.0f32; xdat.len()];
    let mut gw = vec![0.0f32; wdat.len()];

    for b in 0..n {
        for oc in 0..cout {
            for oy in 0..ho {
                for ox in 0..wo {
                    let g = gdat[((b * cout + oc) * ho + oy) * wo + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ic in 0..cin {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad_h as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad_w as isize;
                                if ix < 0 || ix >= win as isize {
                                    continue;
                                }
                                let x_idx = ((b * cin + ic) * h + iy as usize) * win + ix as usize;
                                let w_idx = ((oc * cin + ic) * kh + ky) * kw + kx;
                                gx[x_idx] += g * wdat[w_idx];
                                gw[w_idx] += g * xdat[x_idx];
                            }
                        }
                    }
                }
            }
        }
    }
    Ok((
        Tensor::from_vec(xd.to_vec(), gx)?,
        Tensor::from_vec(wd.to_vec(), gw)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid() -> NodeId {
        NodeId::new(0)
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // A single 1x1 identity filter applied to a 1-channel image is the identity map.
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let w = Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0]).unwrap();
        let y = conv2d_forward(nid(), &x, &w, 1, Padding::Valid).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn valid_padding_known_result() {
        // 3x3 input, 2x2 kernel of ones: each output is the sum of a 2x2 patch.
        let x = Tensor::from_vec(
            vec![1, 1, 3, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        )
        .unwrap();
        let w = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0; 4]).unwrap();
        let y = conv2d_forward(nid(), &x, &w, 1, Padding::Valid).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn same_padding_preserves_spatial_size() {
        let x = Tensor::ones(vec![2, 3, 5, 5]);
        let w = Tensor::ones(vec![4, 3, 3, 3]);
        let y = conv2d_forward(nid(), &x, &w, 1, Padding::Same).unwrap();
        assert_eq!(y.dims(), &[2, 4, 5, 5]);
        // Centre outputs see the full 3x3x3 window of ones.
        assert_eq!(y.get(&[0, 0, 2, 2]), 27.0);
        // Corner outputs see only a 2x2x3 window.
        assert_eq!(y.get(&[0, 0, 0, 0]), 12.0);
    }

    #[test]
    fn stride_two_halves_output() {
        let x = Tensor::ones(vec![1, 1, 6, 6]);
        let w = Tensor::ones(vec![1, 1, 3, 3]);
        let y = conv2d_forward(nid(), &x, &w, 2, Padding::Same).unwrap();
        assert_eq!(y.dims(), &[1, 1, 3, 3]);
    }

    #[test]
    fn multi_channel_accumulates_across_channels() {
        let x = Tensor::from_vec(vec![1, 2, 1, 1], vec![2.0, 3.0]).unwrap();
        let w = Tensor::from_vec(vec![1, 2, 1, 1], vec![10.0, 100.0]).unwrap();
        let y = conv2d_forward(nid(), &x, &w, 1, Padding::Valid).unwrap();
        assert_eq!(y.data(), &[320.0]);
    }

    #[test]
    fn rejects_rank_and_channel_mismatch() {
        let x = Tensor::ones(vec![1, 2, 3, 3]);
        let bad_w = Tensor::ones(vec![1, 3, 3, 3]);
        assert!(conv2d_forward(nid(), &x, &bad_w, 1, Padding::Valid).is_err());
        let not4d = Tensor::ones(vec![2, 3, 3]);
        assert!(conv2d_forward(nid(), &not4d, &bad_w, 1, Padding::Valid).is_err());
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor::from_vec(
            vec![1, 2, 4, 4],
            (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();
        let w = Tensor::from_vec(
            vec![3, 2, 3, 3],
            (0..54).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();
        let stride = 1;
        let padding = Padding::Same;

        // Loss = sum(conv(x, w)); its gradient w.r.t. the output is all ones.
        let y = conv2d_forward(nid(), &x, &w, stride, padding).unwrap();
        let grad_out = Tensor::ones(y.dims().to_vec());
        let (gx, gw) = conv2d_backward(nid(), &x, &w, &grad_out, stride, padding).unwrap();

        let eps = 1e-2f32;
        // Check a few weight coordinates against central differences.
        for &idx in &[0usize, 7, 20, 53] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fp = conv2d_forward(nid(), &x, &wp, stride, padding)
                .unwrap()
                .sum();
            let fm = conv2d_forward(nid(), &x, &wm, stride, padding)
                .unwrap()
                .sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - gw.data()[idx]).abs() < 1e-2,
                "dW[{idx}]: numerical {num} vs analytic {}",
                gw.data()[idx]
            );
        }
        // And a few input coordinates.
        for &idx in &[0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp = conv2d_forward(nid(), &xp, &w, stride, padding)
                .unwrap()
                .sum();
            let fm = conv2d_forward(nid(), &xm, &w, stride, padding)
                .unwrap()
                .sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - gx.data()[idx]).abs() < 1e-2,
                "dX[{idx}]: numerical {num} vs analytic {}",
                gx.data()[idx]
            );
        }
    }

    /// The straightforward per-output-element nest the blocked kernel replaced; kept here
    /// as the semantic reference the blocked loops must match **bit-for-bit** (same
    /// partial-product order per output element, so identical f32 rounding).
    fn conv2d_naive(x: &Tensor, w: &Tensor, stride: usize, padding: Padding) -> Tensor {
        let (xd, wd) = (x.dims(), w.dims());
        let (n, cin, h, win) = (xd[0], xd[1], xd[2], xd[3]);
        let (cout, _, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
        let (ho, pad_h) = padded_geometry(h, kh, stride, padding);
        let (wo, pad_w) = padded_geometry(win, kw, stride, padding);
        let (xdat, wdat) = (x.data(), w.data());
        let mut odat = vec![0.0f32; n * cout * ho * wo];
        for b in 0..n {
            for oc in 0..cout {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = 0.0f32;
                        for ic in 0..cin {
                            for ky in 0..kh {
                                let iy = (oy * stride + ky) as isize - pad_h as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix = (ox * stride + kx) as isize - pad_w as isize;
                                    if ix < 0 || ix >= win as isize {
                                        continue;
                                    }
                                    acc += xdat
                                        [((b * cin + ic) * h + iy as usize) * win + ix as usize]
                                        * wdat[((oc * cin + ic) * kh + ky) * kw + kx];
                                }
                            }
                        }
                        odat[((b * cout + oc) * ho + oy) * wo + ox] = acc;
                    }
                }
            }
        }
        Tensor::from_vec(vec![n, cout, ho, wo], odat).unwrap()
    }

    #[test]
    fn blocked_kernel_matches_naive_nest_bit_for_bit() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for (shape_x, shape_w, stride, padding) in [
            (vec![2, 3, 7, 7], vec![4, 3, 3, 3], 1, Padding::Same),
            (vec![1, 2, 9, 6], vec![3, 2, 3, 3], 2, Padding::Same),
            (vec![1, 1, 8, 8], vec![2, 1, 5, 5], 1, Padding::Valid),
            (vec![2, 4, 6, 6], vec![2, 4, 2, 2], 2, Padding::Valid),
            (vec![1, 1, 4, 4], vec![1, 1, 1, 1], 1, Padding::Same),
            (vec![1, 2, 5, 5], vec![2, 2, 4, 4], 3, Padding::Same),
            // Kernel far wider than the input: outer kernel columns lie entirely in the
            // padding and must contribute nothing (regression: the blocked nest once
            // sliced out of range here).
            (vec![1, 1, 1, 1], vec![1, 1, 5, 5], 1, Padding::Same),
            (vec![1, 1, 2, 2], vec![1, 1, 7, 7], 2, Padding::Same),
        ] {
            let nx: usize = shape_x.iter().product();
            let nw: usize = shape_w.iter().product();
            let x = Tensor::from_vec(
                shape_x.clone(),
                (0..nx).map(|_| rng.gen_range(-2.0..2.0)).collect(),
            )
            .unwrap();
            let w = Tensor::from_vec(
                shape_w.clone(),
                (0..nw).map(|_| rng.gen_range(-2.0..2.0)).collect(),
            )
            .unwrap();
            let blocked = conv2d_forward(nid(), &x, &w, stride, padding).unwrap();
            let naive = conv2d_naive(&x, &w, stride, padding);
            assert_eq!(
                blocked, naive,
                "blocked conv diverged from the naive nest for x {shape_x:?} w {shape_w:?} \
                 stride {stride} {padding:?}"
            );
        }
    }

    #[test]
    fn backward_rejects_mismatched_gradient_shape() {
        let x = Tensor::ones(vec![1, 1, 4, 4]);
        let w = Tensor::ones(vec![1, 1, 3, 3]);
        let bad_grad = Tensor::ones(vec![1, 1, 9, 9]);
        assert!(conv2d_backward(nid(), &x, &w, &bad_grad, 1, Padding::Same).is_err());
    }
}
