//! Shape-manipulating and combining kernels: flatten, reshape, concat, add, mul.

use crate::error::GraphError;
use crate::graph::NodeId;
use ranger_tensor::Tensor;

fn shape_err(node: NodeId, message: impl Into<String>) -> GraphError {
    GraphError::ShapeError {
        node,
        message: message.into(),
    }
}

/// Validated concat layout, shared by the f32 and fixed-point kernels so every backend
/// accepts exactly the same operands with exactly the same errors.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConcatLayout {
    /// Output dims as a stack buffer (no allocation on the execution hot path); the
    /// meaningful prefix is `dims[..rank]` = `[n, total_c, spatial...]`.
    dims: [usize; 4],
    /// Operand rank (2 or 4).
    rank: usize,
    /// Leading (batch) extent.
    pub batch: usize,
    /// Total channels across all inputs.
    pub total_c: usize,
    /// Elements per channel (product of the spatial dims).
    pub inner: usize,
}

impl ConcatLayout {
    /// The output dimensions (`[n, total_c, spatial...]`).
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }
}

/// Checks that every input shares rank (2 or 4), batch and spatial dims, and sums the
/// channel extents.
pub(crate) fn concat_layout(node: NodeId, shapes: &[&[usize]]) -> Result<ConcatLayout, GraphError> {
    let first = shapes
        .first()
        .ok_or_else(|| shape_err(node, "concat requires at least one input"))?;
    let rank = first.len();
    if rank != 2 && rank != 4 {
        return Err(shape_err(node, "concat supports rank-2 or rank-4 inputs"));
    }
    let batch = first[0];
    let spatial = &first[2..];
    let mut total_c = 0usize;
    for d in shapes {
        if d.len() != rank || d[0] != batch || &d[2..] != spatial {
            return Err(shape_err(
                node,
                "concat inputs must agree in every dimension except channels",
            ));
        }
        total_c += d[1];
    }
    let inner: usize = spatial.iter().product::<usize>().max(1);
    let mut dims = [0usize; 4];
    dims[0] = batch;
    dims[1] = total_c;
    dims[2..rank].copy_from_slice(spatial);
    Ok(ConcatLayout {
        dims,
        rank,
        batch,
        total_c,
        inner,
    })
}

/// Flattens `(N, ...)` into `(N, features)`.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the input is a scalar.
pub fn flatten_forward(node: NodeId, x: &Tensor) -> Result<Tensor, GraphError> {
    let mut out = Tensor::empty();
    flatten_forward_into(node, x, &mut out)?;
    Ok(out)
}

/// [`flatten_forward`], writing into a recycled output buffer.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the input is a scalar; `out` is left unchanged.
pub fn flatten_forward_into(node: NodeId, x: &Tensor, out: &mut Tensor) -> Result<(), GraphError> {
    let d = x.dims();
    if d.is_empty() {
        return Err(shape_err(node, "flatten requires at least rank-1 input"));
    }
    let n = d[0];
    let features = d[1..].iter().product::<usize>().max(1);
    out.reset_rows_from_slice(n, &[features], x.data())
        .map_err(|e| shape_err(node, e.to_string()))
}

/// Reshapes to `[batch, dims...]`, preserving the batch dimension.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the element counts do not match.
pub fn reshape_forward(node: NodeId, x: &Tensor, dims: &[usize]) -> Result<Tensor, GraphError> {
    let mut out = Tensor::empty();
    reshape_forward_into(node, x, dims, &mut out)?;
    Ok(out)
}

/// [`reshape_forward`], writing into a recycled output buffer.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the element counts do not match; `out` is left
/// unchanged.
pub fn reshape_forward_into(
    node: NodeId,
    x: &Tensor,
    dims: &[usize],
    out: &mut Tensor,
) -> Result<(), GraphError> {
    let d = x.dims();
    if d.is_empty() {
        return Err(shape_err(node, "reshape requires at least rank-1 input"));
    }
    out.reset_rows_from_slice(d[0], dims, x.data())
        .map_err(|_| {
            shape_err(
                node,
                format!(
                    "cannot reshape {:?} into a batch of {} x {:?}",
                    d, d[0], dims
                ),
            )
        })
}

/// Backward for flatten/reshape: restores the gradient to the input shape.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the gradient has a different element count.
pub fn reshape_backward(node: NodeId, x: &Tensor, grad_out: &Tensor) -> Result<Tensor, GraphError> {
    grad_out
        .reshape(x.dims().to_vec())
        .map_err(|_| shape_err(node, "reshape backward element count mismatch"))
}

/// Concatenates tensors along the channel dimension (axis 1).
///
/// All inputs must have identical shapes except in axis 1 and must be rank 2 or rank 4.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] on incompatible operands.
pub fn concat_forward(node: NodeId, inputs: &[&Tensor]) -> Result<Tensor, GraphError> {
    let mut out = Tensor::empty();
    concat_forward_into(node, inputs, &mut out)?;
    Ok(out)
}

/// [`concat_forward`], writing into a recycled output buffer.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] on incompatible operands; `out` is left unchanged.
pub fn concat_forward_into(
    node: NodeId,
    inputs: &[&Tensor],
    out: &mut Tensor,
) -> Result<(), GraphError> {
    let shapes: Vec<&[usize]> = inputs.iter().map(|t| t.dims()).collect();
    let layout = concat_layout(node, &shapes)?;
    let (n, total_c, inner) = (layout.batch, layout.total_c, layout.inner);
    out.reset_fill(layout.dims(), 0.0);
    let odat = out.data_mut();
    for b in 0..n {
        let mut c_offset = 0usize;
        for t in inputs {
            let c = t.dims()[1];
            let src = &t.data()[b * c * inner..(b + 1) * c * inner];
            let dst_base = (b * total_c + c_offset) * inner;
            odat[dst_base..dst_base + c * inner].copy_from_slice(src);
            c_offset += c;
        }
    }
    Ok(())
}

/// Backward for concat: splits the output gradient back into per-input gradients.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] on shape inconsistencies.
pub fn concat_backward(
    node: NodeId,
    inputs: &[&Tensor],
    grad_out: &Tensor,
) -> Result<Vec<Tensor>, GraphError> {
    if inputs.is_empty() {
        return Err(shape_err(
            node,
            "concat backward requires at least one input",
        ));
    }
    let n = inputs[0].dims()[0];
    let spatial: Vec<usize> = inputs[0].dims()[2..].to_vec();
    let inner: usize = spatial.iter().product::<usize>().max(1);
    let total_c: usize = inputs.iter().map(|t| t.dims()[1]).sum();
    if grad_out.len() != n * total_c * inner {
        return Err(shape_err(
            node,
            "concat backward gradient element count mismatch",
        ));
    }
    let gdat = grad_out.data();
    let mut grads = Vec::with_capacity(inputs.len());
    let mut c_offset = 0usize;
    for t in inputs {
        let c = t.dims()[1];
        let mut g = vec![0.0f32; t.len()];
        for b in 0..n {
            let src_base = (b * total_c + c_offset) * inner;
            let dst_base = b * c * inner;
            g[dst_base..dst_base + c * inner]
                .copy_from_slice(&gdat[src_base..src_base + c * inner]);
        }
        grads.push(Tensor::from_vec(t.dims().to_vec(), g)?);
        c_offset += c;
    }
    Ok(grads)
}

/// Elementwise addition of two same-shaped tensors.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the shapes differ.
pub fn add_forward(node: NodeId, a: &Tensor, b: &Tensor) -> Result<Tensor, GraphError> {
    a.add(b).map_err(|e| shape_err(node, e.to_string()))
}

/// [`add_forward`], writing into a recycled output buffer.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the shapes differ; `out` is left unchanged.
pub fn add_forward_into(
    node: NodeId,
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
) -> Result<(), GraphError> {
    a.zip_map_into(b, out, |x, y| x + y)
        .map_err(|e| shape_err(node, e.to_string()))
}

/// Elementwise multiplication of two same-shaped tensors.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the shapes differ.
pub fn mul_forward(node: NodeId, a: &Tensor, b: &Tensor) -> Result<Tensor, GraphError> {
    a.mul(b).map_err(|e| shape_err(node, e.to_string()))
}

/// [`mul_forward`], writing into a recycled output buffer.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the shapes differ; `out` is left unchanged.
pub fn mul_forward_into(
    node: NodeId,
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
) -> Result<(), GraphError> {
    a.zip_map_into(b, out, |x, y| x * y)
        .map_err(|e| shape_err(node, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid() -> NodeId {
        NodeId::new(0)
    }

    #[test]
    fn flatten_collapses_trailing_dims() {
        let x = Tensor::zeros(vec![2, 3, 4, 5]);
        let y = flatten_forward(nid(), &x).unwrap();
        assert_eq!(y.dims(), &[2, 60]);
        assert!(flatten_forward(nid(), &Tensor::scalar(1.0)).is_err());
    }

    #[test]
    fn reshape_preserves_batch() {
        let x = Tensor::zeros(vec![2, 12]);
        let y = reshape_forward(nid(), &x, &[3, 4]).unwrap();
        assert_eq!(y.dims(), &[2, 3, 4]);
        assert!(reshape_forward(nid(), &x, &[5, 5]).is_err());
    }

    #[test]
    fn reshape_backward_restores_shape() {
        let x = Tensor::zeros(vec![2, 3, 4]);
        let g = Tensor::ones(vec![2, 12]);
        let gx = reshape_backward(nid(), &x, &g).unwrap();
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn concat_stacks_channels() {
        let a = Tensor::filled(vec![1, 1, 2, 2], 1.0);
        let b = Tensor::filled(vec![1, 2, 2, 2], 2.0);
        let y = concat_forward(nid(), &[&a, &b]).unwrap();
        assert_eq!(y.dims(), &[1, 3, 2, 2]);
        assert_eq!(&y.data()[0..4], &[1.0; 4]);
        assert_eq!(&y.data()[4..12], &[2.0; 8]);
    }

    #[test]
    fn concat_rank2() {
        let a = Tensor::from_vec(vec![2, 1], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = concat_forward(nid(), &[&a, &b]).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(y.data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_rejects_mismatched_inputs() {
        let a = Tensor::zeros(vec![1, 1, 2, 2]);
        let b = Tensor::zeros(vec![1, 1, 3, 3]);
        assert!(concat_forward(nid(), &[&a, &b]).is_err());
        assert!(concat_forward(nid(), &[]).is_err());
        let c = Tensor::zeros(vec![2, 1, 2, 2]);
        assert!(concat_forward(nid(), &[&a, &c]).is_err());
    }

    #[test]
    fn concat_backward_splits_gradient() {
        let a = Tensor::zeros(vec![1, 1, 1, 2]);
        let b = Tensor::zeros(vec![1, 2, 1, 2]);
        let grad = Tensor::from_vec(vec![1, 3, 1, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let grads = concat_backward(nid(), &[&a, &b], &grad).unwrap();
        assert_eq!(grads[0].data(), &[1.0, 2.0]);
        assert_eq!(grads[1].data(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn add_and_mul_require_same_shape() {
        let a = Tensor::ones(vec![2, 2]);
        let b = Tensor::filled(vec![2, 2], 3.0);
        assert_eq!(add_forward(nid(), &a, &b).unwrap().data(), &[4.0; 4]);
        assert_eq!(mul_forward(nid(), &a, &b).unwrap().data(), &[3.0; 4]);
        let c = Tensor::ones(vec![3]);
        assert!(add_forward(nid(), &a, &c).is_err());
        assert!(mul_forward(nid(), &a, &c).is_err());
    }

    #[test]
    fn concat_round_trip_through_backward() {
        let a = Tensor::from_vec(vec![1, 2, 1, 1], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![1, 1, 1, 1], vec![3.0]).unwrap();
        let y = concat_forward(nid(), &[&a, &b]).unwrap();
        let grads = concat_backward(nid(), &[&a, &b], &y).unwrap();
        assert_eq!(grads[0].data(), a.data());
        assert_eq!(grads[1].data(), b.data());
    }
}
