//! Elementwise activation kernels and their derivatives.

use crate::error::GraphError;
use crate::graph::NodeId;
use ranger_tensor::Tensor;

fn shape_err(node: NodeId, message: impl Into<String>) -> GraphError {
    GraphError::ShapeError {
        node,
        message: message.into(),
    }
}

/// Validated softmax layout — `(rows, row_length)` over the last dimension — shared by
/// the f32 and fixed-point kernels so every backend accepts exactly the same operands
/// with exactly the same errors.
pub(crate) fn softmax_layout(
    node: NodeId,
    dims: &[usize],
    len: usize,
) -> Result<(usize, usize), GraphError> {
    if dims.is_empty() {
        return Err(shape_err(node, "softmax requires at least rank-1 input"));
    }
    let last = *dims.last().expect("non-empty dims");
    if last == 0 {
        return Err(shape_err(node, "softmax over an empty dimension"));
    }
    Ok((len / last, last))
}

/// Allocating wrapper over an elementwise `_into` kernel (the `_into` variant is the
/// single implementation, so the two cannot diverge numerically).
fn alloc(f: impl FnOnce(&mut Tensor)) -> Tensor {
    let mut out = Tensor::empty();
    f(&mut out);
    out
}

/// Rectified linear unit: `max(x, 0)`.
pub fn relu_forward(x: &Tensor) -> Tensor {
    alloc(|out| relu_forward_into(x, out))
}

/// [`relu_forward`], writing into a recycled output buffer.
pub fn relu_forward_into(x: &Tensor, out: &mut Tensor) {
    x.map_into(out, |v| v.max(0.0));
}

/// ReLU backward: the gradient flows only where the input was positive.
pub fn relu_backward(x: &Tensor, grad_out: &Tensor) -> Result<Tensor, GraphError> {
    Ok(x.zip_map(grad_out, |xi, g| if xi > 0.0 { g } else { 0.0 })?)
}

/// Hyperbolic tangent activation.
pub fn tanh_forward(x: &Tensor) -> Tensor {
    alloc(|out| tanh_forward_into(x, out))
}

/// [`tanh_forward`], writing into a recycled output buffer.
pub fn tanh_forward_into(x: &Tensor, out: &mut Tensor) {
    x.map_into(out, f32::tanh);
}

/// Tanh backward: `dy/dx = 1 - tanh(x)^2`.
pub fn tanh_backward(x: &Tensor, grad_out: &Tensor) -> Result<Tensor, GraphError> {
    Ok(x.zip_map(grad_out, |xi, g| {
        let t = xi.tanh();
        g * (1.0 - t * t)
    })?)
}

/// Logistic sigmoid activation.
pub fn sigmoid_forward(x: &Tensor) -> Tensor {
    alloc(|out| sigmoid_forward_into(x, out))
}

/// [`sigmoid_forward`], writing into a recycled output buffer.
pub fn sigmoid_forward_into(x: &Tensor, out: &mut Tensor) {
    x.map_into(out, |v| 1.0 / (1.0 + (-v).exp()));
}

/// Sigmoid backward: `dy/dx = s(x) (1 - s(x))`.
pub fn sigmoid_backward(x: &Tensor, grad_out: &Tensor) -> Result<Tensor, GraphError> {
    Ok(x.zip_map(grad_out, |xi, g| {
        let s = 1.0 / (1.0 + (-xi).exp());
        g * s * (1.0 - s)
    })?)
}

/// Elementwise arc-tangent (the Nvidia Dave model converts its regression head to radians
/// with `2 * atan(x)`).
pub fn atan_forward(x: &Tensor) -> Tensor {
    alloc(|out| atan_forward_into(x, out))
}

/// [`atan_forward`], writing into a recycled output buffer.
pub fn atan_forward_into(x: &Tensor, out: &mut Tensor) {
    x.map_into(out, f32::atan);
}

/// Atan backward: `dy/dx = 1 / (1 + x^2)`.
pub fn atan_backward(x: &Tensor, grad_out: &Tensor) -> Result<Tensor, GraphError> {
    Ok(x.zip_map(grad_out, |xi, g| g / (1.0 + xi * xi))?)
}

/// Exponential linear unit with `alpha = 1`.
pub fn elu_forward(x: &Tensor) -> Tensor {
    alloc(|out| elu_forward_into(x, out))
}

/// [`elu_forward`], writing into a recycled output buffer.
pub fn elu_forward_into(x: &Tensor, out: &mut Tensor) {
    x.map_into(out, |v| if v > 0.0 { v } else { v.exp() - 1.0 });
}

/// ELU backward: `dy/dx = 1` for positive inputs, `exp(x)` otherwise.
pub fn elu_backward(x: &Tensor, grad_out: &Tensor) -> Result<Tensor, GraphError> {
    Ok(x.zip_map(grad_out, |xi, g| if xi > 0.0 { g } else { g * xi.exp() })?)
}

/// Softmax over the last dimension, computed with the usual max-subtraction for numerical
/// stability.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the input has rank 0.
pub fn softmax_forward(node: NodeId, x: &Tensor) -> Result<Tensor, GraphError> {
    let mut out = Tensor::empty();
    softmax_forward_into(node, x, &mut out)?;
    Ok(out)
}

/// [`softmax_forward`], writing into a recycled output buffer.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the input has rank 0; `out` is left unchanged.
pub fn softmax_forward_into(node: NodeId, x: &Tensor, out: &mut Tensor) -> Result<(), GraphError> {
    let dims = x.dims();
    let (rows, last) = softmax_layout(node, dims, x.len())?;
    out.reset_fill(dims, 0.0);
    let data = x.data();
    let odat = out.data_mut();
    for r in 0..rows {
        let row = &data[r * last..(r + 1) * last];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (o, &v) in odat[r * last..(r + 1) * last].iter_mut().zip(row) {
            let e = (v - max).exp();
            *o = e;
            denom += e;
        }
        for o in &mut odat[r * last..(r + 1) * last] {
            *o /= denom;
        }
    }
    Ok(())
}

/// Softmax backward given the forward *output* `y` and the upstream gradient.
///
/// `dL/dx_i = y_i * (g_i - sum_j g_j y_j)` per row.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] on shape mismatches.
pub fn softmax_backward(node: NodeId, y: &Tensor, grad_out: &Tensor) -> Result<Tensor, GraphError> {
    if y.dims() != grad_out.dims() {
        return Err(shape_err(node, "softmax backward shape mismatch"));
    }
    let dims = y.dims();
    let last = *dims.last().unwrap_or(&1);
    let rows = y.len() / last.max(1);
    let ydat = y.data();
    let gdat = grad_out.data();
    let mut gx = vec![0.0f32; y.len()];
    for r in 0..rows {
        let ys = &ydat[r * last..(r + 1) * last];
        let gs = &gdat[r * last..(r + 1) * last];
        let dot: f32 = ys.iter().zip(gs).map(|(&yi, &gi)| yi * gi).sum();
        for ((o, &yi), &gi) in gx[r * last..(r + 1) * last].iter_mut().zip(ys).zip(gs) {
            *o = yi * (gi - dot);
        }
    }
    Ok(Tensor::from_vec(dims.to_vec(), gx)?)
}

/// Range restriction (the Ranger operator): clamps every element into `[lo, hi]`.
pub fn clamp_forward(x: &Tensor, lo: f32, hi: f32) -> Tensor {
    alloc(|out| clamp_forward_into(x, lo, hi, out))
}

/// [`clamp_forward`], writing into a recycled output buffer.
pub fn clamp_forward_into(x: &Tensor, lo: f32, hi: f32, out: &mut Tensor) {
    x.map_into(out, |v| v.clamp(lo, hi));
}

/// Range restriction with an explicit out-of-bounds policy (the Section VI-C design
/// alternatives): saturate at the bound, reset to zero, or substitute a deterministic
/// pseudo-random in-range value.
pub fn range_restore_forward(
    x: &Tensor,
    lo: f32,
    hi: f32,
    policy: crate::op::RestorePolicy,
) -> Tensor {
    alloc(|out| range_restore_forward_into(x, lo, hi, policy, out))
}

/// [`range_restore_forward`], writing into a recycled output buffer.
pub fn range_restore_forward_into(
    x: &Tensor,
    lo: f32,
    hi: f32,
    policy: crate::op::RestorePolicy,
    out: &mut Tensor,
) {
    use crate::op::RestorePolicy;
    x.map_into(out, |v| {
        if v >= lo && v <= hi {
            v
        } else {
            match policy {
                RestorePolicy::Saturate => v.clamp(lo, hi),
                RestorePolicy::Zero => 0.0,
                RestorePolicy::Random => {
                    // A cheap deterministic hash of the value's bits mapped into [lo, hi],
                    // so the "random replacement" alternative stays reproducible.
                    let h = v.to_bits().wrapping_mul(0x9E37_79B9) >> 8;
                    let unit = (h & 0xFFFF) as f32 / 65535.0;
                    lo + unit * (hi - lo)
                }
            }
        }
    })
}

/// Clamp backward: the gradient flows only where the input was strictly inside the bounds.
pub fn clamp_backward(
    x: &Tensor,
    grad_out: &Tensor,
    lo: f32,
    hi: f32,
) -> Result<Tensor, GraphError> {
    Ok(x.zip_map(grad_out, |xi, g| if xi > lo && xi < hi { g } else { 0.0 })?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid() -> NodeId {
        NodeId::new(0)
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(vec![4], vec![-2.0, -0.5, 0.0, 3.0]).unwrap();
        assert_eq!(relu_forward(&x).data(), &[0.0, 0.0, 0.0, 3.0]);
        let g = Tensor::ones(vec![4]);
        assert_eq!(relu_backward(&x, &g).unwrap().data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_saturates_and_matches_derivative() {
        let x = Tensor::from_vec(vec![3], vec![-10.0, 0.0, 10.0]).unwrap();
        let y = tanh_forward(&x);
        assert!(y.data()[0] > -1.0 - 1e-6 && y.data()[0] < -0.999);
        assert_eq!(y.data()[1], 0.0);
        let g = Tensor::ones(vec![3]);
        let gx = tanh_backward(&x, &g).unwrap();
        assert!((gx.data()[1] - 1.0).abs() < 1e-6);
        assert!(gx.data()[0] < 1e-6);
    }

    #[test]
    fn sigmoid_midpoint_and_derivative() {
        let x = Tensor::from_vec(vec![1], vec![0.0]).unwrap();
        assert!((sigmoid_forward(&x).data()[0] - 0.5).abs() < 1e-6);
        let g = Tensor::ones(vec![1]);
        assert!((sigmoid_backward(&x, &g).unwrap().data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn atan_is_horizontally_asymptotic() {
        let x = Tensor::from_vec(vec![2], vec![1000.0, -1000.0]).unwrap();
        let y = atan_forward(&x);
        assert!(y.data()[0] < std::f32::consts::FRAC_PI_2);
        assert!(y.data()[1] > -std::f32::consts::FRAC_PI_2);
        // Small deviations at the input of atan near zero map to nearly proportional
        // output deviations (derivative 1), while huge inputs have near-zero derivative.
        let g = Tensor::ones(vec![2]);
        assert!(atan_backward(&x, &g).unwrap().data()[0] < 1e-5);
    }

    #[test]
    fn elu_negative_branch() {
        let x = Tensor::from_vec(vec![2], vec![-1.0, 2.0]).unwrap();
        let y = elu_forward(&x);
        assert!((y.data()[0] - ((-1.0f32).exp() - 1.0)).abs() < 1e-6);
        assert_eq!(y.data()[1], 2.0);
        let g = Tensor::ones(vec![2]);
        let gx = elu_backward(&x, &g).unwrap();
        assert!((gx.data()[0] - (-1.0f32).exp()).abs() < 1e-6);
        assert_eq!(gx.data()[1], 1.0);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let y = softmax_forward(nid(), &x).unwrap();
        for r in 0..2 {
            let row = &y.data()[r * 3..(r + 1) * 3];
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert!(row[2] > row[1] && row[1] > row[0]);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1, 2], vec![10_000.0, 9_999.0]).unwrap();
        let y = softmax_forward(nid(), &x).unwrap();
        assert!(!y.has_non_finite());
        assert!(y.data()[0] > y.data()[1]);
    }

    #[test]
    fn softmax_backward_matches_numerical_gradient() {
        let x = Tensor::from_vec(vec![1, 3], vec![0.2, -0.1, 0.4]).unwrap();
        let y = softmax_forward(nid(), &x).unwrap();
        // Loss = y[0] (pick out the first probability); dL/dy = [1, 0, 0].
        let grad_out = Tensor::from_vec(vec![1, 3], vec![1.0, 0.0, 0.0]).unwrap();
        let gx = softmax_backward(nid(), &y, &grad_out).unwrap();
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = softmax_forward(nid(), &xp).unwrap().data()[0];
            let fm = softmax_forward(nid(), &xm).unwrap().data()[0];
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 1e-3,
                "softmax grad {i}: {num} vs {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn clamp_restricts_and_masks_gradient() {
        let x = Tensor::from_vec(vec![3], vec![-5.0, 0.5, 99.0]).unwrap();
        let y = clamp_forward(&x, 0.0, 1.0);
        assert_eq!(y.data(), &[0.0, 0.5, 1.0]);
        let g = Tensor::ones(vec![3]);
        assert_eq!(
            clamp_backward(&x, &g, 0.0, 1.0).unwrap().data(),
            &[0.0, 1.0, 0.0]
        );
    }

    #[test]
    fn softmax_rejects_scalar_input() {
        assert!(softmax_forward(nid(), &Tensor::scalar(1.0)).is_err());
    }
}
