//! Dense (fully-connected) kernels: matrix multiplication and bias addition.

use crate::error::GraphError;
use crate::graph::NodeId;
use ranger_tensor::Tensor;

fn shape_err(node: NodeId, message: impl Into<String>) -> GraphError {
    GraphError::ShapeError {
        node,
        message: message.into(),
    }
}

/// Validated bias broadcast layout, shared by the f32 and fixed-point kernels: the
/// number of contiguous output elements each bias entry covers as the bias cycles over
/// the row-major data (`H * W` per channel for rank-4 inputs, 1 per feature for rank-2).
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the input rank is unsupported or the bias
/// length does not match.
pub(crate) fn bias_layout(
    node: NodeId,
    xd: &[usize],
    bias_len: usize,
) -> Result<usize, GraphError> {
    let (broadcast, count, label) = match xd.len() {
        4 => (xd[2] * xd[3], xd[1], "channels"),
        2 => (1, xd[1], "features"),
        _ => {
            return Err(shape_err(
                node,
                format!("bias_add expects rank-2 or rank-4 input, got {xd:?}"),
            ))
        }
    };
    if bias_len != count {
        return Err(shape_err(
            node,
            format!("bias length {bias_len} does not match {count} {label}"),
        ));
    }
    Ok(broadcast)
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the tensor is not rank 2.
pub fn transpose(node: NodeId, x: &Tensor) -> Result<Tensor, GraphError> {
    let d = x.dims();
    if d.len() != 2 {
        return Err(shape_err(
            node,
            format!("transpose expects a rank-2 tensor, got {d:?}"),
        ));
    }
    let (r, c) = (d[0], d[1]);
    let data = x.data();
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = data[i * c + j];
        }
    }
    Ok(Tensor::from_vec(vec![c, r], out)?)
}

/// Matrix multiplication forward pass: `x (N,K) · w (K,M) -> (N,M)`.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] on incompatible operands.
pub fn matmul_forward(node: NodeId, x: &Tensor, w: &Tensor) -> Result<Tensor, GraphError> {
    x.matmul(w).map_err(|e| shape_err(node, e.to_string()))
}

/// [`matmul_forward`], writing into a recycled output buffer.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] on incompatible operands; `out` is left unchanged.
pub fn matmul_forward_into(
    node: NodeId,
    x: &Tensor,
    w: &Tensor,
    out: &mut Tensor,
) -> Result<(), GraphError> {
    x.matmul_into(w, out)
        .map_err(|e| shape_err(node, e.to_string()))
}

/// Matrix multiplication backward pass: returns `(grad_x, grad_w)`.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] on incompatible operands.
pub fn matmul_backward(
    node: NodeId,
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
) -> Result<(Tensor, Tensor), GraphError> {
    let wt = transpose(node, w)?;
    let xt = transpose(node, x)?;
    let gx = grad_out
        .matmul(&wt)
        .map_err(|e| shape_err(node, e.to_string()))?;
    let gw = xt
        .matmul(grad_out)
        .map_err(|e| shape_err(node, e.to_string()))?;
    Ok((gx, gw))
}

/// Bias addition forward pass.
///
/// For a rank-4 input `(N, C, H, W)` the bias has shape `(C,)` and is added per channel;
/// for a rank-2 input `(N, F)` the bias has shape `(F,)` and is added per feature.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the bias length does not match.
pub fn bias_add_forward(node: NodeId, x: &Tensor, bias: &Tensor) -> Result<Tensor, GraphError> {
    let mut out = Tensor::empty();
    bias_add_forward_into(node, x, bias, &mut out)?;
    Ok(out)
}

/// [`bias_add_forward`], writing into a recycled output buffer.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the bias length does not match; `out` is left
/// unchanged.
pub fn bias_add_forward_into(
    node: NodeId,
    x: &Tensor,
    bias: &Tensor,
    out: &mut Tensor,
) -> Result<(), GraphError> {
    let xd = x.dims();
    let b = bias.data();
    let broadcast = bias_layout(node, xd, b.len())?;
    out.reset_from_slice(xd, x.data())
        .map_err(|e| shape_err(node, e.to_string()))?;
    // The bias cycles over contiguous `broadcast`-sized chunks of the row-major data:
    // per channel plane (rank 4) or per feature (rank 2). One add per element, so this
    // formulation is bit-for-bit the nested-loop one it replaced.
    if broadcast > 0 {
        let odat = out.data_mut();
        for (chunk, &bias_v) in odat.chunks_mut(broadcast).zip(b.iter().cycle()) {
            for v in chunk {
                *v += bias_v;
            }
        }
    }
    Ok(())
}

/// Bias addition backward pass: returns `(grad_x, grad_bias)`.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the shapes are inconsistent.
pub fn bias_add_backward(
    node: NodeId,
    x: &Tensor,
    bias: &Tensor,
    grad_out: &Tensor,
) -> Result<(Tensor, Tensor), GraphError> {
    let xd = x.dims();
    if grad_out.dims() != xd {
        return Err(shape_err(node, "bias_add backward gradient shape mismatch"));
    }
    let gdat = grad_out.data();
    let mut gb = vec![0.0f32; bias.len()];
    match xd.len() {
        4 => {
            let (n, c, h, w) = (xd[0], xd[1], xd[2], xd[3]);
            if bias.len() != c {
                return Err(shape_err(
                    node,
                    format!("bias length {} does not match {} channels", bias.len(), c),
                ));
            }
            for bi in 0..n {
                for (ch, g) in gb.iter_mut().enumerate() {
                    let base = (bi * c + ch) * h * w;
                    *g += gdat[base..base + h * w].iter().sum::<f32>();
                }
            }
        }
        2 => {
            let (n, f) = (xd[0], xd[1]);
            if bias.len() != f {
                return Err(shape_err(
                    node,
                    format!("bias length {} does not match {} features", bias.len(), f),
                ));
            }
            for bi in 0..n {
                for j in 0..f {
                    gb[j] += gdat[bi * f + j];
                }
            }
        }
        _ => {
            return Err(shape_err(
                node,
                "bias_add backward expects rank-2 or rank-4 input",
            ))
        }
    }
    Ok((
        grad_out.clone(),
        Tensor::from_vec(bias.dims().to_vec(), gb)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid() -> NodeId {
        NodeId::new(0)
    }

    #[test]
    fn transpose_known_result() {
        let x = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = transpose(nid(), &x).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert!(transpose(nid(), &Tensor::ones(vec![2])).is_err());
    }

    #[test]
    fn matmul_backward_matches_numerical_gradient() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::from_vec(
            vec![2, 3],
            (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();
        let w = Tensor::from_vec(
            vec![3, 4],
            (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();
        let y = matmul_forward(nid(), &x, &w).unwrap();
        let grad_out = Tensor::ones(y.dims().to_vec());
        let (gx, gw) = matmul_backward(nid(), &x, &w, &grad_out).unwrap();
        let eps = 1e-3f32;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (matmul_forward(nid(), &xp, &w).unwrap().sum()
                - matmul_forward(nid(), &xm, &w).unwrap().sum())
                / (2.0 * eps);
            assert!((num - gx.data()[idx]).abs() < 1e-2);
        }
        for idx in 0..w.len() {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let num = (matmul_forward(nid(), &x, &wp).unwrap().sum()
                - matmul_forward(nid(), &x, &wm).unwrap().sum())
                / (2.0 * eps);
            assert!((num - gw.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn bias_add_rank2() {
        let x = Tensor::from_vec(vec![2, 3], vec![0.0; 6]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let y = bias_add_forward(nid(), &x, &b).unwrap();
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn bias_add_rank4_broadcasts_per_channel() {
        let x = Tensor::zeros(vec![1, 2, 2, 2]);
        let b = Tensor::from_vec(vec![2], vec![10.0, 20.0]).unwrap();
        let y = bias_add_forward(nid(), &x, &b).unwrap();
        assert_eq!(y.data(), &[10.0, 10.0, 10.0, 10.0, 20.0, 20.0, 20.0, 20.0]);
    }

    #[test]
    fn bias_add_rejects_length_mismatch() {
        let x = Tensor::zeros(vec![1, 3, 2, 2]);
        let b = Tensor::zeros(vec![2]);
        assert!(bias_add_forward(nid(), &x, &b).is_err());
        assert!(bias_add_forward(nid(), &Tensor::zeros(vec![3]), &b).is_err());
    }

    #[test]
    fn bias_add_backward_sums_over_batch_and_space() {
        let x = Tensor::zeros(vec![2, 2, 2, 2]);
        let b = Tensor::zeros(vec![2]);
        let grad = Tensor::ones(vec![2, 2, 2, 2]);
        let (gx, gb) = bias_add_backward(nid(), &x, &b, &grad).unwrap();
        assert_eq!(gx.data(), grad.data());
        assert_eq!(gb.data(), &[8.0, 8.0]);

        let x2 = Tensor::zeros(vec![3, 2]);
        let b2 = Tensor::zeros(vec![2]);
        let grad2 = Tensor::ones(vec![3, 2]);
        let (_, gb2) = bias_add_backward(nid(), &x2, &b2, &grad2).unwrap();
        assert_eq!(gb2.data(), &[3.0, 3.0]);
    }
}
