//! Forward and backward kernels for every graph operator.
//!
//! The kernels are plain, allocation-per-call implementations: the models in this
//! reproduction are scaled to run on a single CPU core, so clarity is preferred over
//! cache-blocking tricks. Every kernel comes with its backward counterpart so the models
//! can be trained from scratch with [`crate::autodiff`].

pub mod activation;
pub mod conv;
pub mod linear;
pub mod pool;
pub mod shape_ops;

pub use activation::*;
pub use conv::*;
pub use linear::*;
pub use pool::*;
pub use shape_ops::*;
