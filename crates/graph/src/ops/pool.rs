//! Pooling kernels (max, average and global average) in NCHW layout.

use crate::error::GraphError;
use crate::graph::NodeId;
use ranger_tensor::Tensor;

fn shape_err(node: NodeId, message: impl Into<String>) -> GraphError {
    GraphError::ShapeError {
        node,
        message: message.into(),
    }
}

/// Output spatial extent of one pooled dimension (shared with the fixed-point backend).
pub(crate) fn pool_geometry(input: usize, kernel: usize, stride: usize) -> usize {
    if input >= kernel {
        (input - kernel) / stride + 1
    } else {
        0
    }
}

/// Validated pooling layout, shared by the f32 and fixed-point kernels so every backend
/// accepts exactly the same operands with exactly the same errors.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PoolLayout {
    pub batch: usize,
    pub channels: usize,
    pub height: usize,
    pub width: usize,
    pub out_h: usize,
    pub out_w: usize,
}

/// Checks the pooled operand's rank and the window parameters, and computes the output
/// spatial extents.
pub(crate) fn pool_layout(
    node: NodeId,
    xd: &[usize],
    kernel: usize,
    stride: usize,
) -> Result<PoolLayout, GraphError> {
    if xd.len() != 4 {
        return Err(shape_err(
            node,
            format!("pooling expects a rank-4 input, got {xd:?}"),
        ));
    }
    if kernel == 0 || stride == 0 {
        return Err(shape_err(
            node,
            "pooling kernel and stride must be positive",
        ));
    }
    let (batch, channels, height, width) = (xd[0], xd[1], xd[2], xd[3]);
    let out_h = pool_geometry(height, kernel, stride);
    let out_w = pool_geometry(width, kernel, stride);
    if out_h == 0 || out_w == 0 {
        return Err(shape_err(
            node,
            format!("pooling window {kernel} larger than input {height}x{width}"),
        ));
    }
    Ok(PoolLayout {
        batch,
        channels,
        height,
        width,
        out_h,
        out_w,
    })
}

/// Validated global-pooling layout — `(batch, channels, height, width)` — shared by the
/// f32 and fixed-point kernels.
pub(crate) fn global_pool_layout(
    node: NodeId,
    xd: &[usize],
) -> Result<(usize, usize, usize, usize), GraphError> {
    if xd.len() != 4 {
        return Err(shape_err(
            node,
            format!("global average pooling expects rank-4 input, got {xd:?}"),
        ));
    }
    Ok((xd[0], xd[1], xd[2], xd[3]))
}

/// Max-pooling forward pass with a square window.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if `x` is not rank 4 or the window parameters are
/// degenerate.
pub fn max_pool_forward(
    node: NodeId,
    x: &Tensor,
    kernel: usize,
    stride: usize,
) -> Result<Tensor, GraphError> {
    let mut out = Tensor::empty();
    pool_forward_into(node, x, kernel, stride, PoolKind::Max, &mut out)?;
    Ok(out)
}

/// [`max_pool_forward`], writing into a recycled output buffer.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if `x` is not rank 4 or the window parameters are
/// degenerate; `out` is left unchanged.
pub fn max_pool_forward_into(
    node: NodeId,
    x: &Tensor,
    kernel: usize,
    stride: usize,
    out: &mut Tensor,
) -> Result<(), GraphError> {
    pool_forward_into(node, x, kernel, stride, PoolKind::Max, out)
}

/// Average-pooling forward pass with a square window.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if `x` is not rank 4 or the window parameters are
/// degenerate.
pub fn avg_pool_forward(
    node: NodeId,
    x: &Tensor,
    kernel: usize,
    stride: usize,
) -> Result<Tensor, GraphError> {
    let mut out = Tensor::empty();
    pool_forward_into(node, x, kernel, stride, PoolKind::Avg, &mut out)?;
    Ok(out)
}

/// [`avg_pool_forward`], writing into a recycled output buffer.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if `x` is not rank 4 or the window parameters are
/// degenerate; `out` is left unchanged.
pub fn avg_pool_forward_into(
    node: NodeId,
    x: &Tensor,
    kernel: usize,
    stride: usize,
    out: &mut Tensor,
) -> Result<(), GraphError> {
    pool_forward_into(node, x, kernel, stride, PoolKind::Avg, out)
}

#[derive(Clone, Copy, PartialEq)]
enum PoolKind {
    Max,
    Avg,
}

fn pool_forward_into(
    node: NodeId,
    x: &Tensor,
    kernel: usize,
    stride: usize,
    kind: PoolKind,
    out: &mut Tensor,
) -> Result<(), GraphError> {
    let layout = pool_layout(node, x.dims(), kernel, stride)?;
    let (n, c, h, w) = (layout.batch, layout.channels, layout.height, layout.width);
    let (ho, wo) = (layout.out_h, layout.out_w);
    let xdat = x.data();
    out.reset_fill(&[n, c, ho, wo], 0.0);
    let odat = out.data_mut();
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = if kind == PoolKind::Max {
                        f32::NEG_INFINITY
                    } else {
                        0.0
                    };
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let v =
                                xdat[((b * c + ch) * h + oy * stride + ky) * w + ox * stride + kx];
                            match kind {
                                PoolKind::Max => acc = acc.max(v),
                                PoolKind::Avg => acc += v,
                            }
                        }
                    }
                    if kind == PoolKind::Avg {
                        acc /= (kernel * kernel) as f32;
                    }
                    odat[((b * c + ch) * ho + oy) * wo + ox] = acc;
                }
            }
        }
    }
    Ok(())
}

/// Max-pooling backward pass: routes each output gradient to the input position that
/// achieved the maximum (ties broken toward the first position scanned, matching the
/// forward pass).
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] on rank or shape mismatches.
pub fn max_pool_backward(
    node: NodeId,
    x: &Tensor,
    grad_out: &Tensor,
    kernel: usize,
    stride: usize,
) -> Result<Tensor, GraphError> {
    let xd = x.dims();
    if xd.len() != 4 || grad_out.dims().len() != 4 {
        return Err(shape_err(node, "max_pool backward expects rank-4 operands"));
    }
    let (n, c, h, w) = (xd[0], xd[1], xd[2], xd[3]);
    let ho = pool_geometry(h, kernel, stride);
    let wo = pool_geometry(w, kernel, stride);
    if grad_out.dims() != [n, c, ho, wo] {
        return Err(shape_err(node, "max_pool backward gradient shape mismatch"));
    }
    let xdat = x.data();
    let gdat = grad_out.data();
    let mut gx = vec![0.0f32; xdat.len()];
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let idx = ((b * c + ch) * h + oy * stride + ky) * w + ox * stride + kx;
                            if xdat[idx] > best {
                                best = xdat[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    gx[best_idx] += gdat[((b * c + ch) * ho + oy) * wo + ox];
                }
            }
        }
    }
    Ok(Tensor::from_vec(xd.to_vec(), gx)?)
}

/// Average-pooling backward pass: distributes each output gradient evenly over its window.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] on rank or shape mismatches.
pub fn avg_pool_backward(
    node: NodeId,
    x: &Tensor,
    grad_out: &Tensor,
    kernel: usize,
    stride: usize,
) -> Result<Tensor, GraphError> {
    let xd = x.dims();
    if xd.len() != 4 || grad_out.dims().len() != 4 {
        return Err(shape_err(node, "avg_pool backward expects rank-4 operands"));
    }
    let (n, c, h, w) = (xd[0], xd[1], xd[2], xd[3]);
    let ho = pool_geometry(h, kernel, stride);
    let wo = pool_geometry(w, kernel, stride);
    if grad_out.dims() != [n, c, ho, wo] {
        return Err(shape_err(node, "avg_pool backward gradient shape mismatch"));
    }
    let gdat = grad_out.data();
    let mut gx = vec![0.0f32; x.len()];
    let scale = 1.0 / (kernel * kernel) as f32;
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let g = gdat[((b * c + ch) * ho + oy) * wo + ox] * scale;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            gx[((b * c + ch) * h + oy * stride + ky) * w + ox * stride + kx] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(Tensor::from_vec(xd.to_vec(), gx)?)
}

/// Global average pooling: reduces `(N, C, H, W)` to `(N, C)`.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if `x` is not rank 4.
pub fn global_avg_pool_forward(node: NodeId, x: &Tensor) -> Result<Tensor, GraphError> {
    let mut out = Tensor::empty();
    global_avg_pool_forward_into(node, x, &mut out)?;
    Ok(out)
}

/// [`global_avg_pool_forward`], writing into a recycled output buffer.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if `x` is not rank 4; `out` is left unchanged.
pub fn global_avg_pool_forward_into(
    node: NodeId,
    x: &Tensor,
    out: &mut Tensor,
) -> Result<(), GraphError> {
    let (n, c, h, w) = global_pool_layout(node, x.dims())?;
    let xdat = x.data();
    out.reset_fill(&[n, c], 0.0);
    let odat = out.data_mut();
    let scale = 1.0 / (h * w) as f32;
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            odat[b * c + ch] = xdat[base..base + h * w].iter().sum::<f32>() * scale;
        }
    }
    Ok(())
}

/// Global average pooling backward pass.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] on shape mismatches.
pub fn global_avg_pool_backward(
    node: NodeId,
    x: &Tensor,
    grad_out: &Tensor,
) -> Result<Tensor, GraphError> {
    let xd = x.dims();
    if xd.len() != 4 {
        return Err(shape_err(
            node,
            "global average pooling backward expects rank-4 input",
        ));
    }
    let (n, c, h, w) = (xd[0], xd[1], xd[2], xd[3]);
    if grad_out.dims() != [n, c] {
        return Err(shape_err(
            node,
            "global average pooling gradient shape mismatch",
        ));
    }
    let scale = 1.0 / (h * w) as f32;
    let gdat = grad_out.data();
    let mut gx = vec![0.0f32; x.len()];
    for b in 0..n {
        for ch in 0..c {
            let g = gdat[b * c + ch] * scale;
            let base = (b * c + ch) * h * w;
            for v in &mut gx[base..base + h * w] {
                *v = g;
            }
        }
    }
    Ok(Tensor::from_vec(xd.to_vec(), gx)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid() -> NodeId {
        NodeId::new(0)
    }

    #[test]
    fn max_pool_known_result() {
        let x = Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let y = max_pool_forward(nid(), &x, 2, 2).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avg_pool_known_result() {
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let y = avg_pool_forward(nid(), &x, 2, 2).unwrap();
        assert_eq!(y.data(), &[4.0]);
    }

    #[test]
    fn global_avg_pool_reduces_spatial_dims() {
        let x = Tensor::from_vec(
            vec![1, 2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
        )
        .unwrap();
        let y = global_avg_pool_forward(nid(), &x).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 25.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        let grad = Tensor::from_vec(vec![1, 1, 1, 1], vec![5.0]).unwrap();
        let gx = max_pool_backward(nid(), &x, &grad, 2, 2).unwrap();
        assert_eq!(gx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_backward_distributes_evenly() {
        let x = Tensor::ones(vec![1, 1, 2, 2]);
        let grad = Tensor::from_vec(vec![1, 1, 1, 1], vec![8.0]).unwrap();
        let gx = avg_pool_backward(nid(), &x, &grad, 2, 2).unwrap();
        assert_eq!(gx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn global_avg_pool_backward_spreads_gradient() {
        let x = Tensor::ones(vec![1, 1, 2, 2]);
        let grad = Tensor::from_vec(vec![1, 1], vec![4.0]).unwrap();
        let gx = global_avg_pool_backward(nid(), &x, &grad).unwrap();
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn pooling_rejects_bad_shapes() {
        let x = Tensor::ones(vec![2, 2]);
        assert!(max_pool_forward(nid(), &x, 2, 2).is_err());
        let x = Tensor::ones(vec![1, 1, 2, 2]);
        assert!(max_pool_forward(nid(), &x, 3, 1).is_err());
        assert!(max_pool_forward(nid(), &x, 0, 1).is_err());
        assert!(global_avg_pool_forward(nid(), &Tensor::ones(vec![3])).is_err());
    }

    #[test]
    fn overlapping_windows_with_stride_one() {
        let x = Tensor::from_vec(
            vec![1, 1, 3, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        )
        .unwrap();
        let y = max_pool_forward(nid(), &x, 2, 1).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 6.0, 8.0, 9.0]);
    }
}
