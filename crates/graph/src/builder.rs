//! A layer-oriented convenience API for constructing model graphs.
//!
//! The eight benchmark architectures are expressed in terms of layers (conv + bias + ReLU,
//! dense, pooling, fire modules, residual blocks); [`GraphBuilder`] turns those into the
//! underlying operator nodes with freshly initialized weights.

use crate::graph::{Graph, NodeId};
use crate::op::{Op, Padding};
use rand::Rng;
use ranger_tensor::init;

/// Incrementally builds a [`Graph`] layer by layer.
///
/// The builder owns the graph; [`GraphBuilder::into_graph`] releases it. Weight constants
/// are created with He initialization (appropriate for the ReLU-dominated benchmark
/// models) and registered as trainable parameters.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: Graph,
    layer_counter: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Returns the graph built so far, consuming the builder.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Returns a reference to the graph built so far.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    fn next_layer_name(&mut self, kind: &str) -> String {
        self.layer_counter += 1;
        format!("{kind}_{}", self.layer_counter)
    }

    /// Adds a graph input placeholder with the given name.
    pub fn input(&mut self, name: &str) -> NodeId {
        self.graph.add_input(name)
    }

    /// Adds a 2-D convolution layer (convolution + per-channel bias).
    ///
    /// `in_channels`/`out_channels` describe the filter bank; `kernel` is the square
    /// window size.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d<R: Rng + ?Sized>(
        &mut self,
        x: NodeId,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: Padding,
        rng: &mut R,
    ) -> NodeId {
        let name = self.next_layer_name("conv");
        let fan_in = in_channels * kernel * kernel;
        let w = init::he_normal(vec![out_channels, in_channels, kernel, kernel], fan_in, rng);
        let w = self.graph.add_const(format!("{name}/weights"), w, true);
        let b = self.graph.add_const(
            format!("{name}/bias"),
            ranger_tensor::Tensor::zeros(vec![out_channels]),
            true,
        );
        let conv = self.graph.add_node(
            format!("{name}/Conv2D"),
            Op::Conv2d { stride, padding },
            vec![x, w],
        );
        self.graph
            .add_node(format!("{name}/BiasAdd"), Op::BiasAdd, vec![conv, b])
    }

    /// Adds a dense (fully-connected) layer (matmul + bias). The input must be rank 2.
    pub fn dense<R: Rng + ?Sized>(
        &mut self,
        x: NodeId,
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> NodeId {
        let name = self.next_layer_name("fc");
        let w = init::he_normal(vec![in_features, out_features], in_features, rng);
        let w = self.graph.add_const(format!("{name}/weights"), w, true);
        let b = self.graph.add_const(
            format!("{name}/bias"),
            ranger_tensor::Tensor::zeros(vec![out_features]),
            true,
        );
        let mm = self
            .graph
            .add_node(format!("{name}/MatMul"), Op::MatMul, vec![x, w]);
        self.graph
            .add_node(format!("{name}/BiasAdd"), Op::BiasAdd, vec![mm, b])
    }

    /// Adds a ReLU activation.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let name = self.next_layer_name("relu");
        self.graph
            .add_node(format!("{name}/Relu"), Op::Relu, vec![x])
    }

    /// Adds a Tanh activation.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let name = self.next_layer_name("tanh");
        self.graph
            .add_node(format!("{name}/Tanh"), Op::Tanh, vec![x])
    }

    /// Adds a sigmoid activation.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let name = self.next_layer_name("sigmoid");
        self.graph
            .add_node(format!("{name}/Sigmoid"), Op::Sigmoid, vec![x])
    }

    /// Adds an ELU activation.
    pub fn elu(&mut self, x: NodeId) -> NodeId {
        let name = self.next_layer_name("elu");
        self.graph.add_node(format!("{name}/Elu"), Op::Elu, vec![x])
    }

    /// Adds an elementwise arc-tangent.
    pub fn atan(&mut self, x: NodeId) -> NodeId {
        let name = self.next_layer_name("atan");
        self.graph
            .add_node(format!("{name}/Atan"), Op::Atan, vec![x])
    }

    /// Adds a softmax over the last dimension.
    pub fn softmax(&mut self, x: NodeId) -> NodeId {
        let name = self.next_layer_name("softmax");
        self.graph
            .add_node(format!("{name}/Softmax"), Op::Softmax, vec![x])
    }

    /// Adds a max-pooling layer.
    pub fn max_pool(&mut self, x: NodeId, kernel: usize, stride: usize) -> NodeId {
        let name = self.next_layer_name("maxpool");
        self.graph.add_node(
            format!("{name}/MaxPool"),
            Op::MaxPool { kernel, stride },
            vec![x],
        )
    }

    /// Adds an average-pooling layer.
    pub fn avg_pool(&mut self, x: NodeId, kernel: usize, stride: usize) -> NodeId {
        let name = self.next_layer_name("avgpool");
        self.graph.add_node(
            format!("{name}/AvgPool"),
            Op::AvgPool { kernel, stride },
            vec![x],
        )
    }

    /// Adds a global average pooling layer.
    pub fn global_avg_pool(&mut self, x: NodeId) -> NodeId {
        let name = self.next_layer_name("gap");
        self.graph
            .add_node(format!("{name}/GlobalAvgPool"), Op::GlobalAvgPool, vec![x])
    }

    /// Adds a flatten layer.
    pub fn flatten(&mut self, x: NodeId) -> NodeId {
        let name = self.next_layer_name("flatten");
        self.graph
            .add_node(format!("{name}/Flatten"), Op::Flatten, vec![x])
    }

    /// Adds a reshape to `[batch, dims...]`.
    pub fn reshape(&mut self, x: NodeId, dims: Vec<usize>) -> NodeId {
        let name = self.next_layer_name("reshape");
        self.graph
            .add_node(format!("{name}/Reshape"), Op::Reshape { dims }, vec![x])
    }

    /// Adds a channel-axis concatenation of several tensors.
    pub fn concat(&mut self, inputs: Vec<NodeId>) -> NodeId {
        let name = self.next_layer_name("concat");
        self.graph
            .add_node(format!("{name}/Concat"), Op::Concat, inputs)
    }

    /// Adds an elementwise addition (residual connection).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let name = self.next_layer_name("add");
        self.graph
            .add_node(format!("{name}/Add"), Op::Add, vec![a, b])
    }

    /// Adds a multiplication by a scalar constant.
    pub fn scalar_mul(&mut self, x: NodeId, factor: f32) -> NodeId {
        let name = self.next_layer_name("scale");
        self.graph.add_node(
            format!("{name}/ScalarMul"),
            Op::ScalarMul { factor },
            vec![x],
        )
    }

    /// Adds an identity node with a descriptive name (useful for marking logical outputs).
    pub fn identity(&mut self, x: NodeId, name: &str) -> NodeId {
        self.graph.add_node(name, Op::Identity, vec![x])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_tensor::Tensor;

    #[test]
    fn builder_constructs_runnable_mlp() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 4, 16, &mut rng);
        let h = b.relu(h);
        let logits = b.dense(h, 16, 3, &mut rng);
        let probs = b.softmax(logits);
        let g = b.into_graph();

        let exec = Executor::new(&g);
        let out = exec
            .run_simple(&[("x", Tensor::ones(vec![2, 4]))], probs)
            .unwrap();
        assert_eq!(out.dims(), &[2, 3]);
        for r in 0..2 {
            let row_sum: f32 = out.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn builder_constructs_runnable_cnn() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new();
        let x = b.input("image");
        let c = b.conv2d(x, 1, 4, 3, 1, Padding::Same, &mut rng);
        let c = b.relu(c);
        let p = b.max_pool(c, 2, 2);
        let f = b.flatten(p);
        let logits = b.dense(f, 4 * 4 * 4, 10, &mut rng);
        let g = b.into_graph();

        let exec = Executor::new(&g);
        let out = exec
            .run_simple(&[("image", Tensor::ones(vec![1, 1, 8, 8]))], logits)
            .unwrap();
        assert_eq!(out.dims(), &[1, 10]);
    }

    #[test]
    fn parameters_are_trainable_and_counted() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let _ = b.dense(x, 10, 5, &mut rng);
        let g = b.into_graph();
        assert_eq!(g.trainable_nodes().len(), 2);
        assert_eq!(g.parameter_count(), 10 * 5 + 5);
    }

    #[test]
    fn layer_names_are_unique_and_descriptive() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let a = b.dense(x, 2, 2, &mut rng);
        let c = b.dense(a, 2, 2, &mut rng);
        let g = b.into_graph();
        let name_a = &g.node(a).unwrap().name;
        let name_c = &g.node(c).unwrap().name;
        assert_ne!(name_a, name_c);
        assert!(name_a.contains("BiasAdd"));
    }

    #[test]
    fn residual_add_and_concat_compose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let c1 = b.conv2d(x, 2, 2, 3, 1, Padding::Same, &mut rng);
        let c1 = b.relu(c1);
        let res = b.add(c1, x);
        let cat = b.concat(vec![res, x]);
        let g = b.into_graph();
        let exec = Executor::new(&g);
        let out = exec
            .run_simple(&[("x", Tensor::ones(vec![1, 2, 4, 4]))], cat)
            .unwrap();
        assert_eq!(out.dims(), &[1, 4, 4, 4]);
    }
}
