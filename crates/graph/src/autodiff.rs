//! Reverse-mode automatic differentiation, losses and optimizers.
//!
//! The benchmark models are trained from scratch on the synthetic datasets, so the graph
//! needs gradients. [`backward`] walks the graph in reverse topological order from an
//! output node, seeding the chain rule with a user-supplied gradient (typically the
//! gradient of a loss with respect to the logits or the regression output, produced by
//! [`softmax_cross_entropy`] or [`mse_loss`]).

use crate::error::GraphError;
use crate::exec::Values;
use crate::graph::{Graph, NodeId};
use crate::op::Op;
use crate::ops;
use ranger_tensor::Tensor;
use std::collections::HashMap;

/// Gradients of a scalar loss with respect to node outputs, keyed by node id.
#[derive(Debug, Default, Clone)]
pub struct Gradients {
    grads: HashMap<NodeId, Tensor>,
}

impl Gradients {
    /// Returns the gradient for `id`, if that node influenced the differentiated output.
    pub fn get(&self, id: NodeId) -> Option<&Tensor> {
        self.grads.get(&id)
    }

    /// Number of nodes with a recorded gradient.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Returns `true` if no gradients were recorded.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    fn accumulate(&mut self, id: NodeId, grad: Tensor) -> Result<(), GraphError> {
        match self.grads.get_mut(&id) {
            Some(existing) => {
                *existing = existing.add(&grad)?;
            }
            None => {
                self.grads.insert(id, grad);
            }
        }
        Ok(())
    }
}

/// Computes gradients of a scalar function of `output` with respect to every node that
/// feeds it, starting from `seed = d(loss)/d(output)`.
///
/// # Errors
///
/// Returns [`GraphError::UnsupportedBackward`] if the graph contains an operator without a
/// backward rule on the differentiated path, or other [`GraphError`]s on malformed graphs.
pub fn backward(
    graph: &Graph,
    values: &Values,
    output: NodeId,
    seed: &Tensor,
) -> Result<Gradients, GraphError> {
    let mut grads = Gradients::default();
    grads.accumulate(output, seed.clone())?;

    let order = graph.topological_order()?;
    for &id in order.iter().rev() {
        let Some(grad_out) = grads.get(id).cloned() else {
            continue;
        };
        let node = graph.node(id)?;
        match &node.op {
            Op::Input | Op::Const => {}
            Op::Conv2d { stride, padding } => {
                let x = values.get(node.inputs[0])?;
                let w = values.get(node.inputs[1])?;
                let (gx, gw) = ops::conv2d_backward(id, x, w, &grad_out, *stride, *padding)?;
                grads.accumulate(node.inputs[0], gx)?;
                grads.accumulate(node.inputs[1], gw)?;
            }
            Op::MatMul => {
                let x = values.get(node.inputs[0])?;
                let w = values.get(node.inputs[1])?;
                let (gx, gw) = ops::matmul_backward(id, x, w, &grad_out)?;
                grads.accumulate(node.inputs[0], gx)?;
                grads.accumulate(node.inputs[1], gw)?;
            }
            Op::BiasAdd => {
                let x = values.get(node.inputs[0])?;
                let b = values.get(node.inputs[1])?;
                let (gx, gb) = ops::bias_add_backward(id, x, b, &grad_out)?;
                grads.accumulate(node.inputs[0], gx)?;
                grads.accumulate(node.inputs[1], gb)?;
            }
            Op::Relu => {
                let x = values.get(node.inputs[0])?;
                grads.accumulate(node.inputs[0], ops::relu_backward(x, &grad_out)?)?;
            }
            Op::Tanh => {
                let x = values.get(node.inputs[0])?;
                grads.accumulate(node.inputs[0], ops::tanh_backward(x, &grad_out)?)?;
            }
            Op::Sigmoid => {
                let x = values.get(node.inputs[0])?;
                grads.accumulate(node.inputs[0], ops::sigmoid_backward(x, &grad_out)?)?;
            }
            Op::Atan => {
                let x = values.get(node.inputs[0])?;
                grads.accumulate(node.inputs[0], ops::atan_backward(x, &grad_out)?)?;
            }
            Op::Elu => {
                let x = values.get(node.inputs[0])?;
                grads.accumulate(node.inputs[0], ops::elu_backward(x, &grad_out)?)?;
            }
            Op::Softmax => {
                let y = values.get(id)?;
                grads.accumulate(node.inputs[0], ops::softmax_backward(id, y, &grad_out)?)?;
            }
            Op::MaxPool { kernel, stride } => {
                let x = values.get(node.inputs[0])?;
                grads.accumulate(
                    node.inputs[0],
                    ops::max_pool_backward(id, x, &grad_out, *kernel, *stride)?,
                )?;
            }
            Op::AvgPool { kernel, stride } => {
                let x = values.get(node.inputs[0])?;
                grads.accumulate(
                    node.inputs[0],
                    ops::avg_pool_backward(id, x, &grad_out, *kernel, *stride)?,
                )?;
            }
            Op::GlobalAvgPool => {
                let x = values.get(node.inputs[0])?;
                grads.accumulate(
                    node.inputs[0],
                    ops::global_avg_pool_backward(id, x, &grad_out)?,
                )?;
            }
            Op::Flatten | Op::Reshape { .. } => {
                let x = values.get(node.inputs[0])?;
                grads.accumulate(node.inputs[0], ops::reshape_backward(id, x, &grad_out)?)?;
            }
            Op::Concat => {
                let inputs: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|&i| values.get(i))
                    .collect::<Result<_, _>>()?;
                let gs = ops::concat_backward(id, &inputs, &grad_out)?;
                for (&input, g) in node.inputs.iter().zip(gs) {
                    grads.accumulate(input, g)?;
                }
            }
            Op::Add => {
                grads.accumulate(node.inputs[0], grad_out.clone())?;
                grads.accumulate(node.inputs[1], grad_out)?;
            }
            Op::Mul => {
                let a = values.get(node.inputs[0])?;
                let b = values.get(node.inputs[1])?;
                grads.accumulate(node.inputs[0], grad_out.mul(b)?)?;
                grads.accumulate(node.inputs[1], grad_out.mul(a)?)?;
            }
            Op::ScalarMul { factor } => {
                grads.accumulate(node.inputs[0], grad_out.scale(*factor))?;
            }
            Op::Identity => {
                grads.accumulate(node.inputs[0], grad_out)?;
            }
            Op::Clamp { lo, hi } | Op::RangeRestore { lo, hi, .. } => {
                let x = values.get(node.inputs[0])?;
                grads.accumulate(node.inputs[0], ops::clamp_backward(x, &grad_out, *lo, *hi)?)?;
            }
        }
    }
    Ok(grads)
}

/// Softmax cross-entropy loss computed directly from logits.
///
/// Returns the mean loss over the batch and the gradient with respect to the logits
/// (`softmax(logits) - onehot(labels)`, scaled by `1/batch`), which seeds [`backward`].
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if `logits` is not rank 2 or a label is out of
/// range.
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
) -> Result<(f32, Tensor), GraphError> {
    let dims = logits.dims();
    if dims.len() != 2 || dims[0] != labels.len() {
        return Err(GraphError::ShapeError {
            node: NodeId::new(usize::MAX),
            message: format!(
                "softmax cross entropy expects (batch, classes) logits matching {} labels, got {dims:?}",
                labels.len()
            ),
        });
    }
    let (n, classes) = (dims[0], dims[1]);
    let probs = ops::softmax_forward(NodeId::new(usize::MAX), logits)?;
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for (i, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(GraphError::ShapeError {
                node: NodeId::new(usize::MAX),
                message: format!("label {label} out of range for {classes} classes"),
            });
        }
        let p = probs.data()[i * classes + label].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * classes + label] -= 1.0;
    }
    let scale = 1.0 / n as f32;
    Ok((loss * scale, grad.scale(scale)))
}

/// Mean-squared-error loss for regression outputs.
///
/// Returns the mean loss and the gradient with respect to the predictions.
///
/// # Errors
///
/// Returns a [`GraphError::ShapeError`] if the shapes differ.
pub fn mse_loss(predictions: &Tensor, targets: &Tensor) -> Result<(f32, Tensor), GraphError> {
    let diff = predictions
        .sub(targets)
        .map_err(|e| GraphError::ShapeError {
            node: NodeId::new(usize::MAX),
            message: e.to_string(),
        })?;
    let n = diff.len().max(1) as f32;
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

/// Stochastic gradient descent with momentum over the trainable constants of a graph.
#[derive(Debug, Clone)]
pub struct SgdOptimizer {
    learning_rate: f32,
    momentum: f32,
    weight_decay: f32,
    clip_norm: Option<f32>,
    velocity: HashMap<NodeId, Tensor>,
}

impl SgdOptimizer {
    /// Creates an optimizer with the given learning rate, momentum and L2 weight decay.
    pub fn new(learning_rate: f32, momentum: f32, weight_decay: f32) -> Self {
        SgdOptimizer {
            learning_rate,
            momentum,
            weight_decay,
            clip_norm: None,
            velocity: HashMap::new(),
        }
    }

    /// Enables global gradient-norm clipping: if the L2 norm of the whole gradient exceeds
    /// `max_norm`, every gradient is scaled down proportionally. Clipping keeps the deeper
    /// benchmark models and the steering regressors from diverging at the start of
    /// training.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        self.clip_norm = Some(max_norm);
        self
    }

    /// Returns the configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Sets the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.learning_rate = lr;
    }

    /// Applies one update step to every trainable constant with a gradient.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a parameter's gradient has a mismatched shape.
    pub fn step(&mut self, graph: &mut Graph, grads: &Gradients) -> Result<(), GraphError> {
        // Global gradient-norm clipping across every trainable parameter.
        let clip_scale = match self.clip_norm {
            Some(max_norm) => {
                let total: f32 = graph
                    .trainable_nodes()
                    .iter()
                    .filter_map(|&id| grads.get(id))
                    .map(|g| g.data().iter().map(|v| v * v).sum::<f32>())
                    .sum();
                let norm = total.sqrt();
                if norm.is_finite() && norm > max_norm {
                    max_norm / norm
                } else if !norm.is_finite() {
                    // A non-finite gradient would destroy the weights; skip the update.
                    0.0
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        if clip_scale == 0.0 {
            // The whole gradient was non-finite; scaling it would still poison the
            // weights (0 · NaN = NaN), so skip this update entirely.
            return Ok(());
        }
        for id in graph.trainable_nodes() {
            let Some(grad) = grads.get(id) else { continue };
            let grad = &grad.scale(clip_scale);
            let node = graph.node_mut(id)?;
            let value = node
                .value
                .as_ref()
                .ok_or(GraphError::MissingConstValue(id))?;
            let mut update = grad.clone();
            if self.weight_decay > 0.0 {
                update = update.add(&value.scale(self.weight_decay))?;
            }
            if self.momentum > 0.0 {
                let velocity = self
                    .velocity
                    .entry(id)
                    .or_insert_with(|| Tensor::zeros(value.dims().to_vec()));
                *velocity = velocity.scale(self.momentum).add(&update)?;
                update = velocity.clone();
            }
            let new_value = value.sub(&update.scale(self.learning_rate))?;
            node.value = Some(new_value);
        }
        Ok(())
    }
}

/// The Adam optimizer over the trainable constants of a graph.
///
/// Adam adapts the step size per parameter from running estimates of the first and second
/// gradient moments; it is less sensitive to the learning rate than SGD and is used by the
/// deeper benchmark replicas when experimenting with alternative training recipes.
#[derive(Debug, Clone)]
pub struct AdamOptimizer {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step_count: u64,
    first_moment: HashMap<NodeId, Tensor>,
    second_moment: HashMap<NodeId, Tensor>,
}

impl AdamOptimizer {
    /// Creates an Adam optimizer with the given learning rate and the conventional
    /// defaults `beta1 = 0.9`, `beta2 = 0.999`, `epsilon = 1e-8`.
    pub fn new(learning_rate: f32) -> Self {
        AdamOptimizer {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step_count: 0,
            first_moment: HashMap::new(),
            second_moment: HashMap::new(),
        }
    }

    /// Overrides the moment-decay coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Returns the configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Applies one Adam update to every trainable constant with a gradient.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a parameter's gradient has a mismatched shape.
    pub fn step(&mut self, graph: &mut Graph, grads: &Gradients) -> Result<(), GraphError> {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for id in graph.trainable_nodes() {
            let Some(grad) = grads.get(id) else { continue };
            if grad.has_non_finite() {
                continue;
            }
            let node = graph.node_mut(id)?;
            let value = node
                .value
                .as_ref()
                .ok_or(GraphError::MissingConstValue(id))?;
            let m = self
                .first_moment
                .entry(id)
                .or_insert_with(|| Tensor::zeros(value.dims().to_vec()));
            *m = m.scale(self.beta1).add(&grad.scale(1.0 - self.beta1))?;
            let v = self
                .second_moment
                .entry(id)
                .or_insert_with(|| Tensor::zeros(value.dims().to_vec()));
            *v = v
                .scale(self.beta2)
                .add(&grad.mul(grad)?.scale(1.0 - self.beta2))?;
            let m_hat = m.scale(1.0 / bias1);
            let v_hat = v.scale(1.0 / bias2);
            let update = m_hat.zip_map(&v_hat, |mi, vi| mi / (vi.sqrt() + self.epsilon))?;
            node.value = Some(value.sub(&update.scale(self.learning_rate))?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::exec::{Executor, NoopInterceptor};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn gradient_of_linear_layer_matches_closed_form() {
        // y = x W; loss = sum(y). dL/dW = x^T 1, dL/dx = 1 W^T.
        let mut g = Graph::new();
        let x = g.add_input("x");
        let w = g.add_const(
            "w",
            Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap(),
            true,
        );
        let y = g.add_node("y", Op::MatMul, vec![x, w]);
        let exec = Executor::new(&g);
        let xin = Tensor::from_vec(vec![1, 2], vec![5.0, 7.0]).unwrap();
        let values = exec.run(&[("x", xin)], &mut NoopInterceptor).unwrap();
        let seed = Tensor::ones(vec![1, 2]);
        let grads = backward(&g, &values, y, &seed).unwrap();
        assert_eq!(grads.get(w).unwrap().data(), &[5.0, 5.0, 7.0, 7.0]);
        assert_eq!(grads.get(x).unwrap().data(), &[3.0, 7.0]);
    }

    #[test]
    fn gradients_accumulate_across_multiple_consumers() {
        // y = x + x (through two paths): dL/dx must be 2.
        let mut g = Graph::new();
        let x = g.add_input("x");
        let id1 = g.add_node("a", Op::Identity, vec![x]);
        let id2 = g.add_node("b", Op::Identity, vec![x]);
        let sum = g.add_node("sum", Op::Add, vec![id1, id2]);
        let exec = Executor::new(&g);
        let values = exec
            .run(&[("x", Tensor::ones(vec![1, 3]))], &mut NoopInterceptor)
            .unwrap();
        let grads = backward(&g, &values, sum, &Tensor::ones(vec![1, 3])).unwrap();
        assert_eq!(grads.get(x).unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn softmax_cross_entropy_gradient_is_probs_minus_onehot() {
        let logits = Tensor::from_vec(vec![1, 3], vec![2.0, 1.0, 0.1]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss > 0.0);
        // Gradient for the true class must be negative, others positive, summing to ~0.
        assert!(grad.data()[0] < 0.0);
        assert!(grad.data()[1] > 0.0 && grad.data()[2] > 0.0);
        assert!(grad.sum().abs() < 1e-6);
        assert!(softmax_cross_entropy(&logits, &[5]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 1]).is_err());
    }

    #[test]
    fn mse_loss_and_gradient() {
        let pred = Tensor::from_vec(vec![2, 1], vec![1.0, 3.0]).unwrap();
        let target = Tensor::from_vec(vec![2, 1], vec![0.0, 0.0]).unwrap();
        let (loss, grad) = mse_loss(&pred, &target).unwrap();
        assert!((loss - 5.0).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 3.0]);
    }

    #[test]
    fn sgd_reduces_loss_on_a_small_regression_problem() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 2, 8, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 8, 1, &mut rng);
        let mut graph = b.into_graph();

        // Learn y = x0 + x1 on a fixed batch.
        let inputs =
            Tensor::from_vec(vec![4, 2], vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        let targets = Tensor::from_vec(vec![4, 1], vec![0.0, 1.0, 1.0, 2.0]).unwrap();

        let mut opt = SgdOptimizer::new(0.05, 0.9, 0.0);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..200 {
            let exec = Executor::new(&graph);
            let values = exec
                .run(&[("x", inputs.clone())], &mut NoopInterceptor)
                .unwrap();
            let pred = values.get(y).unwrap();
            let (loss, grad) = mse_loss(pred, &targets).unwrap();
            first_loss.get_or_insert(loss);
            last_loss = loss;
            let grads = backward(&graph, &values, y, &grad).unwrap();
            opt.step(&mut graph, &grads).unwrap();
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.05,
            "training should reduce the loss substantially: {} -> {last_loss}",
            first_loss.unwrap()
        );
    }

    #[test]
    fn adam_reduces_loss_on_a_small_regression_problem() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 2, 8, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 8, 1, &mut rng);
        let mut graph = b.into_graph();
        let inputs =
            Tensor::from_vec(vec![4, 2], vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        let targets = Tensor::from_vec(vec![4, 1], vec![0.0, 1.0, 1.0, 2.0]).unwrap();
        let mut opt = AdamOptimizer::new(0.02).with_betas(0.9, 0.999);
        assert!((opt.learning_rate() - 0.02).abs() < 1e-9);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let exec = Executor::new(&graph);
            let values = exec
                .run(&[("x", inputs.clone())], &mut NoopInterceptor)
                .unwrap();
            let (loss, grad) = mse_loss(values.get(y).unwrap(), &targets).unwrap();
            first.get_or_insert(loss);
            last = loss;
            let grads = backward(&graph, &values, y, &grad).unwrap();
            opt.step(&mut graph, &grads).unwrap();
        }
        assert!(
            last < first.unwrap() * 0.1,
            "Adam should fit the toy problem: {} -> {last}",
            first.unwrap()
        );
    }

    #[test]
    fn adam_skips_non_finite_gradients() {
        let mut g = Graph::new();
        let _x = g.add_input("x");
        let w = g.add_const("w", Tensor::from_vec(vec![1], vec![2.0]).unwrap(), true);
        let mut grads = Gradients::default();
        grads
            .accumulate(w, Tensor::from_vec(vec![1], vec![f32::INFINITY]).unwrap())
            .unwrap();
        let mut opt = AdamOptimizer::new(0.1);
        opt.step(&mut g, &grads).unwrap();
        assert_eq!(g.node(w).unwrap().value.as_ref().unwrap().data()[0], 2.0);
    }

    #[test]
    fn gradient_clipping_bounds_the_update_and_skips_non_finite_gradients() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let w = g.add_const("w", Tensor::from_vec(vec![1, 1], vec![1.0]).unwrap(), true);
        let y = g.add_node("y", Op::MatMul, vec![x, w]);
        let exec = Executor::new(&g);
        let values = exec
            .run(
                &[("x", Tensor::from_vec(vec![1, 1], vec![1000.0]).unwrap())],
                &mut NoopInterceptor,
            )
            .unwrap();
        // Huge seed gradient -> huge parameter gradient; clipping must bound the step.
        let grads = backward(
            &g,
            &values,
            y,
            &Tensor::from_vec(vec![1, 1], vec![1000.0]).unwrap(),
        )
        .unwrap();
        let mut clipped = SgdOptimizer::new(1.0, 0.0, 0.0).with_clip_norm(1.0);
        let mut graph_clipped = g.clone();
        clipped.step(&mut graph_clipped, &grads).unwrap();
        let updated = graph_clipped
            .node(w)
            .unwrap()
            .value
            .as_ref()
            .unwrap()
            .data()[0];
        assert!(
            (updated - 0.0).abs() < 1e-3,
            "clipped update should move by about the clip norm, got {updated}"
        );

        // A NaN gradient must not touch the weights when clipping is enabled.
        let mut nan_grads = Gradients::default();
        nan_grads
            .accumulate(w, Tensor::from_vec(vec![1, 1], vec![f32::NAN]).unwrap())
            .unwrap();
        let mut graph_nan = g.clone();
        let mut opt = SgdOptimizer::new(0.1, 0.0, 0.0).with_clip_norm(1.0);
        opt.step(&mut graph_nan, &nan_grads).unwrap();
        assert_eq!(
            graph_nan.node(w).unwrap().value.as_ref().unwrap().data()[0],
            1.0
        );
    }

    #[test]
    fn backward_through_clamp_masks_out_of_range() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c = g.add_node("clamp", Op::Clamp { lo: 0.0, hi: 1.0 }, vec![x]);
        let exec = Executor::new(&g);
        let values = exec
            .run(
                &[(
                    "x",
                    Tensor::from_vec(vec![1, 3], vec![-1.0, 0.5, 2.0]).unwrap(),
                )],
                &mut NoopInterceptor,
            )
            .unwrap();
        let grads = backward(&g, &values, c, &Tensor::ones(vec![1, 3])).unwrap();
        assert_eq!(grads.get(x).unwrap().data(), &[0.0, 1.0, 0.0]);
    }
}
