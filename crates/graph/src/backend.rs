//! Pluggable execution backends: the kernel-dispatch seam behind
//! [`ExecPlan`](crate::plan::ExecPlan).
//!
//! An [`ExecPlan`](crate::plan::ExecPlan) owns *what* to run (the topological order, the
//! buffer arena contract, the interception points); an [`ExecBackend`] owns *how* each
//! node computes. [`Graph::compile`](crate::graph::Graph::compile) plans onto the
//! [`ReferenceBackend`] — plain `f32` dispatch through
//! [`eval_node_into`], the workspace's single semantic
//! reference — and [`Graph::compile_with`](crate::graph::Graph::compile_with) plans onto
//! any other backend. Every alternative backend is pinned against the reference by parity
//! tests (`tests/backend_parity.rs`), the discipline `tests/pipeline_parity.rs`
//! established for the plan itself.
//!
//! The first real alternative is [`FixedBackend`]: genuine Q16/Q32 fixed-point inference.
//! Every activation is stored as its raw integer word
//! ([`QTensor`]), linear operators (convolution, matmul, bias,
//! residual add, pooling) run saturating integer arithmetic with a wide accumulator and a
//! single rescale per dot product, and transcendental activations (tanh, sigmoid, atan,
//! ELU, softmax) evaluate through the dequantize → `f32` → requantize bridge — the
//! software stand-in for the lookup tables a fixed-point datapath would use. Alongside
//! the words the [`Values`] store serves a **lazily** dequantized `f32` mirror: a node's
//! words decode on the first [`Values::get`] of that pass (and never, for nodes nobody
//! reads), so judges, recorders and report code read every backend through the same
//! accessors without every pass paying a full decode of every activation.
//!
//! Backend selection travels through configurations as a [`BackendKind`]; the
//! `RANGER_BACKEND` environment variable sets the workspace-wide default (mirroring
//! `RANGER_WORKERS`), which is how CI sweeps entire test suites through the fixed-point
//! path.

use crate::error::GraphError;
use crate::exec::{arity_err, eval_node_into, input, Interceptor, TileRows, Values};
use crate::graph::{Node, NodeId};
use crate::op::{Op, RestorePolicy};
use crate::ops::activation::softmax_layout;
use crate::ops::conv::conv2d_geometry;
use crate::ops::linear::bias_layout;
use crate::ops::pool::{global_pool_layout, pool_layout};
use crate::ops::shape_ops::concat_layout;
use ranger_tensor::qtensor::{q_conv2d_into, ConvGeometry};
use ranger_tensor::{FixedSpec, QTensor, Tensor};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a compiled plan evaluates one node.
///
/// A backend is stateless and shared (`Send + Sync`): per-run state lives in the
/// [`Values`] store each caller owns, so one plan can drive any number of worker threads.
/// Implementations must uphold the arena contract — take the node's recycled buffer(s)
/// from `values`, write the output, store it back — and must call the interceptor exactly
/// once per injectable node, after the output is computed.
pub trait ExecBackend: fmt::Debug + Send + Sync {
    /// Short stable name used in reports and error messages.
    fn name(&self) -> &'static str;

    /// The fixed-point format this backend computes in, or `None` for native `f32`.
    fn spec(&self) -> Option<FixedSpec> {
        None
    }

    /// Evaluates `node` into `values`, calling `interceptor` if the node is injectable.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a feed is missing or the node's operands are invalid.
    fn eval_node(
        &self,
        node: &Node,
        values: &mut Values,
        feeds: &[(&str, Tensor)],
        interceptor: &mut dyn Interceptor,
    ) -> Result<(), GraphError>;

    /// Evaluates `node` on one row group of a tiled pass
    /// ([`ExecPlan::run_tiled_into`](crate::plan::ExecPlan::run_tiled_into)): inputs are
    /// read through the tile overlay (each carrying input holds only the group's rows),
    /// the output tile is stored through [`Values::set_tile`], and the interceptor fires
    /// through the tile hooks so element-addressed mutations can translate `rows`.
    ///
    /// The default is the reference semantics — [`eval_node_into`] on the tile, exactly
    /// as [`ReferenceBackend::eval_node`] evaluates the whole batch. Backends that
    /// special-case kernels in `eval_node` must override this with the same routing.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a feed is missing or the node's operands are invalid.
    fn eval_node_tile(
        &self,
        node: &Node,
        values: &mut Values,
        feeds: &[(&str, Tensor)],
        interceptor: &mut dyn Interceptor,
        rows: TileRows,
    ) -> Result<(), GraphError> {
        let mut output = values.take_tile_recycled(node.id);
        eval_node_into(node, values, feeds, &mut output)?;
        if node.op.is_injectable() {
            interceptor.after_op_tile(node, &mut output, rows);
        }
        values.set_tile(node.id, output);
        Ok(())
    }
}

/// The `f32` reference backend: kernel dispatch through
/// [`eval_node_into`], bit-for-bit the semantics every other
/// backend is measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceBackend;

impl ExecBackend for ReferenceBackend {
    fn name(&self) -> &'static str {
        "f32"
    }

    fn eval_node(
        &self,
        node: &Node,
        values: &mut Values,
        feeds: &[(&str, Tensor)],
        interceptor: &mut dyn Interceptor,
    ) -> Result<(), GraphError> {
        let mut output = values.take_recycled(node.id);
        eval_node_into(node, values, feeds, &mut output)?;
        if node.op.is_injectable() {
            interceptor.after_op(node, &mut output);
        }
        values.set(node.id, output);
        Ok(())
    }
}

/// The runtime-dispatched SIMD `f32` backend: the reference semantics, computed with
/// the widest vector unit the host offers.
///
/// The three hot kernels — 2-D convolution, matmul and the three-pass stable softmax —
/// evaluate through `ranger-simd`'s portable kernel bodies, dispatched once per process
/// to AVX-512, AVX2+FMA, NEON or the scalar fallback
/// ([`ranger_simd::active_tier`]; `RANGER_SIMD_FORCE` pins a tier for testing). Every
/// other operator delegates to [`eval_node_into`], the same dispatch the
/// [`ReferenceBackend`] uses.
///
/// **This backend is bit-for-bit equal to the reference**, not merely close: the ported
/// kernels vectorize across independent output lanes with separate multiply and add
/// (never FMA, never a re-associated reduction), so every output element sees exactly
/// the scalar kernel's partial products in the scalar kernel's order. SDC counts from
/// campaigns on this backend are therefore pinned *equal* to f32-reference counts —
/// see docs/NUMERICS.md ("SIMD backend") and `tests/backend_differential.rs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdBackend;

impl SimdBackend {
    /// Computes `node` into `out`, routing the ported kernels through `ranger-simd`.
    fn eval_into(
        &self,
        node: &Node,
        values: &Values,
        feeds: &[(&str, Tensor)],
        out: &mut Tensor,
    ) -> Result<(), GraphError> {
        match &node.op {
            Op::Conv2d { stride, padding } => {
                if node.inputs.len() != 2 {
                    return Err(arity_err(node, 2));
                }
                let x = input(node, values, 0)?;
                let w = input(node, values, 1)?;
                // The shared validator guarantees this backend accepts exactly the
                // graphs (and reports exactly the errors) the f32 kernel does.
                let g = conv2d_geometry(node.id, x.dims(), w.dims(), *stride, *padding)?;
                let shape = ranger_simd::Conv2dShape {
                    batch: g.batch,
                    cin: g.cin,
                    height: g.height,
                    width: g.width,
                    cout: g.cout,
                    kh: g.kh,
                    kw: g.kw,
                    stride: *stride,
                    pad_h: g.pad_h,
                    pad_w: g.pad_w,
                    out_h: g.out_h,
                    out_w: g.out_w,
                };
                out.reset_fill(&[g.batch, g.cout, g.out_h, g.out_w], 0.0);
                ranger_simd::conv2d(x.data(), w.data(), &shape, out.data_mut());
                Ok(())
            }
            Op::MatMul if node.inputs.len() == 2 => {
                let a = input(node, values, 0)?;
                let b = input(node, values, 1)?;
                let (ls, rs) = (a.dims(), b.dims());
                if ls.len() != 2 || rs.len() != 2 || ls[1] != rs[0] {
                    // Invalid operands: delegate so the error is the reference's, word
                    // for word.
                    return eval_node_into(node, values, feeds, out);
                }
                let (m, k, n) = (ls[0], ls[1], rs[1]);
                out.reset_fill(&[m, n], 0.0);
                ranger_simd::matmul(a.data(), b.data(), m, k, n, out.data_mut());
                Ok(())
            }
            Op::Softmax if node.inputs.len() == 1 => {
                let x = input(node, values, 0)?;
                let dims = x.dims().to_vec();
                let (rows, last) = softmax_layout(node.id, &dims, x.len())?;
                out.reset_fill(&dims, 0.0);
                ranger_simd::softmax(x.data(), rows, last, out.data_mut());
                Ok(())
            }
            // Everything else — elementwise ops, pooling, shape ops, feeds — is the
            // reference dispatch itself, so it cannot diverge from it.
            _ => eval_node_into(node, values, feeds, out),
        }
    }
}

impl ExecBackend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn eval_node(
        &self,
        node: &Node,
        values: &mut Values,
        feeds: &[(&str, Tensor)],
        interceptor: &mut dyn Interceptor,
    ) -> Result<(), GraphError> {
        let mut output = values.take_recycled(node.id);
        self.eval_into(node, values, feeds, &mut output)?;
        if node.op.is_injectable() {
            interceptor.after_op(node, &mut output);
        }
        values.set(node.id, output);
        Ok(())
    }

    fn eval_node_tile(
        &self,
        node: &Node,
        values: &mut Values,
        feeds: &[(&str, Tensor)],
        interceptor: &mut dyn Interceptor,
        rows: TileRows,
    ) -> Result<(), GraphError> {
        let mut output = values.take_tile_recycled(node.id);
        self.eval_into(node, values, feeds, &mut output)?;
        if node.op.is_injectable() {
            interceptor.after_op_tile(node, &mut output, rows);
        }
        values.set_tile(node.id, output);
        Ok(())
    }
}

/// Genuine fixed-point inference in a two's-complement Q format.
///
/// See the [module docs](self) for the kernel semantics. The numeric contract (rounding,
/// saturation, wide accumulation) is defined — and test-pinned — by the raw-word helpers
/// on [`FixedSpec`].
#[derive(Debug, Clone, Copy)]
pub struct FixedBackend {
    spec: FixedSpec,
}

impl FixedBackend {
    /// Creates a backend computing in the given format.
    pub fn new(spec: FixedSpec) -> Self {
        FixedBackend { spec }
    }
}

fn shape_err(node: NodeId, message: impl Into<String>) -> GraphError {
    GraphError::ShapeError {
        node,
        message: message.into(),
    }
}

fn qinput<'v>(node: &Node, values: &'v Values, idx: usize) -> Result<&'v QTensor, GraphError> {
    let id = *node
        .inputs
        .get(idx)
        .ok_or_else(|| arity_err(node, idx + 1))?;
    values.get_q(id)
}

impl FixedBackend {
    /// Computes `node`'s raw words into `qout` from the word values of its inputs.
    fn eval_q(
        &self,
        node: &Node,
        values: &Values,
        feeds: &[(&str, Tensor)],
        qout: &mut QTensor,
    ) -> Result<(), GraphError> {
        let spec = self.spec;
        match &node.op {
            Op::Input => {
                let fed = feeds
                    .iter()
                    .find(|(name, _)| *name == node.name)
                    .map(|(_, t)| t)
                    .or(node.value.as_ref())
                    .ok_or_else(|| GraphError::MissingFeed(node.name.clone()))?;
                qout.quantize_from(fed);
                Ok(())
            }
            Op::Const => {
                let value = node
                    .value
                    .as_ref()
                    .ok_or(GraphError::MissingConstValue(node.id))?;
                qout.quantize_from(value);
                Ok(())
            }
            Op::Conv2d { stride, padding } => {
                if node.inputs.len() != 2 {
                    return Err(arity_err(node, 2));
                }
                let x = qinput(node, values, 0)?;
                let w = qinput(node, values, 1)?;
                // The shared validator guarantees this backend accepts exactly the
                // graphs (and reports exactly the errors) the f32 kernel does.
                let g = conv2d_geometry(node.id, x.dims(), w.dims(), *stride, *padding)?;
                let geometry = ConvGeometry {
                    batch: g.batch,
                    cin: g.cin,
                    height: g.height,
                    width: g.width,
                    cout: g.cout,
                    kh: g.kh,
                    kw: g.kw,
                    stride: *stride,
                    pad_h: g.pad_h,
                    pad_w: g.pad_w,
                    out_h: g.out_h,
                    out_w: g.out_w,
                };
                q_conv2d_into(x, w, &geometry, qout).map_err(|e| shape_err(node.id, e.to_string()))
            }
            Op::MatMul => {
                if node.inputs.len() != 2 {
                    return Err(arity_err(node, 2));
                }
                qinput(node, values, 0)?
                    .matmul_into(qinput(node, values, 1)?, qout)
                    .map_err(|e| shape_err(node.id, e.to_string()))
            }
            Op::BiasAdd => {
                if node.inputs.len() != 2 {
                    return Err(arity_err(node, 2));
                }
                let x = qinput(node, values, 0)?;
                let bias = qinput(node, values, 1)?;
                let b = bias.words();
                let broadcast = bias_layout(node.id, x.dims(), b.len())?;
                qout.reset_from_words(spec, x.dims(), x.words())
                    .map_err(|e| shape_err(node.id, e.to_string()))?;
                let odat = qout.words_mut();
                if broadcast > 0 {
                    for (chunk, &bias_word) in odat.chunks_mut(broadcast).zip(b.iter().cycle()) {
                        for word in chunk {
                            *word = spec.saturate_raw(*word as i128 + bias_word as i128);
                        }
                    }
                }
                Ok(())
            }
            Op::Relu => {
                qinput(node, values, 0)?.relu_into(qout);
                Ok(())
            }
            Op::Tanh => {
                qinput(node, values, 0)?.map_f32_into(qout, f32::tanh);
                Ok(())
            }
            Op::Sigmoid => {
                qinput(node, values, 0)?.map_f32_into(qout, |v| 1.0 / (1.0 + (-v).exp()));
                Ok(())
            }
            Op::Atan => {
                qinput(node, values, 0)?.map_f32_into(qout, f32::atan);
                Ok(())
            }
            Op::Elu => {
                qinput(node, values, 0)?.map_f32_into(qout, |v| {
                    if v > 0.0 {
                        v
                    } else {
                        v.exp() - 1.0
                    }
                });
                Ok(())
            }
            Op::Softmax => {
                let x = qinput(node, values, 0)?;
                let dims = x.dims().to_vec();
                let (rows, last) = softmax_layout(node.id, &dims, x.len())?;
                qout.reset_fill(spec, &dims, 0);
                let mut row_f32 = vec![0.0f32; last];
                let xdat = x.words();
                let odat = qout.words_mut();
                for r in 0..rows {
                    for (slot, &w) in row_f32.iter_mut().zip(&xdat[r * last..(r + 1) * last]) {
                        *slot = spec.raw_decode(w);
                    }
                    let max = row_f32.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut denom = 0.0f32;
                    for v in &mut row_f32 {
                        *v = (*v - max).exp();
                        denom += *v;
                    }
                    for (o, &e) in odat[r * last..(r + 1) * last].iter_mut().zip(&row_f32) {
                        *o = spec.raw_encode(e / denom);
                    }
                }
                Ok(())
            }
            Op::MaxPool { kernel, stride } => self.pool(node, values, *kernel, *stride, true, qout),
            Op::AvgPool { kernel, stride } => {
                self.pool(node, values, *kernel, *stride, false, qout)
            }
            Op::GlobalAvgPool => {
                let x = qinput(node, values, 0)?;
                let (n, c, h, w) = global_pool_layout(node.id, x.dims())?;
                let xdat = x.words();
                qout.reset_fill(spec, &[n, c], 0);
                let odat = qout.words_mut();
                for b in 0..n {
                    for ch in 0..c {
                        let base = (b * c + ch) * h * w;
                        let sum: i128 = xdat[base..base + h * w].iter().map(|&v| v as i128).sum();
                        odat[b * c + ch] = spec.div_round(sum, (h * w) as i128);
                    }
                }
                Ok(())
            }
            Op::Flatten => {
                let x = qinput(node, values, 0)?;
                let d = x.dims();
                if d.is_empty() {
                    return Err(shape_err(node.id, "flatten requires at least rank-1 input"));
                }
                let features = d[1..].iter().product::<usize>().max(1);
                qout.reset_rows_from_words(spec, d[0], &[features], x.words())
                    .map_err(|e| shape_err(node.id, e.to_string()))
            }
            Op::Reshape { dims } => {
                let x = qinput(node, values, 0)?;
                let d = x.dims();
                if d.is_empty() {
                    return Err(shape_err(node.id, "reshape requires at least rank-1 input"));
                }
                qout.reset_rows_from_words(spec, d[0], dims, x.words())
                    .map_err(|_| {
                        shape_err(
                            node.id,
                            format!(
                                "cannot reshape {:?} into a batch of {} x {:?}",
                                d, d[0], dims
                            ),
                        )
                    })
            }
            Op::Concat => {
                if node.inputs.is_empty() {
                    return Err(arity_err(node, 1));
                }
                let mut inputs = Vec::with_capacity(node.inputs.len());
                for i in 0..node.inputs.len() {
                    inputs.push(qinput(node, values, i)?);
                }
                let shapes: Vec<&[usize]> = inputs.iter().map(|t| t.dims()).collect();
                let layout = concat_layout(node.id, &shapes)?;
                let (n, total_c, inner) = (layout.batch, layout.total_c, layout.inner);
                qout.reset_fill(spec, layout.dims(), 0);
                let odat = qout.words_mut();
                for b in 0..n {
                    let mut c_offset = 0usize;
                    for t in &inputs {
                        let c = t.dims()[1];
                        let src = &t.words()[b * c * inner..(b + 1) * c * inner];
                        let dst_base = (b * total_c + c_offset) * inner;
                        odat[dst_base..dst_base + c * inner].copy_from_slice(src);
                        c_offset += c;
                    }
                }
                Ok(())
            }
            Op::Add => {
                if node.inputs.len() != 2 {
                    return Err(arity_err(node, 2));
                }
                qinput(node, values, 0)?
                    .saturating_add_into(qinput(node, values, 1)?, qout)
                    .map_err(|e| shape_err(node.id, e.to_string()))
            }
            Op::Mul => {
                if node.inputs.len() != 2 {
                    return Err(arity_err(node, 2));
                }
                qinput(node, values, 0)?
                    .saturating_mul_into(qinput(node, values, 1)?, qout)
                    .map_err(|e| shape_err(node.id, e.to_string()))
            }
            Op::ScalarMul { factor } => {
                qinput(node, values, 0)?.scalar_mul_into(*factor, qout);
                Ok(())
            }
            Op::Identity => {
                let x = qinput(node, values, 0)?;
                qout.reset_from_words(spec, x.dims(), x.words())
                    .expect("shape and words of an existing tensor agree");
                Ok(())
            }
            Op::Clamp { lo, hi } => {
                qinput(node, values, 0)?.clamp_into(*lo, *hi, qout);
                Ok(())
            }
            Op::RangeRestore { lo, hi, policy } => {
                let x = qinput(node, values, 0)?;
                let (lo, hi) = (*lo, *hi);
                let lo_raw = spec.raw_encode(lo);
                let hi_raw = spec.raw_encode(hi);
                qout.reset_from_words(spec, x.dims(), x.words())
                    .expect("shape and words of an existing tensor agree");
                for word in qout.words_mut() {
                    if *word >= lo_raw && *word <= hi_raw {
                        continue;
                    }
                    *word = match policy {
                        RestorePolicy::Saturate => (*word).clamp(lo_raw, hi_raw),
                        RestorePolicy::Zero => 0,
                        RestorePolicy::Random => {
                            // The same deterministic hash the f32 kernel applies, taken
                            // over the dequantized value's bit pattern.
                            let v = spec.raw_decode(*word);
                            let h = v.to_bits().wrapping_mul(0x9E37_79B9) >> 8;
                            let unit = (h & 0xFFFF) as f32 / 65535.0;
                            spec.raw_encode(lo + unit * (hi - lo))
                        }
                    };
                }
                Ok(())
            }
        }
    }

    /// Shared max/average pooling on words.
    fn pool(
        &self,
        node: &Node,
        values: &Values,
        kernel: usize,
        stride: usize,
        is_max: bool,
        qout: &mut QTensor,
    ) -> Result<(), GraphError> {
        let spec = self.spec;
        let x = qinput(node, values, 0)?;
        let layout = pool_layout(node.id, x.dims(), kernel, stride)?;
        let (n, c, h, w) = (layout.batch, layout.channels, layout.height, layout.width);
        let (ho, wo) = (layout.out_h, layout.out_w);
        let xdat = x.words();
        qout.reset_fill(spec, &[n, c, ho, wo], 0);
        let odat = qout.words_mut();
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut max = i64::MIN;
                        let mut sum = 0i128;
                        for ky in 0..kernel {
                            for kx in 0..kernel {
                                let v = xdat
                                    [((b * c + ch) * h + oy * stride + ky) * w + ox * stride + kx];
                                if is_max {
                                    max = max.max(v);
                                } else {
                                    sum += v as i128;
                                }
                            }
                        }
                        odat[((b * c + ch) * ho + oy) * wo + ox] = if is_max {
                            max
                        } else {
                            spec.div_round(sum, (kernel * kernel) as i128)
                        };
                    }
                }
            }
        }
        Ok(())
    }
}

impl ExecBackend for FixedBackend {
    fn name(&self) -> &'static str {
        if self.spec.total_bits() == 16 {
            "fixed16"
        } else if self.spec.total_bits() == 32 {
            "fixed32"
        } else {
            "fixed"
        }
    }

    fn spec(&self) -> Option<FixedSpec> {
        Some(self.spec)
    }

    fn eval_node(
        &self,
        node: &Node,
        values: &mut Values,
        feeds: &[(&str, Tensor)],
        interceptor: &mut dyn Interceptor,
    ) -> Result<(), GraphError> {
        // Constants never change between passes (and are never intercepted), so the
        // arena caches their quantization: a hit reuses last pass's words instead of
        // re-encoding the whole weight tensor.
        let mut qout = match (&node.op, node.value.as_ref()) {
            (Op::Const, Some(value)) => {
                let (mut qout, cached) = values.take_recycled_q_const(node.id, self.spec, value);
                if !cached {
                    qout.quantize_from(value);
                    values.mark_q_const(node.id, self.spec, value);
                }
                qout
            }
            _ => {
                let mut qout = values.take_recycled_q(node.id, self.spec);
                self.eval_q(node, values, feeds, &mut qout)?;
                qout
            }
        };
        if node.op.is_injectable() {
            interceptor.after_op_words(node, &mut qout);
        }
        // Storing the words arms the *lazy* dequantized f32 mirror: `Values::get` decodes
        // a node's words at most once per pass, on first read. Campaigns only read the
        // judged output node, so elementwise-heavy passes stop paying a full decode
        // (an extra write+read of every activation) per node. The store happens after
        // interception, so word flips and bridged generic mutations alike are always
        // visible to the next read.
        values.set_q(node.id, qout);
        Ok(())
    }

    fn eval_node_tile(
        &self,
        node: &Node,
        values: &mut Values,
        feeds: &[(&str, Tensor)],
        interceptor: &mut dyn Interceptor,
        rows: TileRows,
    ) -> Result<(), GraphError> {
        // Constants and inputs never tile (they don't carry the batch / they feed whole),
        // so the const-quantization cache of `eval_node` has no tile counterpart.
        let mut qout = values.take_tile_recycled_q(node.id, self.spec);
        self.eval_q(node, values, feeds, &mut qout)?;
        if node.op.is_injectable() {
            interceptor.after_op_words_tile(node, &mut qout, rows);
        }
        values.set_tile_q(node.id, qout);
        Ok(())
    }
}

static REFERENCE: ReferenceBackend = ReferenceBackend;
static SIMD: SimdBackend = SimdBackend;
static FIXED16: FixedBackend = FixedBackend {
    spec: FixedSpec::q16(),
};
static FIXED32: FixedBackend = FixedBackend {
    spec: FixedSpec::q32(),
};

/// A selectable execution backend, as carried by campaign and pipeline configurations
/// (CLI `--backend`, `CampaignConfig::backend`, `Pipeline::backend`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BackendKind {
    /// The `f32` reference path ([`ReferenceBackend`]).
    #[default]
    F32,
    /// Genuine Q14.2 (16-bit) fixed-point inference — the paper's RQ4 datatype.
    Fixed16,
    /// Genuine Q24.8 (32-bit) fixed-point inference — the paper's RQ1–RQ3 datatype.
    Fixed32,
    /// Runtime-dispatched SIMD `f32` inference ([`SimdBackend`]) — reference semantics,
    /// bit-for-bit, on the widest vector unit the host offers.
    Simd,
}

impl BackendKind {
    /// The shared backend instance this kind selects.
    pub fn backend(&self) -> &'static dyn ExecBackend {
        match self {
            BackendKind::F32 => &REFERENCE,
            BackendKind::Fixed16 => &FIXED16,
            BackendKind::Fixed32 => &FIXED32,
            BackendKind::Simd => &SIMD,
        }
    }

    /// The fixed-point format this kind computes in, or `None` for `f32`.
    pub fn spec(&self) -> Option<FixedSpec> {
        self.backend().spec()
    }

    /// Every selectable backend, in documentation order.
    pub fn all() -> [BackendKind; 4] {
        [
            BackendKind::F32,
            BackendKind::Fixed16,
            BackendKind::Fixed32,
            BackendKind::Simd,
        ]
    }

    /// The known backend names, comma-separated — the list every "unknown backend"
    /// error cites, built from [`BackendKind::all`] so it cannot go stale.
    pub fn known_names() -> String {
        Self::all()
            .iter()
            .map(|k| k.backend().name())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.backend().name())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f32" | "float32" | "float" => Ok(BackendKind::F32),
            "fixed16" | "q16" => Ok(BackendKind::Fixed16),
            "fixed32" | "q32" => Ok(BackendKind::Fixed32),
            "simd" => Ok(BackendKind::Simd),
            other => Err(format!(
                "unknown backend '{other}' (known backends: {})",
                BackendKind::known_names()
            )),
        }
    }
}

/// The default backend for campaign configurations: the `RANGER_BACKEND` environment
/// variable if set (an empty value counts as unset), otherwise [`BackendKind::F32`].
///
/// Reading the environment here — once, at configuration-default time, never inside the
/// executors — lets a CI job sweep an entire test suite through an alternative path
/// (`RANGER_BACKEND=fixed16 cargo test`, `RANGER_BACKEND=simd cargo test`) without every
/// call site growing a knob, mirroring how `RANGER_WORKERS` sweeps the thread pool.
///
/// # Errors
///
/// Returns an error listing the known backends if `RANGER_BACKEND` is set to a name
/// [`BackendKind`] does not recognise. A misspelled sweep must fail loudly: silently
/// falling back to `f32` would run — and report on — the wrong backend (the same
/// fail-fast rule `RANGER_BENCH_FILTER` follows).
pub fn try_default_backend() -> Result<BackendKind, String> {
    match std::env::var("RANGER_BACKEND") {
        Ok(value) if !value.is_empty() => value
            .parse()
            .map_err(|e| format!("invalid RANGER_BACKEND: {e}")),
        _ => Ok(BackendKind::F32),
    }
}

/// [`try_default_backend`], panicking on a misconfigured `RANGER_BACKEND`.
///
/// Infallible call sites (configuration `Default` impls) use this; surfaces with an
/// error channel (the CLI) use [`try_default_backend`] and report cleanly.
///
/// # Panics
///
/// Panics if `RANGER_BACKEND` is set to an unknown name.
pub fn default_backend() -> BackendKind {
    match try_default_backend() {
        Ok(kind) => kind,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::exec::NoopInterceptor;
    use rand::{rngs::StdRng, SeedableRng};

    fn toy() -> (crate::graph::Graph, NodeId) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 4, 6, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 6, 2, &mut rng);
        (b.into_graph(), y)
    }

    #[test]
    fn backend_kind_round_trips_names() {
        for kind in BackendKind::all() {
            let parsed: BackendKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!("q16".parse::<BackendKind>().unwrap(), BackendKind::Fixed16);
        assert_eq!("F32".parse::<BackendKind>().unwrap(), BackendKind::F32);
        assert!("mps".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::default(), BackendKind::F32);
    }

    #[test]
    fn backend_kind_exposes_specs() {
        assert_eq!(BackendKind::F32.spec(), None);
        assert_eq!(BackendKind::Fixed16.spec(), Some(FixedSpec::q16()));
        assert_eq!(BackendKind::Fixed32.spec(), Some(FixedSpec::q32()));
        // The SIMD backend computes native f32: no quantization spec, so campaigns
        // pair it with f32 fault models exactly like the reference.
        assert_eq!(BackendKind::Simd.spec(), None);
        assert_eq!(BackendKind::Fixed16.backend().name(), "fixed16");
        assert_eq!(BackendKind::F32.backend().name(), "f32");
        assert_eq!(BackendKind::Simd.backend().name(), "simd");
    }

    #[test]
    fn unknown_backend_error_lists_every_known_name() {
        let err = "warp".parse::<BackendKind>().unwrap_err();
        for name in ["f32", "fixed16", "fixed32", "simd"] {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
    }

    /// The `RANGER_BACKEND` audit (mirroring the `RANGER_BENCH_FILTER` fix): an unknown
    /// name must be rejected with the known backends, never silently fall back to f32.
    /// The graph test binary has no other reader of `RANGER_BACKEND`, so the temporary
    /// mutation cannot race another test; the sweep value (CI sets `fixed16` etc.) is
    /// restored on exit.
    #[test]
    fn misconfigured_ranger_backend_is_rejected_not_defaulted() {
        let original = std::env::var("RANGER_BACKEND").ok();
        std::env::set_var("RANGER_BACKEND", "warp");
        let err = try_default_backend().unwrap_err();
        assert!(err.contains("RANGER_BACKEND"), "{err}");
        assert!(err.contains("known backends"), "{err}");
        std::env::set_var("RANGER_BACKEND", "simd");
        assert_eq!(try_default_backend(), Ok(BackendKind::Simd));
        std::env::set_var("RANGER_BACKEND", "");
        assert_eq!(try_default_backend(), Ok(BackendKind::F32));
        std::env::remove_var("RANGER_BACKEND");
        assert_eq!(try_default_backend(), Ok(BackendKind::F32));
        if let Some(value) = original {
            std::env::set_var("RANGER_BACKEND", value);
        }
    }

    /// The SimdBackend contract in one place: ported kernels (conv2d, matmul, softmax)
    /// and delegated ops alike reproduce the reference bit-for-bit on a full forward
    /// pass.
    #[test]
    fn simd_backend_matches_reference_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let c = b.conv2d(x, 2, 3, 3, 1, crate::op::Padding::Same, &mut rng);
        let c = b.relu(c);
        let p = b.max_pool(c, 2, 2);
        let f = b.flatten(p);
        let h = b.dense(f, 3 * 3 * 3, 8, &mut rng);
        let h = b.tanh(h);
        let y = b.dense(h, 8, 4, &mut rng);
        let _probs = b.softmax(y);
        let graph = b.into_graph();

        let feed: Vec<f32> = (0..2 * 2 * 6 * 6)
            .map(|i| (i as f32 * 0.37).sin())
            .collect();
        let feeds = [("x", Tensor::from_vec(vec![2, 2, 6, 6], feed).unwrap())];
        let reference = graph
            .compile()
            .unwrap()
            .run(&feeds, &mut NoopInterceptor)
            .unwrap();
        let simd = graph
            .compile_with(BackendKind::Simd.backend())
            .unwrap()
            .run(&feeds, &mut NoopInterceptor)
            .unwrap();
        for node in graph.nodes() {
            let (r, s) = (reference.get(node.id).unwrap(), simd.get(node.id).unwrap());
            assert_eq!(r.dims(), s.dims());
            let (rb, sb): (Vec<u32>, Vec<u32>) = (
                r.data().iter().map(|v| v.to_bits()).collect(),
                s.data().iter().map(|v| v.to_bits()).collect(),
            );
            assert_eq!(rb, sb, "node {} ({:?}) diverged", node.name, node.op);
        }
    }

    #[test]
    fn simd_backend_reports_reference_errors_for_invalid_operands() {
        // Mismatched matmul operands: the SIMD backend must surface the reference
        // error, word for word.
        let build = |kind: BackendKind| {
            let mut g = crate::graph::Graph::new();
            let x = g.add_input("x");
            let y = g.add_node("prod", Op::MatMul, vec![x, x]);
            let plan = g.compile_with(kind.backend()).unwrap();
            plan.run_simple(&[("x", Tensor::ones(vec![2, 3]))], y)
                .unwrap_err()
        };
        assert_eq!(
            format!("{}", build(BackendKind::Simd)),
            format!("{}", build(BackendKind::F32))
        );
    }

    #[test]
    fn fixed_backend_quantizes_inputs_and_weights() {
        // x -> ScalarMul(2.0): the Q14.2 backend must quantize the fed input onto the
        // 0.25 grid before computing.
        let mut g = crate::graph::Graph::new();
        let x = g.add_input("x");
        let y = g.add_node("double", Op::ScalarMul { factor: 2.0 }, vec![x]);
        let plan = g.compile_with(BackendKind::Fixed16.backend()).unwrap();
        let out = plan
            .run_simple(
                &[("x", Tensor::from_vec(vec![1, 2], vec![0.3, 1.0]).unwrap())],
                y,
            )
            .unwrap();
        // 0.3 quantizes to 0.25; 2 * 0.25 = 0.5 exactly. 1.0 stays exact.
        assert_eq!(out.data(), &[0.5, 2.0]);
    }

    #[test]
    fn fixed_backend_stores_words_alongside_the_mirror() {
        let (graph, y) = toy();
        let plan = graph.compile_with(BackendKind::Fixed32.backend()).unwrap();
        let values = plan
            .run(&[("x", Tensor::ones(vec![1, 4]))], &mut NoopInterceptor)
            .unwrap();
        let mirror = values.get(y).unwrap();
        let words = values.get_q(y).unwrap();
        assert_eq!(words.spec(), FixedSpec::q32());
        assert_eq!(&words.dequantize(), mirror);
        // The reference backend stores no words.
        let ref_values = graph
            .compile()
            .unwrap()
            .run(&[("x", Tensor::ones(vec![1, 4]))], &mut NoopInterceptor)
            .unwrap();
        assert!(ref_values.get_q(y).is_err());
    }

    #[test]
    fn fixed_backend_saturates_instead_of_overflowing() {
        // 100 * 100 = 10000 exceeds nothing in Q24.8 but 8000 * 8000 saturates Q14.2.
        let mut g = crate::graph::Graph::new();
        let x = g.add_input("x");
        let y = g.add_node("square", Op::Mul, vec![x, x]);
        let feed = Tensor::filled(vec![1, 1], 8000.0);
        let plan16 = g.compile_with(BackendKind::Fixed16.backend()).unwrap();
        let out = plan16.run_simple(&[("x", feed)], y).unwrap();
        assert_eq!(out.data()[0] as f64, FixedSpec::q16().max_value());
    }

    /// The constant-quantization cache must never leak words across plans: two graphs
    /// whose same-id constant nodes hold different (same-shaped) values, driven through
    /// one shared arena, each see their own weights on every pass.
    #[test]
    fn const_cache_is_invalidated_across_plans_sharing_an_arena() {
        let build = |weight: f32| {
            let mut g = crate::graph::Graph::new();
            let x = g.add_input("x");
            let c = g.add_const("c", Tensor::filled(vec![1, 2], weight), true);
            let y = g.add_node("sum", Op::Add, vec![x, c]);
            (g, y)
        };
        let (ga, ya) = build(1.0);
        let (gb, yb) = build(5.0);
        let plan_a = ga.compile_with(BackendKind::Fixed16.backend()).unwrap();
        let plan_b = gb.compile_with(BackendKind::Fixed16.backend()).unwrap();
        let feeds = [("x", Tensor::filled(vec![1, 2], 0.25))];
        let mut values = plan_a.buffers();
        for _ in 0..2 {
            plan_a
                .run_into(&mut values, &feeds, &mut NoopInterceptor)
                .unwrap();
            assert_eq!(values.get(ya).unwrap().data(), &[1.25, 1.25]);
            plan_b
                .run_into(&mut values, &feeds, &mut NoopInterceptor)
                .unwrap();
            assert_eq!(values.get(yb).unwrap().data(), &[5.25, 5.25]);
        }
    }

    #[test]
    fn missing_feed_error_is_preserved_on_the_fixed_backend() {
        let (graph, y) = toy();
        let plan = graph.compile_with(BackendKind::Fixed16.backend()).unwrap();
        assert!(matches!(
            plan.run_simple(&[], y),
            Err(GraphError::MissingFeed(_))
        ));
    }

    /// The laziness contract: on a fixed-point backend no mirror is decoded until a node
    /// is read, and reading one node decodes only that node.
    #[test]
    fn mirror_decodes_lazily_and_only_for_read_nodes() {
        let (graph, y) = toy();
        let relu = graph
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Op::Relu))
            .unwrap()
            .id;
        let plan = graph.compile_with(BackendKind::Fixed16.backend()).unwrap();
        let values = plan
            .run(&[("x", Tensor::ones(vec![1, 4]))], &mut NoopInterceptor)
            .unwrap();
        assert!(
            !values.mirror_decoded(y) && !values.mirror_decoded(relu),
            "no node may decode before it is read"
        );
        values.get(y).unwrap();
        assert!(values.mirror_decoded(y), "the read node decodes");
        assert!(
            !values.mirror_decoded(relu),
            "reading one node must not decode the others"
        );
        // A second read serves the already-decoded mirror (same pass, same words).
        let first = values.get(y).unwrap().clone();
        assert_eq!(values.get(y).unwrap(), &first);
    }

    /// The invalidation contract: a mirror decoded in one pass is never served for a
    /// later pass's words — whether the node was read in the earlier pass or not.
    #[test]
    fn stale_mirrors_are_never_served_across_passes() {
        let (graph, y) = toy();
        let relu = graph
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Op::Relu))
            .unwrap()
            .id;
        let plan = graph.compile_with(BackendKind::Fixed16.backend()).unwrap();
        let mut values = plan.buffers();
        let feed = |v: f32| [("x", Tensor::filled(vec![1, 4], v))];
        plan.run_into(&mut values, &feed(1.0), &mut NoopInterceptor)
            .unwrap();
        // Decode y in pass 1; leave relu undecoded.
        let pass1_y = values.get(y).unwrap().clone();
        plan.run_into(&mut values, &feed(-2.0), &mut NoopInterceptor)
            .unwrap();
        // Fresh single-shot references for the second input.
        let fresh = plan.run(&feed(-2.0), &mut NoopInterceptor).unwrap();
        assert_ne!(
            values.get(y).unwrap(),
            &pass1_y,
            "pass 2 must not serve pass 1's mirror"
        );
        assert_eq!(values.get(y).unwrap(), fresh.get(y).unwrap());
        assert_eq!(
            values.get(relu).unwrap(),
            fresh.get(relu).unwrap(),
            "a node first read in pass 2 decodes pass 2's words"
        );
    }

    /// The mixed-interceptor regression (lazy-mirror audit): in one pass, one node is
    /// corrupted through the word-level hook and another through the generic
    /// (`after_op`) bridge. Both mutations must be visible through `Values::get`, and
    /// the mirror must agree with the stored words — the bridge's mutation cannot leave
    /// a pre-mutation decode behind.
    #[test]
    fn mixed_word_and_generic_interceptor_mutations_refresh_the_mirror() {
        struct Mixed {
            relu: NodeId,
            out: NodeId,
        }
        impl Interceptor for Mixed {
            fn after_op(&mut self, node: &Node, output: &mut Tensor) {
                // Reached through the default word bridge for the ReLU node only.
                if node.id == self.relu {
                    output.data_mut()[0] = 19.3; // off-grid: lands on 19.25 in Q14.2
                }
            }
            fn after_op_words(&mut self, node: &Node, output: &mut QTensor) {
                if node.id == self.out {
                    // Word-level corruption, no f32 round trip.
                    output.flip_word(0, 3);
                } else {
                    // Every other node takes the generic bridge (the default impl).
                    let mirror = output.dequantize();
                    let mut mutated = mirror.clone();
                    self.after_op(node, &mut mutated);
                    for (i, (&before, &after)) in
                        mirror.data().iter().zip(mutated.data()).enumerate()
                    {
                        if before.to_bits() != after.to_bits() {
                            output.set_from_f32(i, after);
                        }
                    }
                }
            }
        }
        let (graph, y) = toy();
        let relu = graph
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Op::Relu))
            .unwrap()
            .id;
        let plan = graph.compile_with(BackendKind::Fixed16.backend()).unwrap();
        let mut values = plan.buffers();
        for _ in 0..2 {
            // Two passes through one arena: the second pass re-applies both mutations
            // over recycled buffers and previously decoded mirrors.
            plan.run_into(
                &mut values,
                &[("x", Tensor::ones(vec![1, 4]))],
                &mut Mixed { relu, out: y },
            )
            .unwrap();
            // The generic-bridge mutation is served by the lazy mirror...
            assert_eq!(values.get(relu).unwrap().data()[0], 19.25);
            // ... and both mirrors agree exactly with the stored words.
            for node in [relu, y] {
                assert_eq!(
                    &values.get_q(node).unwrap().dequantize(),
                    values.get(node).unwrap(),
                    "mirror and words diverged"
                );
            }
            // The word-level flip on the output node is visible through get().
            let clean = plan
                .run(&[("x", Tensor::ones(vec![1, 4]))], &mut NoopInterceptor)
                .unwrap();
            assert_ne!(values.get(y).unwrap(), clean.get(y).unwrap());
        }
    }

    #[test]
    fn generic_interceptor_bridge_reencodes_only_mutated_elements() {
        struct CorruptFirst;
        impl Interceptor for CorruptFirst {
            fn after_op(&mut self, node: &Node, output: &mut Tensor) {
                if matches!(node.op, Op::Relu) {
                    output.data_mut()[0] = 77.3; // off-grid: quantizes to 77.25 in Q14.2
                }
            }
        }
        let (graph, y) = toy();
        let relu = graph
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Op::Relu))
            .unwrap()
            .id;
        let plan = graph.compile_with(BackendKind::Fixed16.backend()).unwrap();
        let values = plan
            .run(&[("x", Tensor::ones(vec![1, 4]))], &mut CorruptFirst)
            .unwrap();
        assert_eq!(values.get(relu).unwrap().data()[0], 77.25);
        assert_eq!(values.get(y).unwrap().dims(), &[1, 2]);
    }
}
