//! Runtime tier detection and the [`SimdOp`] dispatch seam.
//!
//! A kernel is a type implementing [`SimdOp`]: one generic `eval` body written against
//! [`SimdF32`]. [`dispatch`] detects the widest available tier once per process
//! ([`active_tier`]), then evaluates the body inside that tier's `#[target_feature]`
//! wrapper — monomorphization plus `#[inline(always)]` lane ops means LLVM compiles the
//! whole body with the tier's instruction set enabled, while the same source also
//! compiles as the plain-`f32` scalar fallback.
//!
//! `RANGER_SIMD_FORCE` overrides detection for testing (values: `avx512`, `avx2`,
//! `neon`, `scalar`). Forcing a tier the host cannot execute is a hard configuration
//! error — the process fails fast with the valid names rather than silently running a
//! different tier than the one CI asked to cover.

use crate::vec::ScalarVec;
use crate::vec::SimdF32;
use std::fmt;
use std::sync::OnceLock;

/// One rung of the dispatch ladder, widest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// AVX-512 (`avx512f`): 16 `f32` lanes. x86-64 only.
    Avx512,
    /// AVX2 + FMA (the x86-64-v3 pair): 8 `f32` lanes. x86-64 only.
    Avx2Fma,
    /// NEON: 4 `f32` lanes. Baseline on aarch64.
    Neon,
    /// Plain `f32` arithmetic — always available, and the semantic anchor the vector
    /// tiers are pinned against.
    Scalar,
}

impl SimdTier {
    /// Every tier, widest first — the detection order of the ladder.
    pub const LADDER: [SimdTier; 4] = [
        SimdTier::Avx512,
        SimdTier::Avx2Fma,
        SimdTier::Neon,
        SimdTier::Scalar,
    ];

    /// The stable name `RANGER_SIMD_FORCE` selects this tier by.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Avx512 => "avx512",
            SimdTier::Avx2Fma => "avx2",
            SimdTier::Neon => "neon",
            SimdTier::Scalar => "scalar",
        }
    }

    /// Number of `f32` lanes this tier's vectors hold.
    pub fn lanes(self) -> usize {
        match self {
            SimdTier::Avx512 => 16,
            SimdTier::Avx2Fma => 8,
            SimdTier::Neon => 4,
            SimdTier::Scalar => 1,
        }
    }

    /// Whether the running CPU can execute this tier.
    pub fn available(self) -> bool {
        match self {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2Fma => {
                is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "aarch64")]
            SimdTier::Neon => true,
            SimdTier::Scalar => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Parses a `RANGER_SIMD_FORCE` value.
    ///
    /// # Errors
    ///
    /// Returns an error listing the valid names if `name` matches no tier.
    pub fn parse(name: &str) -> Result<SimdTier, String> {
        Self::LADDER
            .iter()
            .copied()
            .find(|t| t.name() == name.to_ascii_lowercase())
            .ok_or_else(|| {
                format!(
                    "unknown SIMD tier '{name}' (valid RANGER_SIMD_FORCE values: \
                     avx512, avx2, neon, scalar)"
                )
            })
    }
}

impl fmt::Display for SimdTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The widest tier the running CPU offers, ignoring any `RANGER_SIMD_FORCE` override.
pub fn detected_tier() -> SimdTier {
    SimdTier::LADDER
        .iter()
        .copied()
        .find(|t| t.available())
        .unwrap_or(SimdTier::Scalar)
}

/// Resolves the tier to run: the forced name if any, else the detected widest.
///
/// Pure so the force/availability rules are unit-testable without touching the
/// process environment.
///
/// # Errors
///
/// Returns an error if `forced` names no tier or names one `available` rejects.
fn resolve(forced: Option<&str>, detected: SimdTier) -> Result<SimdTier, String> {
    match forced {
        None | Some("") => Ok(detected),
        Some(name) => {
            let tier = SimdTier::parse(name)?;
            if tier.available() {
                Ok(tier)
            } else {
                Err(format!(
                    "RANGER_SIMD_FORCE={name} is not executable on this host \
                     (widest available tier: {detected})"
                ))
            }
        }
    }
}

/// The tier every [`dispatch`] call evaluates on, resolved once per process: the
/// `RANGER_SIMD_FORCE` override if set, otherwise the widest detected tier.
///
/// # Panics
///
/// Panics if `RANGER_SIMD_FORCE` names an unknown tier or one this host cannot
/// execute — a misconfigured sweep must fail loudly, not silently measure the wrong
/// instruction set (the same fail-fast rule `RANGER_BENCH_FILTER` follows).
pub fn active_tier() -> SimdTier {
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let forced = std::env::var("RANGER_SIMD_FORCE").ok();
        match resolve(forced.as_deref(), detected_tier()) {
            Ok(tier) => tier,
            Err(e) => panic!("{e}"),
        }
    })
}

/// One SIMD kernel: a generic body evaluated against the active tier's lane type by
/// [`dispatch`].
pub trait SimdOp {
    /// The kernel's result type.
    type Output;

    /// Evaluates the kernel with `V`'s lane width.
    ///
    /// Implementations must be `#[inline(always)]` so the body compiles inside the
    /// per-tier `#[target_feature]` wrappers.
    ///
    /// # Safety
    ///
    /// `V`'s instruction set must be available on the running CPU.
    unsafe fn eval<V: SimdF32>(&mut self) -> Self::Output;
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn eval_avx512<O: SimdOp>(op: &mut O) -> O::Output {
    op.eval::<crate::vec::x86::Avx512Vec>()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn eval_avx2<O: SimdOp>(op: &mut O) -> O::Output {
    op.eval::<crate::vec::x86::Avx2Vec>()
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
pub(crate) unsafe fn eval_neon<O: SimdOp>(op: &mut O) -> O::Output {
    op.eval::<crate::vec::arm::NeonVec>()
}

/// The scalar rung in the same shape as the `#[target_feature]` wrappers, so the
/// kernel-table entries (see `kernels::kernels`) monomorphize every tier uniformly.
///
/// # Safety
///
/// Trivially safe — the scalar body uses no vector instructions; the signature is
/// `unsafe` only to match its siblings.
pub(crate) unsafe fn eval_scalar<O: SimdOp>(op: &mut O) -> O::Output {
    op.eval::<ScalarVec>()
}

/// Evaluates `op` on the [`active_tier`].
pub fn dispatch<O: SimdOp>(op: &mut O) -> O::Output {
    match active_tier() {
        // SAFETY: each wrapper is reached only when `active_tier` resolved to its tier,
        // which `SimdTier::available` verified on this CPU.
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 => unsafe { eval_avx512(op) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2Fma => unsafe { eval_avx2(op) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { eval_neon(op) },
        // SAFETY: the scalar body uses no vector instructions at all.
        _ => unsafe { op.eval::<ScalarVec>() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_widest_first_and_scalar_is_always_available() {
        assert_eq!(SimdTier::LADDER[3], SimdTier::Scalar);
        assert!(SimdTier::Scalar.available());
        let mut lanes: Vec<usize> = SimdTier::LADDER.iter().map(|t| t.lanes()).collect();
        let sorted = {
            lanes.sort_by(|a, b| b.cmp(a));
            lanes
        };
        assert_eq!(
            sorted,
            SimdTier::LADDER
                .iter()
                .map(|t| t.lanes())
                .collect::<Vec<_>>(),
            "the ladder must try wider tiers first"
        );
    }

    #[test]
    fn parse_round_trips_names_and_rejects_unknown_ones() {
        for tier in SimdTier::LADDER {
            assert_eq!(SimdTier::parse(tier.name()), Ok(tier));
        }
        assert_eq!(SimdTier::parse("AVX2"), Ok(SimdTier::Avx2Fma));
        let err = SimdTier::parse("sse9").unwrap_err();
        for name in ["avx512", "avx2", "neon", "scalar"] {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
    }

    #[test]
    fn resolve_honours_the_force_and_rejects_the_unavailable() {
        let detected = detected_tier();
        assert_eq!(resolve(None, detected), Ok(detected));
        assert_eq!(resolve(Some(""), detected), Ok(detected));
        assert_eq!(resolve(Some("scalar"), detected), Ok(SimdTier::Scalar));
        assert!(resolve(Some("warp9"), detected).is_err());
        // Whichever architecture runs this, one of the two vector families is foreign.
        let foreign = if cfg!(target_arch = "aarch64") {
            "avx512"
        } else {
            "neon"
        };
        let err = resolve(Some(foreign), detected).unwrap_err();
        assert!(
            err.contains("not executable"),
            "forcing a foreign tier must fail fast: {err}"
        );
    }

    #[test]
    fn detected_tier_is_executable() {
        assert!(detected_tier().available());
        // The force-aware resolution must agree with the environment this test process
        // actually runs under (CI sets RANGER_SIMD_FORCE=scalar for the fallback leg).
        match std::env::var("RANGER_SIMD_FORCE") {
            Ok(name) if !name.is_empty() => {
                assert_eq!(active_tier(), SimdTier::parse(&name).unwrap())
            }
            _ => assert_eq!(active_tier(), detected_tier()),
        }
    }

    struct SumSquares<'a>(&'a [f32]);
    impl SimdOp for SumSquares<'_> {
        type Output = f32;
        #[inline(always)]
        unsafe fn eval<V: SimdF32>(&mut self) -> f32 {
            // Scalar-order accumulation regardless of lane width: this toy op checks
            // the dispatch plumbing, not vector math.
            self.0.iter().map(|v| v * v).sum()
        }
    }

    #[test]
    fn dispatch_evaluates_on_every_available_tier() {
        let data = [1.0f32, 2.0, 3.0];
        assert_eq!(dispatch(&mut SumSquares(&data)), 14.0);
    }
}
