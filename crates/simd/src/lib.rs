//! Runtime-dispatched SIMD `f32` kernels with **order-preserving accumulation**.
//!
//! This crate is the vector half of the workspace's `SimdBackend`
//! (`ranger_graph::backend::SimdBackend`): portable kernel bodies for the three hot
//! operators — 2-D convolution, matmul and the three-pass stable softmax — written once
//! against the [`SimdF32`] lane abstraction and evaluated at runtime against the widest
//! instruction set the host offers (AVX-512 → AVX2+FMA → NEON → scalar fallback, the
//! ladder [`SimdTier`] names).
//!
//! # The bit-for-bit contract
//!
//! Fault-injection campaigns are pinned by *exact* SDC counts, so these kernels are not
//! allowed to change a single output bit relative to the scalar reference kernels in
//! `ranger-graph`/`ranger-tensor`. That rules out the classic SIMD strategy of
//! vectorizing the reduction dimension (which re-associates the `f32` sum) and rules out
//! FMA (which fuses the multiply's rounding step away). Instead every kernel here
//! vectorizes across **independent output lanes** — vector element `j` accumulates
//! output element `j` and nothing else, with a separate multiply and add per partial
//! product — so each output element sees *exactly* the partial products of the scalar
//! kernel, in the same order, with the same two rounding steps each:
//!
//! * **conv2d** keeps the row-group blocked nest of `conv2d_forward_into`: the vector
//!   unit walks the output row (`ox`), and per output element the partial products still
//!   arrive in `(ic, ky, kx)` order.
//! * **matmul** keeps the `(i, p, j)` nest of `Tensor::matmul_into` — including its
//!   `a == 0.0` row-skip, which is a *semantic* property (skipped products never round) —
//!   and vectorizes the `j` (output column) loop.
//! * **softmax** is three passes: a vectorized max pass (reduction over `max`, which is
//!   associative up to the sign of zero — and the sign of the row max provably cannot
//!   change a softmax output, since `x - (+0.0)` and `x - (-0.0)` differ only at
//!   `x == -0.0` where both subtractions feed `exp` a zero and `exp(±0) = 1.0` exactly),
//!   a **scalar** `exp`-and-sum pass kept verbatim from the reference (transcendental
//!   bit parity, and the `denom` sum order is preserved), and a vectorized divide pass
//!   (IEEE division is correctly rounded, so lane width cannot change it).
//!
//! The dispatch ladder itself is the [`SimdOp`] trait: one generic `eval` body,
//! monomorphized inside per-tier `#[target_feature]` wrappers so LLVM compiles the
//! inlined lane ops with the tier's instruction set enabled. `RANGER_SIMD_FORCE` pins
//! the tier for differential testing (e.g. `RANGER_SIMD_FORCE=scalar` keeps the fallback
//! honest on AVX-512 hosts); see [`active_tier`].
//!
//! One caveat bounds the claim: **NaN payloads**. IEEE 754 leaves the payload of a NaN
//! produced by combining NaN operands unspecified, and LLVM does not pin `fadd`/`fmul`
//! operand order for payload propagation — two *scalar* builds of the same kernel may
//! already disagree in NaN payload bits. The contract is therefore: every non-NaN
//! output is bit-for-bit equal, and a NaN output is NaN on both sides (any payload).
//! No judged quantity can see the difference — comparisons against NaN are false
//! regardless of payload, so argmax/SDC verdicts are payload-insensitive.
//!
//! The proof that all of this holds is external: `tests/backend_differential.rs` at the
//! workspace root fuzzes every kernel against the scalar reference over full-range
//! operands (subnormals, ±0, infinities, NaN) and asserts bit equality under that
//! contract.

#![warn(missing_docs)]

mod dispatch;
mod kernels;
mod vec;

pub use dispatch::{active_tier, detected_tier, dispatch, SimdOp, SimdTier};
pub use kernels::{conv2d, kernels, matmul, softmax, Conv2dShape, Kernels};
pub use vec::SimdF32;
