//! The portable `f32` lane abstraction kernels are written against.
//!
//! One implementation per dispatch tier: plain `f32` (the scalar fallback, `LANES = 1`),
//! AVX2 (`__m256`, 8 lanes), AVX-512 (`__m512`, 16 lanes) and NEON (`float32x4_t`,
//! 4 lanes). Every method is `#[inline(always)]` so a kernel body monomorphized inside a
//! `#[target_feature]` wrapper compiles to straight-line vector code — see
//! [`dispatch`](crate::dispatch).
//!
//! The semantics are deliberately minimal and exact:
//!
//! * [`add`](SimdF32::add), [`mul`](SimdF32::mul), [`div`](SimdF32::div) are lanewise
//!   IEEE-754 operations — identical rounding to the scalar `+`, `*`, `/` they replace,
//!   which is what makes output-lane vectorization bit-preserving.
//! * [`max`](SimdF32::max) has **`MAXPS` semantics**: `if self > other { self } else
//!   { other }` per lane. The result is `other` when `self` is NaN (so folding new
//!   elements in as `self` ignores NaN exactly like `f32::max` does) and `other` on
//!   ±0.0 ties. The scalar implementation uses the literal comparison expression, so
//!   every tier agrees bit-for-bit by construction.

/// A pack of `f32` lanes wide enough for one dispatch tier.
///
/// # Safety
///
/// Every method except the scalar implementation's issues instructions from its tier's
/// instruction set: callers must only invoke them when that tier is available on the
/// running CPU (which [`dispatch`](crate::dispatch) guarantees). `load`/`store` read and
/// write `LANES` consecutive `f32`s and require the pointed-to range to be valid;
/// alignment is not required.
pub trait SimdF32: Copy {
    /// Number of `f32` lanes in one vector.
    const LANES: usize;

    /// Broadcasts one value into every lane.
    ///
    /// # Safety
    ///
    /// The implementing tier's instruction set must be available.
    unsafe fn splat(v: f32) -> Self;

    /// Loads `LANES` consecutive values (unaligned).
    ///
    /// # Safety
    ///
    /// The tier must be available and `ptr..ptr + LANES` must be readable.
    unsafe fn load(ptr: *const f32) -> Self;

    /// Stores `LANES` consecutive values (unaligned).
    ///
    /// # Safety
    ///
    /// The tier must be available and `ptr..ptr + LANES` must be writable.
    unsafe fn store(self, ptr: *mut f32);

    /// Lanewise IEEE-754 addition.
    ///
    /// # Safety
    ///
    /// The implementing tier's instruction set must be available.
    unsafe fn add(self, other: Self) -> Self;

    /// Lanewise IEEE-754 multiplication.
    ///
    /// # Safety
    ///
    /// The implementing tier's instruction set must be available.
    unsafe fn mul(self, other: Self) -> Self;

    /// Lanewise IEEE-754 division.
    ///
    /// # Safety
    ///
    /// The implementing tier's instruction set must be available.
    unsafe fn div(self, other: Self) -> Self;

    /// Lanewise maximum with `MAXPS` semantics: `if self > other { self } else
    /// { other }` — returns `other` when `self` is NaN and on ±0.0 ties.
    ///
    /// # Safety
    ///
    /// The implementing tier's instruction set must be available.
    unsafe fn max(self, other: Self) -> Self;

    /// Horizontal maximum of all lanes, combining lanes with [`max`](Self::max)
    /// semantics.
    ///
    /// Only order-insensitive for the uses this crate makes of it: the accumulator
    /// lanes never hold NaN (NaN inputs are dropped by `max`, never merged in), and a
    /// ±0.0-sign ambiguity in a row maximum cannot change a softmax output (see the
    /// [crate docs](crate)).
    ///
    /// # Safety
    ///
    /// The implementing tier's instruction set must be available.
    unsafe fn reduce_max(self) -> f32;
}

/// `MAXPS`-semantics scalar maximum: the exact expression every vector tier's `max`
/// reduces to, used for remainder elements so scalar tails agree with vector bodies.
#[inline(always)]
pub(crate) fn maxps(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// The scalar fallback tier: one lane, plain `f32` arithmetic.
#[derive(Clone, Copy)]
pub(crate) struct ScalarVec(f32);

impl SimdF32 for ScalarVec {
    const LANES: usize = 1;

    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        ScalarVec(v)
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        ScalarVec(*ptr)
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        *ptr = self.0;
    }

    #[inline(always)]
    unsafe fn add(self, other: Self) -> Self {
        ScalarVec(self.0 + other.0)
    }

    #[inline(always)]
    unsafe fn mul(self, other: Self) -> Self {
        ScalarVec(self.0 * other.0)
    }

    #[inline(always)]
    unsafe fn div(self, other: Self) -> Self {
        ScalarVec(self.0 / other.0)
    }

    #[inline(always)]
    unsafe fn max(self, other: Self) -> Self {
        ScalarVec(maxps(self.0, other.0))
    }

    #[inline(always)]
    unsafe fn reduce_max(self) -> f32 {
        self.0
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use super::SimdF32;
    use std::arch::x86_64::*;

    /// The AVX2+FMA tier: 8 lanes. (FMA is part of the tier's detection contract so the
    /// tier matches the common x86-64-v3 baseline, but no kernel uses fused operations —
    /// fusing would change rounding.)
    #[derive(Clone, Copy)]
    pub(crate) struct Avx2Vec(__m256);

    impl SimdF32 for Avx2Vec {
        const LANES: usize = 8;

        #[inline(always)]
        unsafe fn splat(v: f32) -> Self {
            Avx2Vec(_mm256_set1_ps(v))
        }

        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> Self {
            Avx2Vec(_mm256_loadu_ps(ptr))
        }

        #[inline(always)]
        unsafe fn store(self, ptr: *mut f32) {
            _mm256_storeu_ps(ptr, self.0)
        }

        #[inline(always)]
        unsafe fn add(self, other: Self) -> Self {
            Avx2Vec(_mm256_add_ps(self.0, other.0))
        }

        #[inline(always)]
        unsafe fn mul(self, other: Self) -> Self {
            Avx2Vec(_mm256_mul_ps(self.0, other.0))
        }

        #[inline(always)]
        unsafe fn div(self, other: Self) -> Self {
            Avx2Vec(_mm256_div_ps(self.0, other.0))
        }

        #[inline(always)]
        unsafe fn max(self, other: Self) -> Self {
            // VMAXPS a, b == if a > b { a } else { b } per lane.
            Avx2Vec(_mm256_max_ps(self.0, other.0))
        }

        #[inline(always)]
        unsafe fn reduce_max(self) -> f32 {
            let lo = _mm256_castps256_ps128(self.0);
            let hi = _mm256_extractf128_ps(self.0, 1);
            let m = _mm_max_ps(lo, hi);
            let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
            let m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0b01));
            _mm_cvtss_f32(m)
        }
    }

    /// The AVX-512 tier: 16 lanes (`avx512f` only — no other extension is used).
    #[derive(Clone, Copy)]
    pub(crate) struct Avx512Vec(__m512);

    impl SimdF32 for Avx512Vec {
        const LANES: usize = 16;

        #[inline(always)]
        unsafe fn splat(v: f32) -> Self {
            Avx512Vec(_mm512_set1_ps(v))
        }

        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> Self {
            Avx512Vec(_mm512_loadu_ps(ptr))
        }

        #[inline(always)]
        unsafe fn store(self, ptr: *mut f32) {
            _mm512_storeu_ps(ptr, self.0)
        }

        #[inline(always)]
        unsafe fn add(self, other: Self) -> Self {
            Avx512Vec(_mm512_add_ps(self.0, other.0))
        }

        #[inline(always)]
        unsafe fn mul(self, other: Self) -> Self {
            Avx512Vec(_mm512_mul_ps(self.0, other.0))
        }

        #[inline(always)]
        unsafe fn div(self, other: Self) -> Self {
            Avx512Vec(_mm512_div_ps(self.0, other.0))
        }

        #[inline(always)]
        unsafe fn max(self, other: Self) -> Self {
            Avx512Vec(_mm512_max_ps(self.0, other.0))
        }

        #[inline(always)]
        unsafe fn reduce_max(self) -> f32 {
            // Sequence intrinsic (avx512f): pairwise MAXPS folds.
            _mm512_reduce_max_ps(self.0)
        }
    }
}

#[cfg(target_arch = "aarch64")]
pub(crate) mod arm {
    use super::SimdF32;
    use std::arch::aarch64::*;

    /// The NEON tier: 4 lanes. NEON is baseline on aarch64, so this tier is always
    /// available there.
    #[derive(Clone, Copy)]
    pub(crate) struct NeonVec(float32x4_t);

    impl SimdF32 for NeonVec {
        const LANES: usize = 4;

        #[inline(always)]
        unsafe fn splat(v: f32) -> Self {
            NeonVec(vdupq_n_f32(v))
        }

        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> Self {
            NeonVec(vld1q_f32(ptr))
        }

        #[inline(always)]
        unsafe fn store(self, ptr: *mut f32) {
            vst1q_f32(ptr, self.0)
        }

        #[inline(always)]
        unsafe fn add(self, other: Self) -> Self {
            NeonVec(vaddq_f32(self.0, other.0))
        }

        #[inline(always)]
        unsafe fn mul(self, other: Self) -> Self {
            NeonVec(vmulq_f32(self.0, other.0))
        }

        #[inline(always)]
        unsafe fn div(self, other: Self) -> Self {
            NeonVec(vdivq_f32(self.0, other.0))
        }

        #[inline(always)]
        unsafe fn max(self, other: Self) -> Self {
            // NEON's vmaxq propagates NaN, so build MAXPS semantics from the comparison
            // directly: self where self > other, other everywhere else (incl. NaN, ±0).
            NeonVec(vbslq_f32(vcgtq_f32(self.0, other.0), self.0, other.0))
        }

        #[inline(always)]
        unsafe fn reduce_max(self) -> f32 {
            // Accumulators reaching a horizontal reduce never hold NaN (see trait docs),
            // so the NaN-propagating lane-wise vmaxv agrees with MAXPS folds here.
            vmaxvq_f32(self.0)
        }
    }
}
