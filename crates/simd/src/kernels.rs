//! The three ported kernel bodies: blocked conv2d, matmul, three-pass softmax.
//!
//! Each body mirrors its scalar reference loop-for-loop (see the [crate docs](crate) for
//! why that makes the vectorization bit-preserving); the only freedom taken is *which
//! independent output elements* one instruction covers. Shape validation stays in
//! `ranger-graph` — these entry points assert the slice contracts they need for memory
//! safety and otherwise trust the caller's geometry.

use crate::dispatch::{SimdOp, SimdTier};
use crate::vec::{maxps, SimdF32};
use std::sync::OnceLock;

/// Validated conv2d geometry, mirroring `ranger-graph`'s `Conv2dGeometry` (NCHW
/// activations `(batch, cin, height, width)`, OIHW filters `(cout, cin, kh, kw)`).
#[derive(Debug, Clone, Copy)]
pub struct Conv2dShape {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub cin: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Output channels (filter count).
    pub cout: usize,
    /// Filter height.
    pub kh: usize,
    /// Filter width.
    pub kw: usize,
    /// Stride (both spatial dimensions).
    pub stride: usize,
    /// Leading padding rows.
    pub pad_h: usize,
    /// Leading padding columns.
    pub pad_w: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

/// `out[j] += x[j] * w` for equal-length slices — the shared inner loop of conv2d and
/// matmul. Separate multiply and add (never FMA), so every `out[j]` rounds exactly like
/// the scalar `*o += x * w` it replaces.
#[inline(always)]
unsafe fn axpy<V: SimdF32>(out: &mut [f32], x: &[f32], w: f32) {
    debug_assert_eq!(out.len(), x.len());
    let n = out.len();
    let wv = V::splat(w);
    let mut i = 0;
    while i + V::LANES <= n {
        let xv = V::load(x.as_ptr().add(i));
        let ov = V::load(out.as_ptr().add(i));
        ov.add(xv.mul(wv)).store(out.as_mut_ptr().add(i));
        i += V::LANES;
    }
    while i < n {
        *out.get_unchecked_mut(i) += *x.get_unchecked(i) * w;
        i += 1;
    }
}

/// `out[j] += x[base + j * stride] * w` — the strided-input counterpart of [`axpy`],
/// used by conv2d rows with `stride > 1`. Lanes gather their strided inputs into a
/// stack buffer, then run the exact same splat-multiply-add as the contiguous path, so
/// every `out[j]` still receives exactly one `+ x * w` with identical operands and
/// rounding to the scalar walk it replaces.
#[inline(always)]
unsafe fn axpy_gather<V: SimdF32>(out: &mut [f32], x: &[f32], base: usize, stride: usize, w: f32) {
    debug_assert!(V::LANES <= 16);
    debug_assert!(out.is_empty() || base + (out.len() - 1) * stride < x.len());
    let n = out.len();
    let wv = V::splat(w);
    let mut buf = [0.0f32; 16];
    let mut i = 0;
    while i + V::LANES <= n {
        for (lane, slot) in buf[..V::LANES].iter_mut().enumerate() {
            *slot = *x.get_unchecked(base + (i + lane) * stride);
        }
        let xv = V::load(buf.as_ptr());
        let ov = V::load(out.as_ptr().add(i));
        ov.add(xv.mul(wv)).store(out.as_mut_ptr().add(i));
        i += V::LANES;
    }
    while i < n {
        *out.get_unchecked_mut(i) += *x.get_unchecked(base + i * stride) * w;
        i += 1;
    }
}

struct Conv2dOp<'a> {
    x: &'a [f32],
    w: &'a [f32],
    out: &'a mut [f32],
    shape: Conv2dShape,
}

impl SimdOp for Conv2dOp<'_> {
    type Output = ();

    #[inline(always)]
    unsafe fn eval<V: SimdF32>(&mut self) {
        let g = self.shape;
        let (n, cin, h, win) = (g.batch, g.cin, g.height, g.width);
        let (cout, kh, kw, stride) = (g.cout, g.kh, g.kw, g.stride);
        let (ho, pad_h) = (g.out_h, g.pad_h);
        let (wo, pad_w) = (g.out_w, g.pad_w);
        // The row-group blocked nest of `conv2d_forward_into`, verbatim: per output
        // element the partial products arrive in (ic, ky, kx) order, and the innermost
        // `ox` walk is the independent-lane axis the vector unit covers.
        for b in 0..n {
            for oc in 0..cout {
                for oy in 0..ho {
                    let out_row = &mut self.out[((b * cout + oc) * ho + oy) * wo..][..wo];
                    for ic in 0..cin {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad_h as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let x_row = &self.x[((b * cin + ic) * h + iy as usize) * win..][..win];
                            let w_row = &self.w[((oc * cin + ic) * kh + ky) * kw..][..kw];
                            for (kx, &wv) in w_row.iter().enumerate() {
                                // Valid output columns: 0 <= ox * stride + kx - pad_w < win
                                // (same clamping as the reference, empty when the kernel
                                // column lies entirely in the padding).
                                let kx_off = kx as isize - pad_w as isize;
                                let ox_min = if kx_off >= 0 {
                                    0
                                } else {
                                    wo.min(((-kx_off) as usize).div_ceil(stride))
                                };
                                let ox_end = if win as isize <= kx_off {
                                    0
                                } else {
                                    wo.min((win as isize - 1 - kx_off) as usize / stride + 1)
                                };
                                let ox_end = ox_end.max(ox_min);
                                if stride == 1 {
                                    // Unit stride reads a contiguous input run: vector
                                    // lanes cover consecutive output columns.
                                    let x_base = (ox_min as isize + kx_off) as usize;
                                    axpy::<V>(
                                        &mut out_row[ox_min..ox_end],
                                        &x_row[x_base..x_base + (ox_end - ox_min)],
                                        wv,
                                    );
                                } else {
                                    // Strided input run: gather the lanes, then the
                                    // same multiply-add as the contiguous path.
                                    // `ox_min` guarantees `ox_min * stride + kx_off >= 0`.
                                    let x_base = (ox_min * stride) as isize + kx_off;
                                    axpy_gather::<V>(
                                        &mut out_row[ox_min..ox_end],
                                        x_row,
                                        x_base as usize,
                                        stride,
                                        wv,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Runtime-dispatched 2-D convolution, bit-for-bit equal to
/// `ranger_graph::ops::conv2d_forward_into`.
///
/// `out` must be zero-initialized by the caller (the backend recycles and refills its
/// arena buffer, exactly as for the reference kernel).
///
/// # Panics
///
/// Panics if the slice lengths disagree with `shape` — geometry validation belongs to
/// the caller; these checks only guard memory safety.
pub fn conv2d(x: &[f32], w: &[f32], shape: &Conv2dShape, out: &mut [f32]) {
    kernels().conv2d(x, w, shape, out);
}

struct MatMulOp<'a> {
    a: &'a [f32],
    b: &'a [f32],
    out: &'a mut [f32],
    m: usize,
    k: usize,
    n: usize,
}

impl SimdOp for MatMulOp<'_> {
    type Output = ();

    #[inline(always)]
    unsafe fn eval<V: SimdF32>(&mut self) {
        let (m, k, n) = (self.m, self.k, self.n);
        // The (i, p, j) nest of `Tensor::matmul_into`, verbatim — including the
        // `a == 0.0` skip, which is semantic: skipped partial products never round, and
        // sparse rows (post-ReLU activations) keep their exact shortcut.
        for i in 0..m {
            for p in 0..k {
                let a = self.a[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &self.b[p * n..(p + 1) * n];
                let out_row = &mut self.out[i * n..(i + 1) * n];
                axpy::<V>(out_row, row, a);
            }
        }
    }
}

/// Runtime-dispatched matrix multiplication (`a` is `m×k`, `b` is `k×n`), bit-for-bit
/// equal to `Tensor::matmul_into`.
///
/// `out` must be zero-initialized by the caller.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`/`k`/`n`.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    kernels().matmul(a, b, m, k, n, out);
}

struct SoftmaxOp<'a> {
    x: &'a [f32],
    out: &'a mut [f32],
    rows: usize,
    row_len: usize,
}

impl SimdOp for SoftmaxOp<'_> {
    type Output = ();

    #[inline(always)]
    unsafe fn eval<V: SimdF32>(&mut self) {
        let last = self.row_len;
        for r in 0..self.rows {
            let row = &self.x[r * last..(r + 1) * last];
            let orow = &mut self.out[r * last..(r + 1) * last];

            // Pass 1 — vectorized max. Folding new elements in as the NaN-dropping
            // operand mirrors the reference's NaN-ignoring `f32::max` fold; the only
            // freedom is the sign of a ±0.0 maximum, which cannot change any softmax
            // output (crate docs).
            let mut max = f32::NEG_INFINITY;
            let mut i = 0;
            if last >= V::LANES {
                let mut acc = V::splat(f32::NEG_INFINITY);
                while i + V::LANES <= last {
                    acc = V::load(row.as_ptr().add(i)).max(acc);
                    i += V::LANES;
                }
                max = acc.reduce_max();
            }
            while i < last {
                max = maxps(*row.get_unchecked(i), max);
                i += 1;
            }

            // Pass 2 — scalar exp-and-sum, verbatim from the reference: `exp` keeps
            // transcendental bit parity and `denom` accumulates in element order.
            let mut denom = 0.0f32;
            for (o, &v) in orow.iter_mut().zip(row) {
                let e = (v - max).exp();
                *o = e;
                denom += e;
            }

            // Pass 3 — vectorized normalize: IEEE division is correctly rounded, so
            // each lane divides exactly like the scalar `*o /= denom`.
            let dv = V::splat(denom);
            let mut i = 0;
            while i + V::LANES <= last {
                let ov = V::load(orow.as_ptr().add(i));
                ov.div(dv).store(orow.as_mut_ptr().add(i));
                i += V::LANES;
            }
            while i < last {
                *orow.get_unchecked_mut(i) /= denom;
                i += 1;
            }
        }
    }
}

/// Runtime-dispatched three-pass stable softmax over rows of length `row_len`,
/// bit-for-bit equal to `ranger_graph::ops::softmax_forward_into`.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `rows * row_len`.
pub fn softmax(x: &[f32], rows: usize, row_len: usize, out: &mut [f32]) {
    kernels().softmax(x, rows, row_len, out);
}

// ---- Resolved kernel table -----------------------------------------------------------

type Conv2dFn = fn(&[f32], &[f32], &Conv2dShape, &mut [f32]);
type MatMulFn = fn(&[f32], &[f32], usize, usize, usize, &mut [f32]);
type SoftmaxFn = fn(&[f32], usize, usize, &mut [f32]);

/// The three kernel entry points resolved to one tier.
///
/// [`kernels`] builds this table once per process from the active tier: each entry is a
/// monomorphic function compiled inside that tier's `#[target_feature]` wrapper, so a
/// kernel call costs one indirect call instead of walking the tier `match` on every
/// invocation — the per-call dispatch overhead that showed up on deep, narrow graphs
/// where each kernel does little work. The free functions [`conv2d`], [`matmul`] and
/// [`softmax`] call through the table; [`dispatch`](crate::dispatch::dispatch) remains
/// the seam for custom [`SimdOp`] implementations.
pub struct Kernels {
    conv2d: Conv2dFn,
    matmul: MatMulFn,
    softmax: SoftmaxFn,
}

impl Kernels {
    /// Tier-resolved [`conv2d`] (same contract and panics).
    #[inline]
    pub fn conv2d(&self, x: &[f32], w: &[f32], shape: &Conv2dShape, out: &mut [f32]) {
        let g = *shape;
        assert_eq!(x.len(), g.batch * g.cin * g.height * g.width);
        assert_eq!(w.len(), g.cout * g.cin * g.kh * g.kw);
        assert_eq!(out.len(), g.batch * g.cout * g.out_h * g.out_w);
        assert!(g.stride > 0, "conv2d stride must be positive");
        (self.conv2d)(x, w, shape, out);
    }

    /// Tier-resolved [`matmul`] (same contract and panics).
    #[inline]
    pub fn matmul(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        assert_eq!(a.len(), m * k);
        assert_eq!(b.len(), k * n);
        assert_eq!(out.len(), m * n);
        (self.matmul)(a, b, m, k, n, out);
    }

    /// Tier-resolved [`softmax`] (same contract and panics).
    #[inline]
    pub fn softmax(&self, x: &[f32], rows: usize, row_len: usize, out: &mut [f32]) {
        assert_eq!(x.len(), rows * row_len);
        assert_eq!(out.len(), rows * row_len);
        (self.softmax)(x, rows, row_len, out);
    }
}

/// Generates one tier's monomorphic entry points. The modules are private and a tier is
/// installed into the table only after `active_tier` has verified it is executable on
/// this CPU, so the `unsafe` blocks cannot be reached for a foreign tier.
macro_rules! tier_entries {
    ($name:ident, $eval:path) => {
        mod $name {
            use super::{Conv2dOp, Conv2dShape, MatMulOp, SoftmaxOp};

            pub fn conv2d(x: &[f32], w: &[f32], shape: &Conv2dShape, out: &mut [f32]) {
                // SAFETY: this tier was verified available before being installed.
                unsafe {
                    $eval(&mut Conv2dOp {
                        x,
                        w,
                        out,
                        shape: *shape,
                    })
                }
            }

            pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
                // SAFETY: this tier was verified available before being installed.
                unsafe { $eval(&mut MatMulOp { a, b, out, m, k, n }) }
            }

            pub fn softmax(x: &[f32], rows: usize, row_len: usize, out: &mut [f32]) {
                // SAFETY: this tier was verified available before being installed.
                unsafe {
                    $eval(&mut SoftmaxOp {
                        x,
                        out,
                        rows,
                        row_len,
                    })
                }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
tier_entries!(avx512_entries, crate::dispatch::eval_avx512);
#[cfg(target_arch = "x86_64")]
tier_entries!(avx2_entries, crate::dispatch::eval_avx2);
#[cfg(target_arch = "aarch64")]
tier_entries!(neon_entries, crate::dispatch::eval_neon);
tier_entries!(scalar_entries, crate::dispatch::eval_scalar);

/// The process-wide kernel table, resolved from the tier ladder exactly once — the
/// dispatch tier cache: plans compiled against the SIMD backend reach these cached
/// kernel fns instead of re-matching the ladder per kernel call.
pub fn kernels() -> &'static Kernels {
    static TABLE: OnceLock<Kernels> = OnceLock::new();
    TABLE.get_or_init(|| match crate::dispatch::active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 => Kernels {
            conv2d: avx512_entries::conv2d,
            matmul: avx512_entries::matmul,
            softmax: avx512_entries::softmax,
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2Fma => Kernels {
            conv2d: avx2_entries::conv2d,
            matmul: avx2_entries::matmul,
            softmax: avx2_entries::softmax,
        },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => Kernels {
            conv2d: neon_entries::conv2d,
            matmul: neon_entries::matmul,
            softmax: neon_entries::softmax,
        },
        _ => Kernels {
            conv2d: scalar_entries::conv2d,
            matmul: scalar_entries::matmul,
            softmax: scalar_entries::softmax,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::active_tier;
    use crate::vec::ScalarVec;

    /// SplitMix64 over raw bit patterns: full-range f32 operands (subnormals, ±0,
    /// infinities, NaN) without depending on `rand`.
    struct Bits(u64);
    impl Bits {
        fn next_f32(&mut self) -> f32 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            f32::from_bits((z ^ (z >> 31)) as u32)
        }
        fn fill(&mut self, n: usize) -> Vec<f32> {
            (0..n).map(|_| self.next_f32()).collect()
        }
    }

    /// Bit patterns with NaN canonicalized: NaN *payloads* are the one bit IEEE leaves
    /// unspecified — LLVM does not pin scalar `fadd` operand order, so two NaN partial
    /// products can merge with either payload even between two scalar builds. Every
    /// judged quantity is payload-insensitive (NaN comparisons are false regardless),
    /// so the contract is exact bits for every non-NaN value and NaN-as-a-class.
    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter()
            .map(|x| if x.is_nan() { 0x7FC0_0000 } else { x.to_bits() })
            .collect()
    }

    #[test]
    fn conv2d_identity_kernel_preserves_input() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let w = [1.0];
        let shape = Conv2dShape {
            batch: 1,
            cin: 1,
            height: 2,
            width: 2,
            cout: 1,
            kh: 1,
            kw: 1,
            stride: 1,
            pad_h: 0,
            pad_w: 0,
            out_h: 2,
            out_w: 2,
        };
        let mut out = [0.0; 4];
        conv2d(&x, &w, &shape, &mut out);
        assert_eq!(out, x);
    }

    #[test]
    fn conv2d_active_tier_matches_scalar_tier_bit_for_bit() {
        let mut rng = Bits(7);
        // Shapes chosen to cover padding, strides, vector-width remainders and the
        // kernel-wider-than-input clamp.
        for g in [
            Conv2dShape {
                batch: 2,
                cin: 3,
                height: 7,
                width: 19,
                cout: 4,
                kh: 3,
                kw: 3,
                stride: 1,
                pad_h: 1,
                pad_w: 1,
                out_h: 7,
                out_w: 19,
            },
            Conv2dShape {
                batch: 1,
                cin: 2,
                height: 9,
                width: 9,
                cout: 3,
                kh: 3,
                kw: 3,
                stride: 2,
                pad_h: 1,
                pad_w: 1,
                out_h: 5,
                out_w: 5,
            },
            Conv2dShape {
                batch: 1,
                cin: 1,
                height: 2,
                width: 2,
                cout: 1,
                kh: 7,
                kw: 7,
                stride: 2,
                pad_h: 3,
                pad_w: 3,
                out_h: 1,
                out_w: 1,
            },
            // Strided rows wide enough (out_w >= 16 lanes) that the gather path runs
            // its vector loop on every tier, with padding exercising clamped ends.
            Conv2dShape {
                batch: 1,
                cin: 2,
                height: 5,
                width: 67,
                cout: 2,
                kh: 3,
                kw: 3,
                stride: 2,
                pad_h: 1,
                pad_w: 1,
                out_h: 3,
                out_w: 34,
            },
            Conv2dShape {
                batch: 2,
                cin: 1,
                height: 4,
                width: 58,
                cout: 2,
                kh: 2,
                kw: 4,
                stride: 3,
                pad_h: 0,
                pad_w: 0,
                out_h: 1,
                out_w: 19,
            },
        ] {
            let x = rng.fill(g.batch * g.cin * g.height * g.width);
            let w = rng.fill(g.cout * g.cin * g.kh * g.kw);
            let out_len = g.batch * g.cout * g.out_h * g.out_w;
            let mut simd_out = vec![0.0f32; out_len];
            conv2d(&x, &w, &g, &mut simd_out);
            let mut scalar_out = vec![0.0f32; out_len];
            // SAFETY: the scalar body uses no vector instructions.
            unsafe {
                Conv2dOp {
                    x: &x,
                    w: &w,
                    out: &mut scalar_out,
                    shape: g,
                }
                .eval::<ScalarVec>()
            };
            assert_eq!(
                bits(&simd_out),
                bits(&scalar_out),
                "conv2d diverged from scalar on tier {} for {g:?}",
                active_tier()
            );
        }
    }

    #[test]
    fn matmul_known_result_and_scalar_parity() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0; 4];
        matmul(&a, &b, 2, 2, 2, &mut out);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);

        let mut rng = Bits(21);
        for (m, k, n) in [(1, 1, 1), (3, 5, 17), (4, 4, 8), (2, 7, 33)] {
            let a = rng.fill(m * k);
            let b = rng.fill(k * n);
            let mut simd_out = vec![0.0f32; m * n];
            matmul(&a, &b, m, k, n, &mut simd_out);
            let mut scalar_out = vec![0.0f32; m * n];
            // SAFETY: the scalar body uses no vector instructions.
            unsafe {
                MatMulOp {
                    a: &a,
                    b: &b,
                    out: &mut scalar_out,
                    m,
                    k,
                    n,
                }
                .eval::<ScalarVec>()
            };
            assert_eq!(
                bits(&simd_out),
                bits(&scalar_out),
                "matmul diverged from scalar on tier {} for ({m},{k},{n})",
                active_tier()
            );
        }
    }

    #[test]
    fn kernel_table_matches_generic_dispatch_bit_for_bit() {
        use crate::dispatch::dispatch;
        let mut rng = Bits(55);
        let (m, k, n) = (3, 5, 17);
        let a = rng.fill(m * k);
        let b = rng.fill(k * n);
        let mut table_out = vec![0.0f32; m * n];
        matmul(&a, &b, m, k, n, &mut table_out);
        let mut dispatch_out = vec![0.0f32; m * n];
        dispatch(&mut MatMulOp {
            a: &a,
            b: &b,
            out: &mut dispatch_out,
            m,
            k,
            n,
        });
        assert_eq!(
            bits(&table_out),
            bits(&dispatch_out),
            "the resolved table must evaluate on the same tier as generic dispatch"
        );
    }

    #[test]
    fn softmax_rows_normalize_and_match_scalar_bit_for_bit() {
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let mut out = [0.0f32; 4];
        softmax(&x, 1, 4, &mut out);
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(out.windows(2).all(|w| w[0] < w[1]));

        let mut rng = Bits(33);
        for (rows, len) in [(1, 1), (3, 10), (2, 16), (5, 23)] {
            let x = rng.fill(rows * len);
            let mut simd_out = vec![0.0f32; rows * len];
            softmax(&x, rows, len, &mut simd_out);
            let mut scalar_out = vec![0.0f32; rows * len];
            // SAFETY: the scalar body uses no vector instructions.
            unsafe {
                SoftmaxOp {
                    x: &x,
                    out: &mut scalar_out,
                    rows,
                    row_len: len,
                }
                .eval::<ScalarVec>()
            };
            assert_eq!(
                bits(&simd_out),
                bits(&scalar_out),
                "softmax diverged from scalar on tier {} for ({rows},{len})",
                active_tier()
            );
        }
    }
}
