//! The sharded kill-and-resume smoke test: a real coordinator process leases chunk
//! ranges to two real `ranger-cli work` processes; one worker is SIGKILLed
//! mid-campaign and a ghost lease is left to expire; the survivor absorbs every
//! re-leased range and the merged counts are bit-for-bit the uninterrupted
//! in-process run's.

use ranger_serve::{CampaignSpec, ClaimOutcome, Client, ModelSpec};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ranger-cli-shard-e2e-{}-{name}",
        std::process::id()
    ))
}

/// Starts `ranger-cli serve` on an ephemeral port (same helper as serve_e2e).
fn start_server(checkpoints: &Path) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let stderr = std::fs::File::create(checkpoints.with_extension("server-stderr.log"))
        .expect("stderr log file");
    let mut child = Command::new(env!("CARGO_BIN_EXE_ranger-cli"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--checkpoints",
            checkpoints.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(stderr)
        .spawn()
        .expect("serve process starts");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("server announces its address");
    let addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected announcement: {line}"))
        .to_string();
    (child, addr, reader)
}

/// Starts a real `ranger-cli work` process with its output captured to log files, so
/// a chatty worker can never block on a full pipe.
fn start_worker(addr: &str, id: &str, name: &str, logs: &Path) -> Child {
    let stdout = std::fs::File::create(logs.join(format!("{name}.log"))).expect("worker log");
    let stderr = std::fs::File::create(logs.join(format!("{name}.err"))).expect("worker err log");
    Command::new(env!("CARGO_BIN_EXE_ranger-cli"))
        .args([
            "work",
            "--addr",
            addr,
            "--id",
            id,
            "--name",
            name,
            "--lease-ms",
            "1000",
            "--claim",
            "1",
            "--poll-ms",
            "50",
        ])
        .stdout(Stdio::from(stdout))
        .stderr(Stdio::from(stderr))
        .spawn()
        .expect("work process starts")
}

fn wait_until<F: FnMut() -> bool>(mut ready: F, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn a_sigkilled_worker_is_re_leased_and_the_survivor_finishes_exactly() {
    let checkpoints = tmp_dir("kill-worker");
    let _ = std::fs::remove_dir_all(&checkpoints);
    std::fs::create_dir_all(&checkpoints).unwrap();

    // A partition wide enough that the kill and the expiry both land mid-flight.
    let spec = CampaignSpec {
        model: ModelSpec::Kind {
            name: "lenet".to_string(),
        },
        inputs: 2,
        config: ranger_inject::CampaignConfig {
            trials: 60,
            batch: 1,
            workers: 2,
            backend: ranger_inject::BackendKind::F32,
            fault: ranger_inject::FaultModel::single_bit_fixed32(),
            seed: 53,
            tile: 0,
        },
    };

    // Ground truth: the same campaign, unsharded, through the in-process API.
    let materialized = spec.materialize().unwrap();
    let reference = ranger_inject::run_campaign(
        &materialized.target(),
        &materialized.inputs,
        materialized.judge.as_ref(),
        &materialized.config,
    )
    .unwrap();

    let (mut server, addr, _stdout) = start_server(&checkpoints);
    let client = Client::new(addr.clone());
    let submitted = client.submit_remote(&spec).unwrap();
    assert_eq!(submitted.resumed_chunks, 0);
    assert!(submitted.total_chunks >= 4, "need room for two workers");

    // A ghost worker claims the first two chunks with a short TTL and vanishes
    // without ever pushing or renewing: a deterministic dead-worker lease that MUST
    // expire and be re-leased for the campaign to finish at all.
    let ghost = match client
        .claim_range(&submitted.id, "ghost", 600, 0, 2)
        .unwrap()
    {
        ClaimOutcome::Granted(grant) => grant,
        other => panic!("the ghost claim must be granted, got {other:?}"),
    };
    assert_eq!((ghost.start, ghost.end), (0, 2));

    // Two real worker processes join and start executing.
    let mut worker_a = start_worker(&addr, &submitted.id, "worker-a", &checkpoints);
    let mut worker_b = start_worker(&addr, &submitted.id, "worker-b", &checkpoints);

    // SIGKILL one worker as soon as the fleet has made real progress; whatever lease
    // it held at that moment dies with it and must expire back into the pool.
    wait_until(
        || {
            client
                .status(&submitted.id)
                .map(|s| s.done_chunks >= 1)
                .unwrap_or(false)
        },
        "the first remotely-executed chunk to land",
    );
    worker_a.kill().expect("SIGKILL delivered to worker-a");
    let _ = worker_a.wait();

    // The survivor alone must finish the campaign: the ghost's range and the killed
    // worker's range both expire and are re-leased to it.
    wait_until(
        || {
            client
                .status(&submitted.id)
                .map(|s| s.state == "done")
                .unwrap_or(false)
        },
        "the surviving worker to finish the campaign",
    );

    // Bit-for-bit parity with the unsharded run.
    let status = client.status(&submitted.id).unwrap();
    assert_eq!(status.done_chunks, status.total_chunks);
    assert_eq!(status.trials_done, reference.trials);
    assert_eq!(
        status.sdc_counts, reference.sdc_counts,
        "a sharded campaign that lost a worker must still merge the exact counts"
    );

    // The expiry was observable: at least the ghost's lease was reaped.
    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("serve.leases.expired"),
        "the coordinator must count reaped leases, got: {metrics}"
    );

    // The terminal state ends the survivor's work loop on its own.
    let exit = worker_b.wait().expect("worker-b exits after done");
    assert!(exit.success(), "work must exit cleanly, got {exit:?}");
    let log = std::fs::read_to_string(checkpoints.join("worker-b.log")).unwrap();
    assert!(
        log.contains("is done"),
        "the worker reports the terminal state, got:\n{log}"
    );

    // Resubmitting the identical spec finds the whole campaign durable.
    let resubmitted = client.submit_remote(&spec).unwrap();
    assert_eq!(resubmitted.id, submitted.id);
    assert_eq!(resubmitted.resumed_chunks, resubmitted.total_chunks);

    client.shutdown().unwrap();
    let exit = server.wait().expect("server exits after shutdown");
    assert!(exit.success(), "serve must exit cleanly, got {exit:?}");

    let _ = std::fs::remove_dir_all(&checkpoints);
}
