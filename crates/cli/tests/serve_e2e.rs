//! The kill-and-resume smoke test: a real `ranger-cli serve` process is SIGKILLed in
//! the middle of a campaign, restarted on the same checkpoint directory, and must
//! finish with counts identical to an uninterrupted in-process run.

use ranger_serve::{CampaignEvent, CampaignSpec, Client, ModelSpec};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ranger-cli-e2e-{}-{name}", std::process::id()))
}

/// Starts `ranger-cli serve` on an ephemeral port and returns the child, the address it
/// announced on stdout, and the stdout reader — which must stay alive as long as the
/// child does, or the server's final log line hits a broken pipe.
fn start_server(checkpoints: &Path) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let stderr = std::fs::File::create(checkpoints.with_extension("server-stderr.log"))
        .expect("stderr log file");
    let mut child = Command::new(env!("CARGO_BIN_EXE_ranger-cli"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--checkpoints",
            checkpoints.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(stderr)
        .spawn()
        .expect("serve process starts");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("server announces its address");
    let addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected announcement: {line}"))
        .to_string();
    (child, addr, reader)
}

fn wait_until<F: FnMut() -> bool>(mut ready: F, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn a_sigkilled_server_resumes_to_the_exact_uninterrupted_counts() {
    let checkpoints = tmp_dir("kill-resume");
    let _ = std::fs::remove_dir_all(&checkpoints);

    // A campaign with a partition wide enough that the kill lands mid-flight.
    let spec = CampaignSpec {
        model: ModelSpec::Kind {
            name: "lenet".to_string(),
        },
        inputs: 2,
        config: ranger_inject::CampaignConfig {
            trials: 60,
            batch: 1,
            workers: 2,
            backend: ranger_inject::BackendKind::F32,
            fault: ranger_inject::FaultModel::single_bit_fixed32(),
            seed: 29,
            tile: 0,
        },
    };

    // Ground truth: the same campaign, uninterrupted, through the in-process API.
    let materialized = spec.materialize().unwrap();
    let reference = ranger_inject::run_campaign(
        &materialized.target(),
        &materialized.inputs,
        materialized.judge.as_ref(),
        &materialized.config,
    )
    .unwrap();

    // Leg 1: submit, wait for partial progress, SIGKILL the server mid-campaign.
    let (mut child, addr, _stdout) = start_server(&checkpoints);
    let client = Client::new(addr);
    let submitted = client.submit(&spec).unwrap();
    assert_eq!(submitted.resumed_chunks, 0);
    assert!(submitted.total_chunks >= 4, "need room to kill mid-flight");
    wait_until(
        || {
            client
                .status(&submitted.id)
                .map(|s| s.done_chunks >= 1)
                .unwrap_or(false)
        },
        "the first chunk to complete",
    );
    child.kill().expect("SIGKILL delivered");
    let _ = child.wait();

    // Leg 2: a fresh server on the same checkpoint directory resumes the campaign from
    // its durable prefix when the identical spec is resubmitted.
    let (mut child, addr, _stdout) = start_server(&checkpoints);
    let client = Client::new(addr);
    let resubmitted = client.submit(&spec).unwrap();
    assert_eq!(resubmitted.id, submitted.id, "same spec, same fingerprint");
    assert!(
        resubmitted.resumed_chunks >= 1,
        "the killed run's durable chunks must be picked up"
    );

    // Stream to completion: the replayed prefix arrives flagged as resumed, tallies are
    // monotone, and the final event is bit-for-bit the uninterrupted result.
    let mut last_trials = 0u64;
    let mut resumed_chunks_seen = 0usize;
    let mut final_result = None;
    let state = client
        .stream(&resubmitted.id, |event| {
            assert!(
                event.trials_done() >= last_trials,
                "tallies must be monotone"
            );
            last_trials = event.trials_done();
            match event {
                CampaignEvent::ChunkDone { resumed: true, .. } => resumed_chunks_seen += 1,
                CampaignEvent::CampaignDone { result } => final_result = Some(result.clone()),
                _ => {}
            }
        })
        .unwrap();
    assert_eq!(state, "done");
    assert_eq!(resumed_chunks_seen, resubmitted.resumed_chunks);
    assert_eq!(
        final_result.expect("stream ends with CampaignDone"),
        reference,
        "a killed-and-resumed campaign must reproduce the uninterrupted counts exactly"
    );

    // The status endpoint agrees, and shutdown stops the server cleanly.
    let status = client.status(&resubmitted.id).unwrap();
    assert_eq!(status.state, "done");
    assert_eq!(status.trials_done, reference.trials);
    assert_eq!(status.sdc_counts, reference.sdc_counts);
    client.shutdown().unwrap();
    let exit = child.wait().expect("server exits after shutdown");
    assert!(exit.success(), "serve must exit cleanly, got {exit:?}");

    let _ = std::fs::remove_dir_all(&checkpoints);
}
