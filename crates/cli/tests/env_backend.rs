//! A misconfigured `RANGER_BACKEND` environment variable must fail fast with a usage
//! error naming the known backends — not silently fall back to the f32 default the way
//! the pre-PR-7 code did. The binary is spawned as a subprocess so the env var cannot
//! race other tests that read `RANGER_BACKEND` in-process.

use std::process::Command;

#[test]
fn misconfigured_ranger_backend_env_is_a_clean_usage_error() {
    let output = Command::new(env!("CARGO_BIN_EXE_ranger-cli"))
        .args(["pipeline", "--model", "lenet", "--quick"])
        .env("RANGER_BACKEND", "warp")
        .output()
        .expect("spawn ranger-cli");
    assert!(
        !output.status.success(),
        "pipeline must not run under an unknown RANGER_BACKEND"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("RANGER_BACKEND") && stderr.contains("known backends"),
        "unexpected stderr: {stderr}"
    );
}

#[test]
fn ranger_backend_env_selects_the_simd_backend() {
    let output = Command::new(env!("CARGO_BIN_EXE_ranger-cli"))
        .args([
            "pipeline", "--model", "lenet", "--quick", "--trials", "5", "--inputs", "1",
        ])
        .env("RANGER_BACKEND", "simd")
        .output()
        .expect("spawn ranger-cli");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "pipeline failed: {stderr}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("\"backend\": \"simd\""),
        "report does not name the simd backend: {stdout}"
    );
}
