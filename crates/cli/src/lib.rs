//! Library backing the `ranger-cli` binary.
//!
//! The command-line tool wraps the workflow a user of the original Ranger artifact would
//! follow with TensorFlow checkpoints: train a benchmark model, derive restriction bounds
//! from its training data, produce a protected copy of the model, and measure SDC rates
//! with fault-injection campaigns — all against models serialized as JSON files so the
//! steps can be run and inspected independently.

#![warn(missing_docs)]

pub mod commands;
pub mod serve_commands;

use std::fmt;

/// Errors surfaced to the command-line user.
#[derive(Debug)]
pub enum CliError {
    /// The command line could not be parsed; the string is a usage message.
    Usage(String),
    /// An underlying graph/training operation failed.
    Graph(ranger_graph::GraphError),
    /// Training or the model zoo failed.
    Zoo(ranger_models::zoo::ZooError),
    /// Reading or writing a file failed.
    Io(std::io::Error),
    /// A model file could not be decoded.
    Decode(serde_json::Error),
    /// A fault-injection campaign was misconfigured or failed.
    Campaign(ranger_inject::CampaignError),
    /// The campaign service (server, client or checkpoint store) failed.
    Serve(ranger_serve::ServeError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Graph(e) => write!(f, "graph error: {e}"),
            CliError::Zoo(e) => write!(f, "training error: {e}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Decode(e) => write!(f, "could not decode model file: {e}"),
            CliError::Campaign(e) => write!(f, "campaign error: {e}"),
            CliError::Serve(e) => write!(f, "campaign service error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ranger_graph::GraphError> for CliError {
    fn from(e: ranger_graph::GraphError) -> Self {
        CliError::Graph(e)
    }
}

impl From<ranger_models::zoo::ZooError> for CliError {
    fn from(e: ranger_models::zoo::ZooError) -> Self {
        CliError::Zoo(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Decode(e)
    }
}

impl From<ranger_inject::CampaignError> for CliError {
    fn from(e: ranger_inject::CampaignError) -> Self {
        CliError::Campaign(e)
    }
}

impl From<ranger_serve::ServeError> for CliError {
    fn from(e: ranger_serve::ServeError) -> Self {
        // Unwrap the categories the CLI already reports natively; keep the
        // service-specific ones (protocol, fingerprint, corruption) intact.
        match e {
            ranger_serve::ServeError::Campaign(e) => CliError::Campaign(e),
            ranger_serve::ServeError::Io(e) => CliError::Io(e),
            ranger_serve::ServeError::Json(e) => CliError::Decode(e),
            other => CliError::Serve(other),
        }
    }
}

impl From<ranger_engine::PipelineError> for CliError {
    fn from(e: ranger_engine::PipelineError) -> Self {
        // Preserve the error category instead of collapsing everything into Usage.
        match e {
            ranger_engine::PipelineError::InvalidConfig(msg) => CliError::Usage(msg),
            ranger_engine::PipelineError::Zoo(e) => CliError::Zoo(e),
            ranger_engine::PipelineError::Graph(e) => CliError::Graph(e),
            ranger_engine::PipelineError::Campaign(e) => CliError::Campaign(e),
            ranger_engine::PipelineError::Serve(e) => CliError::from(e),
            e @ ranger_engine::PipelineError::Interrupted => {
                CliError::Serve(ranger_serve::ServeError::Protocol(e.to_string()))
            }
            ranger_engine::PipelineError::MetricsIo(e) => CliError::Io(e),
        }
    }
}

/// The usage text printed by `ranger-cli help`.
pub const USAGE: &str = "\
ranger-cli — train, protect and fault-inject the Ranger benchmark DNNs

USAGE:
    ranger-cli <command> [options]

COMMANDS:
    train    --model <name> --out <model.json> [--seed N] [--quick]
             Train a benchmark model on its synthetic dataset and save it.
    protect  --in <model.json> --out <protected.json> [--percentile P] [--fraction F]
             [--policy saturate|zero|random] [--seed N]
             Derive restriction bounds from the training data and insert Ranger.
    inject   --in <model.json> [--trials N] [--batch N] [--workers N] [--tile N|auto]
             [--inputs N] [--backend f32|fixed16|fixed32|simd] [--bits N] [--fixed16]
             [--seed N] [--metrics-json <path>] [--profile]
             Run a fault-injection campaign and report SDC rates. --batch N executes N
             trials per forward pass and --workers N runs trial chunks on an N-worker
             pool (identical results either way, less wall-clock per trial).
             --tile N runs batched passes as row groups of N trials through cache-sized
             segments of the graph (auto derives the group height from the warmed
             shapes); pure scheduling, counts stay bit-for-bit identical.
             --backend fixed16|fixed32 runs genuine fixed-point inference and flips
             bits directly in the stored integer words (faults default to the
             backend's own word format); the default f32 backend emulates fixed-point
             corruption on float compute (--fixed16 selects the 16-bit fault model).
             --backend simd runs the f32 semantics on the widest SIMD tier the host
             offers (AVX-512/AVX2/NEON), bit-for-bit equal counts, less wall-clock.
             --metrics-json writes the run's metrics snapshot (per-op plan timings,
             pool worker tallies, campaign latency histograms) as one line of JSON;
             --profile prints a per-op wall-time table. Neither changes any count.
    pipeline --model <name> [--trials N] [--batch N] [--workers N] [--tile N|auto]
             [--inputs N] [--backend f32|fixed16|fixed32|simd] [--seed N] [--percentile P] [--fraction F]
             [--policy saturate|zero|random] [--bits N] [--fixed16] [--quick]
             [--out report.json] [--metrics-json <path>] [--profile]
             Run the full profile -> protect -> inject pipeline and print the JSON report.
    info     --in <model.json>
             Print a summary of a saved model (operators, parameters, restrictions).
    serve    [--addr HOST:PORT] [--checkpoints <dir>]
             Run the campaign service: a TCP server that executes submitted campaigns
             chunk by chunk, checkpointing every completed chunk so a killed server
             resumes exactly where it stopped (default addr 127.0.0.1:7171).
    submit   --addr HOST:PORT (--model <name> | --in <model.json>) [--inputs N]
             [--trials N] [--batch N] [--workers N] [--tile N|auto]
             [--backend f32|fixed16|fixed32|simd] [--bits N] [--fixed16] [--seed N]
             Submit a campaign to a running server and print its id. Submitting an
             identical spec again resumes it from its checkpoint. With --remote the
             server coordinates instead of executing: it leases chunk ranges to
             'work' processes and merge-verifies the records they push back.
    work     --addr HOST:PORT --id <campaign-id> [--name <worker>] [--lease-ms N]
             [--claim N] [--poll-ms N]
             Join a --remote campaign as a worker host: claim an exclusive lease over
             a chunk range, execute it locally, push the records back and repeat.
             Leases expire after --lease-ms without renewal (pushes renew; default
             30000 or $RANGER_LEASE_MS), so a killed worker's range is re-leased to
             the survivors and the merged counts stay bit-for-bit identical.
    status   --addr HOST:PORT --id <campaign-id>
             Print a submitted campaign's progress: chunks done/total (and how many
             were resumed from checkpoint), trials/sec and running SDC tallies.
    stream   --addr HOST:PORT --id <campaign-id>
             Follow a campaign's event stream live: one line per completed chunk with
             cumulative tallies, ending with the final SDC rates.
    cancel   --addr HOST:PORT --id <campaign-id>
             Cooperatively stop a running campaign (completed chunks stay durable).
    metrics  --addr HOST:PORT
             Print the server's metrics-registry snapshot as one line of JSON
             (request counts, checkpoint sync latency, campaign histograms).
    shutdown --addr HOST:PORT
             Ask the server to exit.
    help     Print this message.

MODELS:
    lenet, alexnet, vgg11, vgg16, resnet18, squeezenet, dave, comma
";

/// Parses `--key value` style options (plus bare flags) from an argument list.
///
/// Unknown keys are collected verbatim so commands can reject them with a clear message.
#[derive(Debug, Default, Clone)]
pub struct Options {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Options {
    /// Parses options from raw arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let mut options = Options::default();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if let Some(key) = arg.strip_prefix("--") {
                // A value follows unless the next token is another option or absent.
                match args.get(i + 1) {
                    Some(value) if !value.starts_with("--") => {
                        options.pairs.push((key.to_string(), value.clone()));
                        i += 2;
                    }
                    _ => {
                        options.flags.push(key.to_string());
                        i += 1;
                    }
                }
            } else {
                options.flags.push(arg.clone());
                i += 1;
            }
        }
        options
    }

    /// Returns the value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Returns the value of `--key` parsed as `T`, or `default` if absent.
    ///
    /// # Errors
    ///
    /// Returns a usage error if the value is present but cannot be parsed.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid value '{raw}' for --{key}"))),
        }
    }

    /// Returns the value of `--key` or a usage error naming the missing option.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("missing required option --{key}\n\n{USAGE}")))
    }

    /// Returns `true` if the bare flag `--key` was passed.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_pairs_and_flags() {
        let opts = Options::parse(
            ["--model", "lenet", "--quick", "--seed", "7"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(opts.get("model"), Some("lenet"));
        assert_eq!(opts.get_parsed("seed", 0u64).unwrap(), 7);
        assert!(opts.has_flag("quick"));
        assert!(!opts.has_flag("full"));
        assert_eq!(opts.get("missing"), None);
        assert_eq!(opts.get_parsed("missing", 3usize).unwrap(), 3);
    }

    #[test]
    fn require_reports_missing_options() {
        let opts = Options::parse(std::iter::empty());
        let err = opts.require("in").unwrap_err();
        assert!(err.to_string().contains("--in"));
    }

    #[test]
    fn invalid_numeric_values_are_usage_errors() {
        let opts = Options::parse(["--trials", "lots"].iter().map(|s| s.to_string()));
        assert!(matches!(
            opts.get_parsed("trials", 10usize),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn last_occurrence_of_a_key_wins() {
        let opts = Options::parse(["--seed", "1", "--seed", "2"].iter().map(|s| s.to_string()));
        assert_eq!(opts.get("seed"), Some("2"));
    }
}
