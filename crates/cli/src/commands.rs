//! Implementations of the `ranger-cli` subcommands.

use crate::{CliError, Options};
use ranger::bounds::{profile_bounds, BoundsConfig};
use ranger::protect::{Protector, RangerProtector};
use ranger::transform::RangerConfig;
use ranger_datasets::driving::AngleUnit;
use ranger_engine::Pipeline;
use ranger_graph::op::RestorePolicy;
use ranger_inject::{
    run_campaign, BackendKind, CampaignConfig, ClassifierJudge, FaultModel, InjectionTarget,
    SdcJudge, SteeringJudge,
};
use ranger_models::zoo::ModelZoo;
use ranger_models::{Model, ModelConfig, ModelKind, Task, TrainConfig};
use ranger_tensor::{DataType, Tensor};
use std::path::Path;

// The saved-model file format lives with the campaign service (which must materialize
// submitted model files without the CLI); re-exported here so `train`/`protect` callers
// keep their original path to it.
pub use ranger_serve::SavedModel;

pub(crate) fn parse_model_name(name: &str) -> Result<ModelKind, CliError> {
    name.parse().map_err(CliError::Usage)
}

/// `ranger-cli train`: trains a benchmark model and saves it.
pub fn train(options: &Options) -> Result<String, CliError> {
    let kind = parse_model_name(options.require("model")?)?;
    let out = options.require("out")?.to_string();
    let seed = options.get_parsed("seed", 42u64)?;
    let config = ModelConfig::new(kind);
    let zoo = ModelZoo::with_default_dir();
    let trained = if options.has_flag("quick") {
        zoo.train_with(&config, &TrainConfig::quick(), seed)?
    } else {
        zoo.train(&config, seed)?
    };
    let saved = SavedModel {
        model: trained.model,
        seed,
        protected: false,
        percentile: None,
    };
    saved.save(Path::new(&out))?;
    Ok(format!(
        "trained {kind} (validation accuracy {:.1}%) in {:.1}s and saved it to {out}",
        trained.validation_accuracy * 100.0,
        trained.train_seconds
    ))
}

/// Parses `--backend f32|fixed16|fixed32|simd` (default: `RANGER_BACKEND`, then f32)
/// and the fault datatype that goes with it: an explicit `--fixed16` flag wins,
/// otherwise a fixed-point backend implies faults in its own word format (the only
/// valid pairing — the campaign rejects mismatches), and the f32-computing backends
/// (`f32`, `simd`) keep the paper's default fixed32 emulation.
///
/// Both the flag and the `RANGER_BACKEND` fallback reject unknown names with the known
/// backends listed — a misspelled sweep must fail loudly, not silently run f32.
pub(crate) fn parse_backend_and_datatype(
    options: &Options,
) -> Result<(BackendKind, DataType), CliError> {
    let backend = match options.get("backend") {
        None => ranger_inject::try_default_backend().map_err(CliError::Usage)?,
        Some(raw) => raw.parse().map_err(CliError::Usage)?,
    };
    let datatype = if options.has_flag("fixed16") {
        DataType::fixed16()
    } else {
        match backend.spec() {
            Some(spec) => DataType::Fixed(spec),
            None => DataType::fixed32(),
        }
    };
    Ok((backend, datatype))
}

/// Parses `--tile N|auto` (default: `RANGER_TILE`, then untiled): how many trials of
/// each batched campaign pass the tiled scheduler runs per row group. `0` disables
/// tiling, `auto` derives the group size from the warmed plan's cache footprint. Junk
/// values are rejected loudly — silently running untiled would mislabel the run.
pub(crate) fn parse_tile(options: &Options) -> Result<usize, CliError> {
    match options.get("tile") {
        None => ranger_inject::try_default_tile().map_err(CliError::Usage),
        Some(raw) if raw.eq_ignore_ascii_case("auto") => Ok(ranger_inject::TILE_AUTO),
        Some(raw) => raw.parse().map_err(|_| {
            CliError::Usage(format!(
                "invalid --tile '{raw}': expected a trials-per-row-group count (0 \
                 disables tiling) or 'auto'"
            ))
        }),
    }
}

/// Parses `--policy saturate|zero|random` into the protector for that policy.
fn parse_policy(options: &Options) -> Result<RestorePolicy, CliError> {
    match options.get("policy").unwrap_or("saturate") {
        "saturate" => Ok(RestorePolicy::Saturate),
        "zero" => Ok(RestorePolicy::Zero),
        "random" => Ok(RestorePolicy::Random),
        other => Err(CliError::Usage(format!(
            "unknown policy '{other}' (expected saturate, zero or random)"
        ))),
    }
}

/// `ranger-cli protect`: derives bounds from the training data and applies a protector.
pub fn protect(options: &Options) -> Result<String, CliError> {
    let input = options.require("in")?.to_string();
    let out = options.require("out")?.to_string();
    let percentile = options.get_parsed("percentile", 100.0f64)?;
    let fraction = options.get_parsed("fraction", ranger_engine::DEFAULT_PROFILE_FRACTION)?;
    let saved = SavedModel::load(Path::new(&input))?;
    if saved.protected {
        return Err(CliError::Usage(format!("{input} is already protected")));
    }
    let seed = options.get_parsed("seed", saved.seed)?;
    let samples = profiling_inputs(&saved.model, seed, fraction);
    let bounds = profile_bounds(
        &saved.model.graph,
        &saved.model.input_name,
        &samples,
        &BoundsConfig::with_percentile(percentile),
    )?;
    let protector = RangerProtector::new(RangerConfig::with_policy(parse_policy(options)?));
    let (graph, stats) = protector.protect(&saved.model.graph, &bounds)?;
    let mut protected = saved.clone();
    protected.model.graph = graph;
    protected.protected = true;
    protected.percentile = Some(percentile);
    protected.save(Path::new(&out))?;
    Ok(format!(
        "inserted {} range-restriction operators ({} activations, {} followers) using the {percentile}% bound; saved to {out}",
        stats.clamps_inserted, stats.activations_protected, stats.followers_protected
    ))
}

/// `ranger-cli pipeline`: the full profile → protect → inject arc in one command,
/// printing (and optionally saving) the JSON experiment record.
pub fn pipeline(options: &Options) -> Result<String, CliError> {
    let kind = parse_model_name(options.require("model")?)?;
    let seed = options.get_parsed("seed", 42u64)?;
    let trials = options.get_parsed("trials", 100usize)?;
    let batch = options.get_parsed("batch", 1usize)?;
    let workers = options.get_parsed("workers", ranger_runtime::default_workers())?;
    let inputs = options.get_parsed("inputs", 3usize)?;
    let percentile = options.get_parsed("percentile", 100.0f64)?;
    let fraction = options.get_parsed("fraction", ranger_engine::DEFAULT_PROFILE_FRACTION)?;
    let bits = options.get_parsed("bits", 1usize)?;
    let (backend, datatype) = parse_backend_and_datatype(options)?;
    let tile = parse_tile(options)?;
    let profile_ops = options.has_flag("profile");
    if profile_ops {
        // Timing slots are sized when plans warm, so the registry must be on already.
        ranger_obs::set_enabled(true);
    }

    let mut builder = Pipeline::for_model(kind)
        .seed(seed)
        .profile(BoundsConfig::with_percentile(percentile))
        .profile_fraction(fraction)
        .protect(RangerConfig::with_policy(parse_policy(options)?))
        .campaign(CampaignConfig {
            trials,
            batch,
            workers,
            backend,
            fault: FaultModel { datatype, bits },
            seed,
            tile,
        })
        .inputs(inputs);
    if options.has_flag("quick") {
        builder = builder.train(TrainConfig::quick());
    }
    if let Some(path) = options.get("metrics-json") {
        builder = builder.metrics(path);
    }
    let report = builder.run()?;
    let json = serde_json::to_string_pretty(&report)?;
    let mut out_lines = vec![json];
    if let Some(out) = options.get("out") {
        std::fs::write(out, &out_lines[0])?;
        out_lines.push(format!("(wrote {out})"));
    }
    if let Some(path) = options.get("metrics-json") {
        out_lines.push(format!("(wrote metrics snapshot to {path})"));
    }
    if profile_ops {
        out_lines.push(profile_table(&ranger_obs::registry().snapshot()));
    }
    Ok(out_lines.join("\n"))
}

/// `ranger-cli inject`: runs a fault-injection campaign against a saved model.
pub fn inject(options: &Options) -> Result<String, CliError> {
    let input = options.require("in")?.to_string();
    let trials = options.get_parsed("trials", 100usize)?;
    let batch = options.get_parsed("batch", 1usize)?;
    let workers = options.get_parsed("workers", ranger_runtime::default_workers())?;
    let inputs = options.get_parsed("inputs", 3usize)?;
    let bits = options.get_parsed("bits", 1usize)?;
    let saved = SavedModel::load(Path::new(&input))?;
    let seed = options.get_parsed("seed", saved.seed)?;
    let (backend, datatype) = parse_backend_and_datatype(options)?;
    let tile = parse_tile(options)?;
    let fault = FaultModel { datatype, bits };
    let metrics_json = options.get("metrics-json").map(str::to_string);
    let profile_ops = options.has_flag("profile");
    if metrics_json.is_some() || profile_ops {
        // Timing slots are sized when the campaign's plans warm, so the registry must
        // be on before run_campaign compiles anything. Metrics draw no RNG and never
        // steer execution: the SDC counts below are bit-for-bit the unobserved run's.
        ranger_obs::set_enabled(true);
    }

    let model = &saved.model;
    let (batches, judge): (Vec<Tensor>, Box<dyn SdcJudge>) = match model.task {
        Task::Classification { .. } => {
            let data = ModelZoo::classification_data(model.config.kind, seed);
            let n = inputs.min(data.validation.len());
            (
                (0..n).map(|i| data.validation_batch(&[i]).0).collect(),
                Box::new(ClassifierJudge::top1()),
            )
        }
        Task::Regression { unit } => {
            let data = ModelZoo::driving_data(seed);
            let n = inputs.min(data.validation.len());
            (
                (0..n)
                    .map(|i| data.validation_batch(&[i], AngleUnit::Degrees).0)
                    .collect(),
                Box::new(SteeringJudge::paper_thresholds(unit == AngleUnit::Radians)),
            )
        }
    };
    let target = InjectionTarget {
        graph: &model.graph,
        input_name: &model.input_name,
        output: model.output,
        excluded: &model.excluded_from_injection,
    };
    let config = CampaignConfig {
        trials,
        batch,
        workers,
        backend,
        fault,
        seed,
        tile,
    };
    let result = run_campaign(&target, &batches, judge.as_ref(), &config)?;
    let mut lines = vec![format!(
        "{} | {} trials x {} inputs (batch {batch}, workers {workers}, backend {backend}) | fault model: {fault}",
        if saved.protected {
            "protected with Ranger"
        } else {
            "unprotected"
        },
        trials,
        batches.len()
    )];
    for (category, rate) in result.rates() {
        lines.push(format!(
            "  {category:<14} SDC rate {:6.2}%  (±{:.2}%)",
            rate.rate_percent(),
            rate.confidence95_percent()
        ));
    }
    if let Some(path) = &metrics_json {
        let mut json = ranger_obs::registry().snapshot().to_json();
        json.push('\n');
        std::fs::write(path, json)?;
        lines.push(format!("(wrote metrics snapshot to {path})"));
    }
    if profile_ops {
        lines.push(profile_table(&ranger_obs::registry().snapshot()));
    }
    Ok(lines.join("\n"))
}

/// Renders the registry's `plan.op.<kind>.{nanos,calls}` counters as a per-op wall-time
/// table, widest op first. `calls` counts node evaluations (passes × nodes of that
/// kind); `share` is the op's fraction of all timed plan nanoseconds.
pub(crate) fn profile_table(snapshot: &ranger_obs::MetricsSnapshot) -> String {
    let mut by_kind: std::collections::BTreeMap<&str, (u64, u64)> =
        std::collections::BTreeMap::new();
    for (name, value) in snapshot.counters_with_prefix("plan.op.") {
        let rest = &name["plan.op.".len()..];
        if let Some(kind) = rest.strip_suffix(".nanos") {
            by_kind.entry(kind).or_default().0 = value;
        } else if let Some(kind) = rest.strip_suffix(".calls") {
            by_kind.entry(kind).or_default().1 = value;
        }
    }
    let mut rows: Vec<(&str, u64, u64)> = by_kind
        .into_iter()
        .map(|(kind, (nanos, calls))| (kind, nanos, calls))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let total_nanos: u64 = rows.iter().map(|&(_, nanos, _)| nanos).sum();
    let mut lines = vec![
        "per-op wall time (golden + faulty passes):".to_string(),
        format!(
            "  {:<16} {:>10} {:>12} {:>12} {:>7}",
            "op", "calls", "total ms", "mean us", "share"
        ),
    ];
    for (kind, nanos, calls) in rows {
        let mean_us = if calls > 0 {
            nanos as f64 / calls as f64 / 1_000.0
        } else {
            0.0
        };
        let share = if total_nanos > 0 {
            nanos as f64 / total_nanos as f64 * 100.0
        } else {
            0.0
        };
        lines.push(format!(
            "  {kind:<16} {calls:>10} {:>12.2} {mean_us:>12.2} {share:>6.1}%",
            nanos as f64 / 1_000_000.0
        ));
    }
    if total_nanos == 0 {
        lines.push("  (no timed plan passes were recorded)".to_string());
    }
    lines.join("\n")
}

/// `ranger-cli info`: prints a summary of a saved model.
pub fn info(options: &Options) -> Result<String, CliError> {
    let input = options.require("in")?.to_string();
    let saved = SavedModel::load(Path::new(&input))?;
    let model = &saved.model;
    let task = match model.task {
        Task::Classification { num_classes } => format!("classification ({num_classes} classes)"),
        Task::Regression { unit } => format!(
            "steering regression ({})",
            match unit {
                AngleUnit::Degrees => "degrees",
                AngleUnit::Radians => "radians",
            }
        ),
    };
    Ok(format!(
        "{}\n  task:         {}\n  operators:    {}\n  parameters:   {}\n  activations:  {}\n  restrictions: {}\n  protected:    {}{}",
        model.config.kind.paper_name(),
        task,
        model.graph.operator_nodes()?.len(),
        model.parameter_count(),
        model.activation_count(),
        // Count every range-restriction operator, whatever its out-of-bounds policy —
        // zero/random protected models are protected too.
        model.graph.restriction_count(),
        saved.protected,
        saved
            .percentile
            .map(|p| format!(" (bound percentile {p}%)"))
            .unwrap_or_default()
    ))
}

/// Builds profiling inputs for bound derivation from the model's training dataset.
fn profiling_inputs(model: &Model, seed: u64, fraction: f64) -> Vec<Tensor> {
    if model.config.kind.is_steering() {
        let data = ModelZoo::driving_data(seed);
        let n = ((data.train.len() as f64) * fraction).ceil() as usize;
        (0..n.min(data.train.len()))
            .map(|i| data.train_batch(&[i], AngleUnit::Degrees).0)
            .collect()
    } else {
        let data = ModelZoo::classification_data(model.config.kind, seed);
        let n = ((data.train.len() as f64) * fraction).ceil() as usize;
        (0..n.min(data.train.len()))
            .map(|i| data.train_batch(&[i]).0)
            .collect()
    }
}

/// Dispatches a parsed command line.
pub fn run(mut args: std::env::Args) -> Result<String, CliError> {
    let _program = args.next();
    let command = args.next().unwrap_or_else(|| "help".to_string());
    let options = Options::parse(args);
    dispatch(&command, &options)
}

/// Dispatches a command by name (separated from [`run`] for testability).
pub fn dispatch(command: &str, options: &Options) -> Result<String, CliError> {
    match command {
        "train" => train(options),
        "protect" => protect(options),
        "inject" => inject(options),
        "pipeline" => pipeline(options),
        "info" => info(options),
        "serve" => crate::serve_commands::serve(options),
        "submit" => crate::serve_commands::submit(options),
        "work" => crate::serve_commands::work(options),
        "status" => crate::serve_commands::status(options),
        "stream" => crate::serve_commands::stream(options),
        "cancel" => crate::serve_commands::cancel(options),
        "metrics" => crate::serve_commands::metrics(options),
        "shutdown" => crate::serve_commands::shutdown(options),
        "help" | "--help" | "-h" => Ok(crate::USAGE.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'\n\n{}",
            crate::USAGE
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ranger-cli-test-{}-{name}", std::process::id()))
    }

    fn opts(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn train_protect_info_inject_round_trip() {
        let model_path = tmp("lenet.json");
        let protected_path = tmp("lenet-protected.json");

        // Train with the quick recipe so the test stays fast.
        let msg = train(&opts(&[
            "--model",
            "lenet",
            "--out",
            model_path.to_str().unwrap(),
            "--seed",
            "5",
            "--quick",
        ]))
        .unwrap();
        assert!(msg.contains("LeNet"));

        // Protect it.
        let msg = protect(&opts(&[
            "--in",
            model_path.to_str().unwrap(),
            "--out",
            protected_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("range-restriction"));

        // Inspect both.
        let unprotected_info = info(&opts(&["--in", model_path.to_str().unwrap()])).unwrap();
        assert!(unprotected_info.contains("protected:    false"));
        let protected_info = info(&opts(&["--in", protected_path.to_str().unwrap()])).unwrap();
        assert!(protected_info.contains("protected:    true"));

        // Protecting an already-protected model is rejected.
        assert!(protect(&opts(&[
            "--in",
            protected_path.to_str().unwrap(),
            "--out",
            protected_path.to_str().unwrap(),
        ]))
        .is_err());

        // A small injection campaign runs on both files.
        let report = inject(&opts(&[
            "--in",
            protected_path.to_str().unwrap(),
            "--trials",
            "20",
            "--inputs",
            "1",
        ]))
        .unwrap();
        assert!(report.contains("SDC rate"));

        // The batched campaign path reports the same SDC rates for the same seed.
        let batched = inject(&opts(&[
            "--in",
            protected_path.to_str().unwrap(),
            "--trials",
            "20",
            "--inputs",
            "1",
            "--batch",
            "8",
        ]))
        .unwrap();
        let rates = |s: &str| {
            s.lines()
                .filter(|l| l.contains("SDC rate"))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(rates(&report), rates(&batched));

        // So does the parallel campaign path (4 workers, same seed).
        let parallel = inject(&opts(&[
            "--in",
            protected_path.to_str().unwrap(),
            "--trials",
            "20",
            "--inputs",
            "1",
            "--workers",
            "4",
        ]))
        .unwrap();
        assert!(parallel.contains("workers 4"));
        assert_eq!(rates(&report), rates(&parallel));

        // The genuine fixed-point backend runs the same campaign end to end, reporting
        // which backend executed it, and is reproducible run-to-run.
        let fixed = inject(&opts(&[
            "--in",
            protected_path.to_str().unwrap(),
            "--trials",
            "20",
            "--inputs",
            "1",
            "--backend",
            "fixed16",
        ]))
        .unwrap();
        assert!(fixed.contains("backend fixed16"));
        assert!(fixed.contains("fault model: 1 bit flip(s) in fixed-Q14.2"));
        let fixed_again = inject(&opts(&[
            "--in",
            protected_path.to_str().unwrap(),
            "--trials",
            "20",
            "--inputs",
            "1",
            "--backend",
            "fixed16",
        ]))
        .unwrap();
        assert_eq!(rates(&fixed), rates(&fixed_again));

        // The SIMD backend computes the same f32 semantics bit for bit, so its SDC
        // rates are identical to the scalar f32 report for the same seed.
        let simd = inject(&opts(&[
            "--in",
            protected_path.to_str().unwrap(),
            "--trials",
            "20",
            "--inputs",
            "1",
            "--backend",
            "simd",
        ]))
        .unwrap();
        assert!(simd.contains("backend simd"));
        assert_eq!(rates(&report), rates(&simd));

        // An unknown backend is a usage error; a contradictory backend/fault pairing is
        // rejected by the campaign with a descriptive message.
        let err = inject(&opts(&[
            "--in",
            protected_path.to_str().unwrap(),
            "--backend",
            "tpu",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown backend"));
        let err = inject(&opts(&[
            "--in",
            protected_path.to_str().unwrap(),
            "--backend",
            "fixed32",
            "--fixed16",
        ]))
        .unwrap_err();
        assert!(
            err.to_string().contains("does not match"),
            "unexpected error: {err}"
        );

        // A zero batch or worker count is rejected with a descriptive campaign error.
        let err = inject(&opts(&[
            "--in",
            protected_path.to_str().unwrap(),
            "--batch",
            "0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("batch must be positive"));
        let err = inject(&opts(&[
            "--in",
            protected_path.to_str().unwrap(),
            "--workers",
            "0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("workers must be positive"));

        let _ = std::fs::remove_file(model_path);
        let _ = std::fs::remove_file(protected_path);
    }

    #[test]
    fn dispatch_rejects_unknown_commands_and_prints_help() {
        assert!(dispatch("frobnicate", &opts(&[])).is_err());
        assert!(dispatch("help", &opts(&[])).unwrap().contains("USAGE"));
        assert!(dispatch("help", &opts(&[])).unwrap().contains("pipeline"));
    }

    #[test]
    fn pipeline_command_prints_a_json_report() {
        // --quick trains with the fast recipe and bypasses the zoo cache entirely.
        let report = pipeline(&opts(&[
            "--model", "lenet", "--quick", "--seed", "3", "--trials", "10", "--inputs", "1",
        ]))
        .unwrap();
        assert!(report.contains("\"model\": \"LeNet\""));
        assert!(report.contains("\"protector\": \"ranger\""));
        assert!(report.contains("\"campaign\""));
    }

    #[test]
    fn unknown_policy_is_a_usage_error() {
        let err = pipeline(&opts(&["--model", "lenet", "--policy", "clip"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn unknown_model_name_is_a_usage_error() {
        let err = train(&opts(&["--model", "resnext", "--out", "/tmp/x.json"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = info(&opts(&["--in", "/nonexistent/model.json"])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
