//! The campaign-service subcommands: `serve` runs the server, the rest are thin
//! wrappers over [`ranger_serve::Client`].
//!
//! `serve` and `stream` print progress directly (line-buffered) instead of returning one
//! final string, because their whole point is incremental output: the server announces
//! its address the moment it is listening — the e2e tests wait on that line — and the
//! stream client renders every chunk event as it arrives.

use crate::commands::{parse_backend_and_datatype, parse_model_name, parse_tile};
use crate::{CliError, Options};
use ranger_inject::{CampaignConfig, CampaignResult, FaultModel};
use ranger_serve::{
    default_lease_ms, CampaignEvent, CampaignServer, CampaignSpec, Client, ModelSpec, WorkEvent,
    WorkOptions,
};
use std::io::Write;

/// The address used when `--addr` is not given.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7171";
/// The checkpoint directory used when `--checkpoints` is not given.
pub const DEFAULT_CHECKPOINT_DIR: &str = "ranger-checkpoints";

/// `ranger-cli serve`: runs the campaign service until a shutdown request arrives.
pub fn serve(options: &Options) -> Result<String, CliError> {
    let addr = options.get("addr").unwrap_or(DEFAULT_ADDR);
    let checkpoints = options
        .get("checkpoints")
        .unwrap_or(DEFAULT_CHECKPOINT_DIR)
        .to_string();
    let server = CampaignServer::bind(addr, &checkpoints)?;
    let local = server.local_addr()?;
    // Announce readiness on stdout before blocking in the accept loop; scripts (and the
    // kill-and-resume e2e test) wait for this exact prefix.
    println!("ranger serve: listening on {local} (checkpoints in {checkpoints})");
    std::io::stdout().flush()?;
    server.run()?;
    Ok("server stopped".to_string())
}

/// Builds the campaign spec a `submit` command line describes.
fn spec_from_options(options: &Options) -> Result<CampaignSpec, CliError> {
    let model = match (options.get("model"), options.get("in")) {
        (Some(name), None) => {
            // Validate the name client-side so typos fail before touching the server.
            parse_model_name(name)?;
            ModelSpec::Kind {
                name: name.to_string(),
            }
        }
        (None, Some(path)) => ModelSpec::Path {
            path: path.to_string(),
        },
        _ => {
            return Err(CliError::Usage(
                "submit needs exactly one of --model <name> or --in <model.json>".to_string(),
            ))
        }
    };
    let (backend, datatype) = parse_backend_and_datatype(options)?;
    Ok(CampaignSpec {
        model,
        inputs: options.get_parsed("inputs", 3usize)?,
        config: CampaignConfig {
            trials: options.get_parsed("trials", 100usize)?,
            batch: options.get_parsed("batch", 1usize)?,
            workers: options.get_parsed("workers", ranger_runtime::default_workers())?,
            backend,
            fault: FaultModel {
                datatype,
                bits: options.get_parsed("bits", 1usize)?,
            },
            seed: options.get_parsed("seed", 42u64)?,
            tile: parse_tile(options)?,
        },
    })
}

fn client_for(options: &Options) -> Client {
    Client::new(options.get("addr").unwrap_or(DEFAULT_ADDR))
}

/// `ranger-cli submit`: submits (or resumes) a campaign and prints its id. With
/// `--remote` the server only coordinates: it leases chunk ranges to `work` processes
/// and merges the records they push back, executing nothing itself.
pub fn submit(options: &Options) -> Result<String, CliError> {
    let spec = spec_from_options(options)?;
    let addr = options.get("addr").unwrap_or(DEFAULT_ADDR);
    let client = client_for(options);
    if options.has_flag("remote") {
        let submitted = client.submit_remote(&spec)?;
        return Ok(format!(
            "submitted remote campaign {} ({} chunks, {} resumed from checkpoint)\n\
             execute it with: ranger-cli work --addr {} --id {}",
            submitted.id, submitted.total_chunks, submitted.resumed_chunks, addr, submitted.id
        ));
    }
    let submitted = client.submit(&spec)?;
    Ok(format!(
        "submitted campaign {} ({} chunks, {} resumed from checkpoint)\nfollow it with: ranger-cli stream --addr {} --id {}",
        submitted.id,
        submitted.total_chunks,
        submitted.resumed_chunks,
        addr,
        submitted.id
    ))
}

/// `ranger-cli work`: joins a coordinated campaign as a worker host — claims chunk
/// ranges, executes them locally, pushes the records back and repeats until the
/// campaign reaches a terminal state.
pub fn work(options: &Options) -> Result<String, CliError> {
    let addr = options.get("addr").unwrap_or(DEFAULT_ADDR);
    let id = options.require("id")?;
    let defaults = WorkOptions::default();
    let work_options = WorkOptions {
        worker: options
            .get("name")
            .map(str::to_string)
            .unwrap_or(defaults.worker),
        ttl_ms: options.get_parsed("lease-ms", default_lease_ms())?,
        claim_chunks: options.get_parsed("claim", defaults.claim_chunks)?,
        poll_ms: options.get_parsed("poll-ms", defaults.poll_ms)?,
    };
    let report = ranger_serve::work(addr, id, &work_options, |event| {
        println!("{}", render_work_event(event));
        let _ = std::io::stdout().flush();
    })?;
    Ok(format!(
        "worker {} finished: campaign {} is {} ({} chunks / {} trials executed here)",
        work_options.worker,
        report.id,
        report.final_state,
        report.chunks_executed,
        report.trials_executed
    ))
}

/// One human-readable line per worker event.
fn render_work_event(event: &WorkEvent) -> String {
    match event {
        WorkEvent::Claimed { start, end, token } => {
            format!("claimed chunks {start}..{end} (lease token {token})")
        }
        WorkEvent::Pushed { index } => format!("pushed chunk {index}"),
        WorkEvent::LeaseLost { token, reason } => {
            format!("lease {token} lost ({reason}); reclaiming")
        }
        WorkEvent::Waiting { retry_ms } => format!("no free chunks; retrying in {retry_ms}ms"),
    }
}

/// `ranger-cli status`: prints a campaign's progress summary.
pub fn status(options: &Options) -> Result<String, CliError> {
    let info = client_for(options).status(options.require("id")?)?;
    let mut lines = vec![
        format!("campaign {}", info.id),
        format!("  state:   {}", info.state),
        format!(
            "  chunks:  {}/{} done ({} resumed from checkpoint)",
            info.done_chunks, info.total_chunks, info.resumed_chunks
        ),
        format!(
            "  trials:  {}/{} tallied ({:.1}/s executed)",
            info.trials_done, info.trials_total, info.trials_per_sec
        ),
    ];
    for (category, count) in info.categories.iter().zip(&info.sdc_counts) {
        lines.push(format!("  {category:<14} {count} SDC so far"));
    }
    Ok(lines.join("\n"))
}

/// `ranger-cli stream`: follows a campaign's event stream, one line per event, and
/// finishes with the final SDC rates.
pub fn stream(options: &Options) -> Result<String, CliError> {
    let id = options.require("id")?.to_string();
    let mut done: Option<CampaignResult> = None;
    let state = client_for(options).stream(&id, |event| {
        println!("{}", render_event(event));
        let _ = std::io::stdout().flush();
        if let CampaignEvent::CampaignDone { result } = event {
            done = Some(result.clone());
        }
    })?;
    let mut lines = vec![format!("campaign {id}: {state}")];
    if let Some(result) = done {
        for (category, rate) in result.rates() {
            lines.push(format!(
                "  {category:<14} SDC rate {:6.2}%  (±{:.2}%)",
                rate.rate_percent(),
                rate.confidence95_percent()
            ));
        }
    }
    Ok(lines.join("\n"))
}

/// `ranger-cli cancel`: cooperatively stops a running campaign.
pub fn cancel(options: &Options) -> Result<String, CliError> {
    let id = options.require("id")?;
    client_for(options).cancel(id)?;
    Ok(format!(
        "cancel requested for campaign {id}; completed chunks stay in its checkpoint"
    ))
}

/// `ranger-cli metrics`: fetches and prints the server's metrics-registry snapshot
/// (one line of JSON; pipe through a JSON formatter for a readable view).
pub fn metrics(options: &Options) -> Result<String, CliError> {
    Ok(client_for(options).metrics()?)
}

/// `ranger-cli shutdown`: asks the server to exit.
pub fn shutdown(options: &Options) -> Result<String, CliError> {
    client_for(options).shutdown()?;
    Ok("server asked to shut down".to_string())
}

/// One human-readable line per campaign event.
fn render_event(event: &CampaignEvent) -> String {
    match event {
        CampaignEvent::GoldenDone {
            total_chunks,
            resumed_chunks,
            trials_total,
            categories,
        } => format!(
            "golden passes done: {trials_total} trials over {total_chunks} chunks \
             ({resumed_chunks} resumed), categories: {}",
            categories.join(", ")
        ),
        CampaignEvent::ChunkDone {
            chunk,
            resumed,
            cumulative,
            ..
        } => format!(
            "chunk {:>4}{} input {} trials {}..{} | cumulative: {} trials, SDC {:?}",
            chunk.index,
            if *resumed { " (resumed)" } else { "" },
            chunk.input,
            chunk.start,
            chunk.start + chunk.len,
            cumulative.trials,
            cumulative.sdc_counts
        ),
        CampaignEvent::CampaignDone { result } => format!(
            "campaign done: {} trials, SDC {:?}, {} unactivated",
            result.trials, result.sdc_counts, result.unactivated
        ),
    }
}
