//! `ranger-cli`: train, protect and fault-inject the Ranger benchmark DNNs from the
//! command line. Run `ranger-cli help` for usage.

fn main() {
    match ranger_cli::commands::run(std::env::args()) {
        Ok(message) => println!("{message}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
