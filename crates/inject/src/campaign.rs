//! Campaign runner: golden runs, repeated faulty runs and SDC statistics.
//!
//! The campaign runner is the reproduction's hottest path — `inputs × trials` forward
//! passes of the same graph — so it executes through a compiled
//! [`ExecPlan`](ranger_graph::ExecPlan): the topological order is planned once per
//! campaign instead of once per trial, and the node-value store's slot spine is reused
//! across trials (per-operator output tensors are still allocated each pass). The
//! per-trial results are bit-for-bit identical to running each pass through a fresh
//! [`Executor`](ranger_graph::Executor).

use crate::fault::FaultModel;
use crate::injector::FaultInjector;
use crate::judge::SdcJudge;
use crate::space::InjectionSpace;
use crate::InjectionTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ranger_graph::exec::NoopInterceptor;
use ranger_graph::GraphError;
use ranger_tensor::stats::Proportion;
use ranger_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Configuration of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of fault-injection trials per input.
    pub trials: usize,
    /// The fault model applied in every trial.
    pub fault: FaultModel,
    /// RNG seed so campaigns are reproducible.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 100,
            fault: FaultModel::default(),
            seed: 0,
        }
    }
}

/// The outcome of a fault-injection campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The SDC categories evaluated (one entry per judge category).
    pub categories: Vec<String>,
    /// Number of trials that were SDCs, per category.
    pub sdc_counts: Vec<u64>,
    /// Total number of injected trials (per category the denominator is the same).
    pub trials: u64,
    /// Trials whose fault was masked before reaching any value (the planned operator was
    /// not executed or the chosen element did not exist); these still count as trials —
    /// they are benign faults.
    pub unactivated: u64,
}

impl CampaignResult {
    /// Returns the SDC rate (with confidence interval) for category `index`, or `None` if
    /// the index is out of range.
    pub fn sdc_rate(&self, index: usize) -> Option<Proportion> {
        self.sdc_counts
            .get(index)
            .map(|&count| Proportion::new(count, self.trials))
    }

    /// Returns the SDC rate for the named category, if present.
    pub fn sdc_rate_for(&self, category: &str) -> Option<Proportion> {
        self.categories
            .iter()
            .position(|c| c == category)
            .and_then(|i| self.sdc_rate(i))
    }

    /// Returns (category, SDC-rate) pairs for every category.
    pub fn rates(&self) -> Vec<(String, Proportion)> {
        self.categories
            .iter()
            .cloned()
            .zip(
                self.sdc_counts
                    .iter()
                    .map(|&c| Proportion::new(c, self.trials)),
            )
            .collect()
    }

    /// Merges two campaign results over the same categories (e.g. different inputs).
    ///
    /// # Panics
    ///
    /// Panics if the category lists differ.
    pub fn merge(&self, other: &CampaignResult) -> CampaignResult {
        assert_eq!(
            self.categories, other.categories,
            "cannot merge campaigns with different categories"
        );
        CampaignResult {
            categories: self.categories.clone(),
            sdc_counts: self
                .sdc_counts
                .iter()
                .zip(&other.sdc_counts)
                .map(|(a, b)| a + b)
                .collect(),
            trials: self.trials + other.trials,
            unactivated: self.unactivated + other.unactivated,
        }
    }
}

/// Runs a fault-injection campaign: for every input, one golden (fault-free) run followed
/// by `config.trials` faulty runs, each injecting one random fault according to the fault
/// model, judged against the golden output.
///
/// # Errors
///
/// Returns a [`GraphError`] if any forward pass fails.
pub fn run_campaign(
    target: &InjectionTarget<'_>,
    inputs: &[Tensor],
    judge: &dyn SdcJudge,
    config: &CampaignConfig,
) -> Result<CampaignResult, GraphError> {
    let categories = judge.categories();
    let mut result = CampaignResult {
        categories: categories.clone(),
        sdc_counts: vec![0; categories.len()],
        trials: 0,
        unactivated: 0,
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Plan once, then reuse the value buffers across every golden and faulty pass.
    let plan = target.graph.compile()?;
    let mut values = plan.buffers();

    for input in inputs {
        let feeds = [(target.input_name, input.clone())];
        plan.run_into(&mut values, &feeds, &mut NoopInterceptor)?;
        let golden = values.get(target.output)?.clone();
        let space = InjectionSpace::build(target, input)?;
        for _ in 0..config.trials {
            let mut injector = FaultInjector::plan_random(config.fault, &space, &mut rng);
            plan.run_into(&mut values, &feeds, &mut injector)?;
            let faulty = values.get(target.output)?;
            if !injector.fully_injected() {
                result.unactivated += 1;
            }
            let verdicts = judge.judge(&golden, faulty);
            for (count, sdc) in result.sdc_counts.iter_mut().zip(verdicts) {
                if sdc {
                    *count += 1;
                }
            }
            result.trials += 1;
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::judge::ClassifierJudge;
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::{Executor, GraphBuilder, Op};

    fn toy_classifier() -> (ranger_graph::Graph, ranger_graph::NodeId) {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 6, 12, &mut rng);
        let h = b.relu(h);
        let h = b.dense(h, 12, 8, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 8, 4, &mut rng);
        let probs = b.softmax(y);
        (b.into_graph(), probs)
    }

    #[test]
    fn campaign_is_reproducible_for_a_seed() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6])];
        let config = CampaignConfig {
            trials: 50,
            fault: FaultModel::single_bit_fixed32(),
            seed: 7,
        };
        let judge = ClassifierJudge::top1();
        let a = run_campaign(&target, &inputs, &judge, &config).unwrap();
        let b = run_campaign(&target, &inputs, &judge, &config).unwrap();
        assert_eq!(a.sdc_counts, b.sdc_counts);
        assert_eq!(a.trials, 50);
    }

    /// The ExecPlan-backed campaign must match a hand-rolled Executor-per-pass campaign
    /// trial-for-trial: same RNG stream, same interception points, same SDC counts.
    #[test]
    fn plan_backed_campaign_matches_executor_per_pass() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.3)];
        let config = CampaignConfig {
            trials: 40,
            fault: FaultModel::single_bit_fixed32(),
            seed: 21,
        };
        let judge = ClassifierJudge::top1();
        let fast = run_campaign(&target, &inputs, &judge, &config).unwrap();

        // Legacy-style reference: a fresh Executor run per pass.
        let mut counts = vec![0u64; 1];
        let mut rng = StdRng::seed_from_u64(config.seed);
        let exec = Executor::new(&graph);
        for input in &inputs {
            let golden = exec.run_simple(&[("x", input.clone())], probs).unwrap();
            let space = InjectionSpace::build(&target, input).unwrap();
            for _ in 0..config.trials {
                let mut injector = FaultInjector::plan_random(config.fault, &space, &mut rng);
                let faulty = exec
                    .run_with(&[("x", input.clone())], probs, &mut injector)
                    .unwrap();
                for (count, sdc) in counts.iter_mut().zip(judge.judge(&golden, &faulty)) {
                    if sdc {
                        *count += 1;
                    }
                }
            }
        }
        assert_eq!(fast.sdc_counts, counts);
    }

    #[test]
    fn protection_with_clamps_never_increases_sdc_rate() {
        let (graph, probs) = toy_classifier();
        let inputs = vec![Tensor::ones(vec![1, 6])];
        let config = CampaignConfig {
            trials: 150,
            fault: FaultModel::single_bit_fixed32(),
            seed: 11,
        };
        let judge = ClassifierJudge::top1();

        let unprotected = {
            let target = InjectionTarget {
                graph: &graph,
                input_name: "x",
                output: probs,
                excluded: &[],
            };
            run_campaign(&target, &inputs, &judge, &config).unwrap()
        };

        // Protect every ReLU output with a generous clamp.
        let mut protected_graph = graph.clone();
        let relu_ids: Vec<_> = protected_graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Relu))
            .map(|n| n.id)
            .collect();
        for id in relu_ids {
            protected_graph
                .insert_after(id, "ranger", Op::Clamp { lo: 0.0, hi: 10.0 })
                .unwrap();
        }
        let protected = {
            let target = InjectionTarget {
                graph: &protected_graph,
                input_name: "x",
                output: probs,
                excluded: &[],
            };
            run_campaign(&target, &inputs, &judge, &config).unwrap()
        };
        let protected_rate = protected.sdc_rate(0).expect("category 0 exists").rate();
        let unprotected_rate = unprotected.sdc_rate(0).expect("category 0 exists").rate();
        assert!(
            protected_rate <= unprotected_rate,
            "range restriction must not increase the SDC rate ({protected_rate} vs {unprotected_rate})"
        );
    }

    #[test]
    fn merge_accumulates_counts() {
        let a = CampaignResult {
            categories: vec!["top-1".into()],
            sdc_counts: vec![3],
            trials: 10,
            unactivated: 1,
        };
        let b = CampaignResult {
            categories: vec!["top-1".into()],
            sdc_counts: vec![5],
            trials: 20,
            unactivated: 0,
        };
        let merged = a.merge(&b);
        assert_eq!(merged.sdc_counts, vec![8]);
        assert_eq!(merged.trials, 30);
        assert_eq!(merged.unactivated, 1);
        assert!((merged.sdc_rate(0).unwrap().rate() - 8.0 / 30.0).abs() < 1e-12);
        assert!(merged.sdc_rate_for("top-1").is_some());
        assert!(merged.sdc_rate_for("nope").is_none());
    }

    #[test]
    fn out_of_range_category_is_none_not_a_panic() {
        let result = CampaignResult {
            categories: vec!["top-1".into()],
            sdc_counts: vec![2],
            trials: 10,
            unactivated: 0,
        };
        assert!(result.sdc_rate(0).is_some());
        assert!(result.sdc_rate(1).is_none());
        assert!(result.sdc_rate(usize::MAX).is_none());
    }

    #[test]
    #[should_panic(expected = "different categories")]
    fn merge_rejects_mismatched_categories() {
        let a = CampaignResult {
            categories: vec!["top-1".into()],
            sdc_counts: vec![0],
            trials: 0,
            unactivated: 0,
        };
        let b = CampaignResult {
            categories: vec!["top-5".into()],
            sdc_counts: vec![0],
            trials: 0,
            unactivated: 0,
        };
        a.merge(&b);
    }
}
