//! Campaign runner: golden runs, repeated faulty runs and SDC statistics.
//!
//! The campaign runner is the reproduction's hottest path — `inputs × trials` forward
//! passes of the same graph — so it executes through a compiled
//! [`ExecPlan`](ranger_graph::ExecPlan): the topological order is planned once per
//! campaign instead of once per trial, and the plan's buffer arena makes repeated passes
//! allocation-free. With [`CampaignConfig::batch`] above 1 the runner additionally
//! amortizes fixed per-pass costs across trials: golden outputs for a whole chunk of
//! inputs are computed in one `[N, ...]` forward pass, and each faulty pass executes
//! `batch` trials at once with a per-row fault plan
//! ([`BatchFaultInjector`]). Because every operator
//! processes batch rows independently, the per-trial results — and therefore the SDC
//! counts — are bit-for-bit identical to the `batch = 1` per-sample path, which in turn
//! matches running each pass through a fresh [`Executor`](ranger_graph::Executor).

use crate::fault::FaultModel;
use crate::injector::{BatchFaultInjector, FaultInjector};
use crate::judge::SdcJudge;
use crate::space::InjectionSpace;
use crate::InjectionTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ranger_graph::exec::NoopInterceptor;
use ranger_graph::GraphError;
use ranger_tensor::stats::Proportion;
use ranger_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of fault-injection trials per input.
    pub trials: usize,
    /// How many trials (or golden inputs) to execute per batched forward pass. `1` runs
    /// the reference per-sample path; larger values run the same trials in `[batch, ...]`
    /// passes with bit-for-bit identical SDC counts.
    pub batch: usize,
    /// The fault model applied in every trial.
    pub fault: FaultModel,
    /// RNG seed so campaigns are reproducible.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 100,
            batch: 1,
            fault: FaultModel::default(),
            seed: 0,
        }
    }
}

impl CampaignConfig {
    /// Checks the configuration for degenerate values.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidConfig`] if `trials` or `batch` is zero — either
    /// would silently produce a campaign that measures nothing.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.trials == 0 {
            return Err(CampaignError::InvalidConfig(
                "campaign trials must be positive: 0 trials would report an SDC rate over \
                 an empty sample"
                    .to_string(),
            ));
        }
        if self.batch == 0 {
            return Err(CampaignError::InvalidConfig(
                "campaign batch must be positive: use batch = 1 for the per-sample path \
                 or batch = k to run k trials per forward pass"
                    .to_string(),
            ));
        }
        Ok(())
    }
}

/// Errors surfaced by [`run_campaign`].
#[derive(Debug)]
pub enum CampaignError {
    /// The campaign configuration or its inputs are degenerate (see
    /// [`CampaignConfig::validate`]).
    InvalidConfig(String),
    /// A forward pass failed.
    Graph(GraphError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidConfig(message) => {
                write!(f, "invalid campaign configuration: {message}")
            }
            CampaignError::Graph(e) => write!(f, "campaign forward pass failed: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::InvalidConfig(_) => None,
            CampaignError::Graph(e) => Some(e),
        }
    }
}

impl From<GraphError> for CampaignError {
    fn from(e: GraphError) -> Self {
        CampaignError::Graph(e)
    }
}

/// The outcome of a fault-injection campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The SDC categories evaluated (one entry per judge category).
    pub categories: Vec<String>,
    /// Number of trials that were SDCs, per category.
    pub sdc_counts: Vec<u64>,
    /// Total number of injected trials (per category the denominator is the same).
    pub trials: u64,
    /// Trials whose fault was masked before reaching any value (the planned operator was
    /// not executed or the chosen element did not exist); these still count as trials —
    /// they are benign faults.
    pub unactivated: u64,
}

impl CampaignResult {
    /// Returns the SDC rate (with confidence interval) for category `index`, or `None` if
    /// the index is out of range.
    pub fn sdc_rate(&self, index: usize) -> Option<Proportion> {
        self.sdc_counts
            .get(index)
            .map(|&count| Proportion::new(count, self.trials))
    }

    /// Returns the SDC rate for the named category, if present.
    pub fn sdc_rate_for(&self, category: &str) -> Option<Proportion> {
        self.categories
            .iter()
            .position(|c| c == category)
            .and_then(|i| self.sdc_rate(i))
    }

    /// Returns (category, SDC-rate) pairs for every category.
    pub fn rates(&self) -> Vec<(String, Proportion)> {
        self.categories
            .iter()
            .cloned()
            .zip(
                self.sdc_counts
                    .iter()
                    .map(|&c| Proportion::new(c, self.trials)),
            )
            .collect()
    }

    /// Merges two campaign results over the same categories (e.g. different inputs).
    ///
    /// # Panics
    ///
    /// Panics if the category lists differ.
    pub fn merge(&self, other: &CampaignResult) -> CampaignResult {
        assert_eq!(
            self.categories, other.categories,
            "cannot merge campaigns with different categories"
        );
        CampaignResult {
            categories: self.categories.clone(),
            sdc_counts: self
                .sdc_counts
                .iter()
                .zip(&other.sdc_counts)
                .map(|(a, b)| a + b)
                .collect(),
            trials: self.trials + other.trials,
            unactivated: self.unactivated + other.unactivated,
        }
    }
}

/// Runs a fault-injection campaign: for every input, one golden (fault-free) run followed
/// by `config.trials` faulty runs, each injecting one random fault according to the fault
/// model, judged against the golden output.
///
/// With `config.batch > 1` the golden runs are computed one input-chunk per pass and the
/// faulty runs one trial-chunk per pass; the SDC counts are bit-for-bit identical to the
/// `batch = 1` path (same RNG stream, same fault plans, same per-trial outputs).
///
/// # Errors
///
/// Returns a [`CampaignError`] if the configuration is degenerate or any forward pass
/// fails.
pub fn run_campaign(
    target: &InjectionTarget<'_>,
    inputs: &[Tensor],
    judge: &dyn SdcJudge,
    config: &CampaignConfig,
) -> Result<CampaignResult, CampaignError> {
    config.validate()?;
    let categories = judge.categories();
    let mut result = CampaignResult {
        categories: categories.clone(),
        sdc_counts: vec![0; categories.len()],
        trials: 0,
        unactivated: 0,
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Plan once, then reuse the value buffers across every golden and faulty pass.
    let plan = target.graph.compile()?;
    let mut values = plan.buffers();

    if config.batch <= 1 {
        // The reference per-sample path: one forward pass per golden run and per trial.
        for input in inputs {
            let feeds = [(target.input_name, input.clone())];
            plan.run_into(&mut values, &feeds, &mut NoopInterceptor)?;
            let golden = values.get(target.output)?.clone();
            let space = InjectionSpace::build(target, input)?;
            for _ in 0..config.trials {
                let mut injector = FaultInjector::plan_random(config.fault, &space, &mut rng);
                plan.run_into(&mut values, &feeds, &mut injector)?;
                let faulty = values.get(target.output)?;
                record_trial(
                    &mut result,
                    judge,
                    &golden,
                    faulty,
                    injector.fully_injected(),
                );
            }
        }
        return Ok(result);
    }

    // Batched path. Golden outputs first: stack chunks of distinct inputs into one
    // [N, ...] pass each and slice the per-input outputs back out.
    let mut goldens: Vec<Tensor> = Vec::with_capacity(inputs.len());
    for chunk in inputs.chunks(config.batch) {
        let stacked = Tensor::stack_batch(chunk).map_err(|e| {
            CampaignError::InvalidConfig(format!("campaign inputs cannot be batched: {e}"))
        })?;
        plan.run_into(
            &mut values,
            &[(target.input_name, stacked)],
            &mut NoopInterceptor,
        )?;
        let output = values.get(target.output)?;
        let mut row = 0usize;
        for input in chunk {
            let rows = input.batch_rows();
            goldens.push(slice_row_group(output, row, rows)?);
            row += rows;
        }
    }

    // Faulty runs: all of an input's fault plans are drawn up front (in exactly the order
    // the per-sample path draws them, so the RNG stream is identical), then executed
    // `batch` trials per forward pass.
    for (input, golden) in inputs.iter().zip(&goldens) {
        let space = InjectionSpace::build(target, input)?;
        let plans: Vec<FaultInjector> = (0..config.trials)
            .map(|_| FaultInjector::plan_random(config.fault, &space, &mut rng))
            .collect();
        let rows_per_trial = input.batch_rows();
        for chunk in plans.chunks(config.batch) {
            let feed = input.repeat_batch(chunk.len()).map_err(|e| {
                CampaignError::InvalidConfig(format!("campaign input cannot be batched: {e}"))
            })?;
            let mut injector = BatchFaultInjector::new(chunk.to_vec(), &space);
            plan.run_into(&mut values, &[(target.input_name, feed)], &mut injector)?;
            if let Some(violation) = injector.violation() {
                return Err(CampaignError::InvalidConfig(violation.to_string()));
            }
            let output = values.get(target.output)?;
            for (t, trial) in injector.trials().iter().enumerate() {
                let faulty = slice_row_group(output, t * rows_per_trial, rows_per_trial)?;
                record_trial(&mut result, judge, golden, &faulty, trial.fully_injected());
            }
        }
    }
    Ok(result)
}

/// Counts one faulty run into the campaign statistics.
fn record_trial(
    result: &mut CampaignResult,
    judge: &dyn SdcJudge,
    golden: &Tensor,
    faulty: &Tensor,
    fully_injected: bool,
) {
    if !fully_injected {
        result.unactivated += 1;
    }
    for (count, sdc) in result
        .sdc_counts
        .iter_mut()
        .zip(judge.judge(golden, faulty))
    {
        if sdc {
            *count += 1;
        }
    }
    result.trials += 1;
}

/// Extracts rows `[start, start + rows)` of a batched output as its own tensor — the
/// value the same forward pass would have produced for that input (or trial) alone.
fn slice_row_group(output: &Tensor, start: usize, rows: usize) -> Result<Tensor, CampaignError> {
    output.slice_rows(start, rows).map_err(|_| {
        CampaignError::InvalidConfig(format!(
            "campaign output of shape {:?} does not carry the leading batch dimension \
             (needed rows [{start}, {})) — run this campaign with batch = 1",
            output.dims(),
            start + rows
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::judge::ClassifierJudge;
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::{Executor, GraphBuilder, Op};

    fn toy_classifier() -> (ranger_graph::Graph, ranger_graph::NodeId) {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 6, 12, &mut rng);
        let h = b.relu(h);
        let h = b.dense(h, 12, 8, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 8, 4, &mut rng);
        let probs = b.softmax(y);
        (b.into_graph(), probs)
    }

    #[test]
    fn campaign_is_reproducible_for_a_seed() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6])];
        let config = CampaignConfig {
            trials: 50,
            batch: 1,
            fault: FaultModel::single_bit_fixed32(),
            seed: 7,
        };
        let judge = ClassifierJudge::top1();
        let a = run_campaign(&target, &inputs, &judge, &config).unwrap();
        let b = run_campaign(&target, &inputs, &judge, &config).unwrap();
        assert_eq!(a.sdc_counts, b.sdc_counts);
        assert_eq!(a.trials, 50);
    }

    /// The ExecPlan-backed campaign must match a hand-rolled Executor-per-pass campaign
    /// trial-for-trial: same RNG stream, same interception points, same SDC counts.
    #[test]
    fn plan_backed_campaign_matches_executor_per_pass() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.3)];
        let config = CampaignConfig {
            trials: 40,
            batch: 1,
            fault: FaultModel::single_bit_fixed32(),
            seed: 21,
        };
        let judge = ClassifierJudge::top1();
        let fast = run_campaign(&target, &inputs, &judge, &config).unwrap();

        // Legacy-style reference: a fresh Executor run per pass.
        let mut counts = vec![0u64; 1];
        let mut rng = StdRng::seed_from_u64(config.seed);
        let exec = Executor::new(&graph);
        for input in &inputs {
            let golden = exec.run_simple(&[("x", input.clone())], probs).unwrap();
            let space = InjectionSpace::build(&target, input).unwrap();
            for _ in 0..config.trials {
                let mut injector = FaultInjector::plan_random(config.fault, &space, &mut rng);
                let faulty = exec
                    .run_with(&[("x", input.clone())], probs, &mut injector)
                    .unwrap();
                for (count, sdc) in counts.iter_mut().zip(judge.judge(&golden, &faulty)) {
                    if sdc {
                        *count += 1;
                    }
                }
            }
        }
        assert_eq!(fast.sdc_counts, counts);
    }

    /// The batched campaign acceptance: identical SDC counts, trials and unactivated
    /// tallies for every batch size, including sizes that do not divide the trial count.
    #[test]
    fn batched_campaign_matches_per_sample_campaign_bit_for_bit() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![
            Tensor::ones(vec![1, 6]),
            Tensor::filled(vec![1, 6], 0.3),
            Tensor::filled(vec![1, 6], -0.7),
        ];
        let judge = ClassifierJudge::top1();
        let reference = run_campaign(
            &target,
            &inputs,
            &judge,
            &CampaignConfig {
                trials: 30,
                batch: 1,
                fault: FaultModel::single_bit_fixed32(),
                seed: 13,
            },
        )
        .unwrap();
        for batch in [2usize, 7, 16, 30, 64] {
            let batched = run_campaign(
                &target,
                &inputs,
                &judge,
                &CampaignConfig {
                    trials: 30,
                    batch,
                    fault: FaultModel::single_bit_fixed32(),
                    seed: 13,
                },
            )
            .unwrap();
            assert_eq!(
                batched.sdc_counts, reference.sdc_counts,
                "batch = {batch} diverged from the per-sample SDC counts"
            );
            assert_eq!(batched.trials, reference.trials, "batch = {batch}");
            assert_eq!(
                batched.unactivated, reference.unactivated,
                "batch = {batch}"
            );
        }
    }

    /// A graph with an injectable operator computed purely from constants cannot batch
    /// that operator's faults; the batched campaign must reject it loudly instead of
    /// silently reporting different counts than `batch = 1`.
    #[test]
    fn batched_campaign_rejects_non_batch_scaling_operators() {
        use ranger_graph::{Graph, Op};
        let mut g = Graph::new();
        let x = g.add_input("x");
        // A large constant-fed Identity dominates the injection space, so the seeded
        // plans are certain to target it within a handful of trials.
        let c = g.add_const("c", Tensor::ones(vec![50]), false);
        let _frozen = g.add_node("frozen", Op::Identity, vec![c]);
        let y = g.add_node("double", Op::ScalarMul { factor: 2.0 }, vec![x]);
        let target = InjectionTarget {
            graph: &g,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 3])];
        let judge = ClassifierJudge::top1();
        let config = |batch| CampaignConfig {
            trials: 20,
            batch,
            fault: FaultModel::single_bit_fixed32(),
            seed: 4,
        };
        // The per-sample path handles such graphs fine.
        run_campaign(&target, &inputs, &judge, &config(1)).unwrap();
        // The batched path refuses with a descriptive error.
        let err = run_campaign(&target, &inputs, &judge, &config(4)).unwrap_err();
        assert!(
            err.to_string().contains("batch dimension"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn degenerate_configs_are_rejected_with_descriptive_errors() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6])];
        let judge = ClassifierJudge::top1();
        for (config, needle) in [
            (
                CampaignConfig {
                    trials: 0,
                    ..CampaignConfig::default()
                },
                "trials must be positive",
            ),
            (
                CampaignConfig {
                    batch: 0,
                    ..CampaignConfig::default()
                },
                "batch must be positive",
            ),
        ] {
            let err = run_campaign(&target, &inputs, &judge, &config).unwrap_err();
            assert!(
                matches!(err, CampaignError::InvalidConfig(_)),
                "expected InvalidConfig, got {err:?}"
            );
            assert!(
                err.to_string().contains(needle),
                "error '{err}' should mention '{needle}'"
            );
        }
        assert!(CampaignConfig::default().validate().is_ok());
    }

    #[test]
    fn campaign_config_round_trips_through_json_with_its_batch() {
        let config = CampaignConfig {
            trials: 10,
            batch: 9,
            fault: FaultModel::single_bit_fixed32(),
            seed: 3,
        };
        let json = serde_json::to_string(&config).unwrap();
        assert!(json.contains("\"batch\""));
        let revived: CampaignConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(revived, config);
    }

    #[test]
    fn protection_with_clamps_never_increases_sdc_rate() {
        let (graph, probs) = toy_classifier();
        let inputs = vec![Tensor::ones(vec![1, 6])];
        let config = CampaignConfig {
            trials: 150,
            batch: 1,
            fault: FaultModel::single_bit_fixed32(),
            seed: 11,
        };
        let judge = ClassifierJudge::top1();

        let unprotected = {
            let target = InjectionTarget {
                graph: &graph,
                input_name: "x",
                output: probs,
                excluded: &[],
            };
            run_campaign(&target, &inputs, &judge, &config).unwrap()
        };

        // Protect every ReLU output with a generous clamp.
        let mut protected_graph = graph.clone();
        let relu_ids: Vec<_> = protected_graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Relu))
            .map(|n| n.id)
            .collect();
        for id in relu_ids {
            protected_graph
                .insert_after(id, "ranger", Op::Clamp { lo: 0.0, hi: 10.0 })
                .unwrap();
        }
        let protected = {
            let target = InjectionTarget {
                graph: &protected_graph,
                input_name: "x",
                output: probs,
                excluded: &[],
            };
            run_campaign(&target, &inputs, &judge, &config).unwrap()
        };
        let protected_rate = protected.sdc_rate(0).expect("category 0 exists").rate();
        let unprotected_rate = unprotected.sdc_rate(0).expect("category 0 exists").rate();
        assert!(
            protected_rate <= unprotected_rate,
            "range restriction must not increase the SDC rate ({protected_rate} vs {unprotected_rate})"
        );
    }

    #[test]
    fn merge_accumulates_counts() {
        let a = CampaignResult {
            categories: vec!["top-1".into()],
            sdc_counts: vec![3],
            trials: 10,
            unactivated: 1,
        };
        let b = CampaignResult {
            categories: vec!["top-1".into()],
            sdc_counts: vec![5],
            trials: 20,
            unactivated: 0,
        };
        let merged = a.merge(&b);
        assert_eq!(merged.sdc_counts, vec![8]);
        assert_eq!(merged.trials, 30);
        assert_eq!(merged.unactivated, 1);
        assert!((merged.sdc_rate(0).unwrap().rate() - 8.0 / 30.0).abs() < 1e-12);
        assert!(merged.sdc_rate_for("top-1").is_some());
        assert!(merged.sdc_rate_for("nope").is_none());
    }

    #[test]
    fn out_of_range_category_is_none_not_a_panic() {
        let result = CampaignResult {
            categories: vec!["top-1".into()],
            sdc_counts: vec![2],
            trials: 10,
            unactivated: 0,
        };
        assert!(result.sdc_rate(0).is_some());
        assert!(result.sdc_rate(1).is_none());
        assert!(result.sdc_rate(usize::MAX).is_none());
    }

    #[test]
    #[should_panic(expected = "different categories")]
    fn merge_rejects_mismatched_categories() {
        let a = CampaignResult {
            categories: vec!["top-1".into()],
            sdc_counts: vec![0],
            trials: 0,
            unactivated: 0,
        };
        let b = CampaignResult {
            categories: vec!["top-5".into()],
            sdc_counts: vec![0],
            trials: 0,
            unactivated: 0,
        };
        a.merge(&b);
    }
}
