//! Campaign runner: golden runs, repeated faulty runs and SDC statistics.
//!
//! The campaign runner is the reproduction's hottest path — `inputs × trials` forward
//! passes of the same graph — so it executes through a compiled
//! [`ExecPlan`]: the topological order is planned once per
//! campaign instead of once per trial, and the plan's buffer arena makes repeated passes
//! allocation-free. With [`CampaignConfig::batch`] above 1 the runner additionally
//! amortizes fixed per-pass costs across trials: golden outputs for a whole chunk of
//! inputs are computed in one `[N, ...]` forward pass, and each faulty pass executes
//! `batch` trials at once with a per-row fault plan
//! ([`BatchFaultInjector`]). With [`CampaignConfig::workers`] above 1 the faulty passes
//! additionally run on a work-stealing [`ThreadPool`], one buffer arena per worker. With
//! [`CampaignConfig::backend`] the whole campaign — golden passes included — executes on
//! an alternative [`ExecBackend`](ranger_graph::ExecBackend): on the fixed16/fixed32
//! backends the model genuinely computes in the Q format and faults flip bits directly
//! in the stored integer words.
//!
//! # Determinism
//!
//! Every trial draws its fault plan from an **independent, index-keyed RNG stream**:
//! trial `t` of input `i` seeds its generator from
//! [`trial_stream_seed`]`(config.seed, i, t)` (see [`trial_rng`]) and draws the whole
//! plan from that generator. Plans therefore depend only on logical indices, never on
//! execution order — the serial path, the batched path and the parallel path draw
//! identical plans, and the SDC/benign counts are **bit-for-bit identical for any worker
//! count and any batch size** (pinned by unit tests here and proptests in
//! `tests/pipeline_parity.rs`). Per-trial outputs also match running each pass through a
//! fresh [`Executor`](ranger_graph::Executor).

use crate::fault::FaultModel;
use crate::injector::{BatchFaultInjector, FaultInjector};
use crate::judge::SdcJudge;
use crate::space::InjectionSpace;
use crate::InjectionTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ranger_graph::exec::{NoopInterceptor, Values};
use ranger_graph::{
    default_backend, BackendKind, ExecPlan, GraphError, TiledSchedule, DEFAULT_TILE_BUDGET_BYTES,
};
use ranger_runtime::{trial_stream_seed, ThreadPool};
use ranger_tensor::stats::Proportion;
use ranger_tensor::{DataType, Tensor};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CampaignConfig {
    /// Number of fault-injection trials per input.
    pub trials: usize,
    /// How many trials (or golden inputs) to execute per batched forward pass. `1` runs
    /// the reference per-sample path; larger values run the same trials in `[batch, ...]`
    /// passes with bit-for-bit identical SDC counts.
    pub batch: usize,
    /// How many worker threads execute the faulty passes. `1` runs everything inline on
    /// the calling thread; larger values run trial chunks on a work-stealing pool with
    /// one buffer arena per worker. Any worker count produces bit-for-bit identical
    /// SDC counts (fault plans are keyed by `(input, trial)` index, not by schedule).
    pub workers: usize,
    /// The execution backend every forward pass (golden and faulty) runs on. On a
    /// fixed-point backend the model genuinely computes in that Q format and faults flip
    /// bits directly in the stored integer words; the fault datatype must then match the
    /// backend's format ([`CampaignConfig::validate`] rejects mismatches). `F32` is the
    /// reference path, where fixed-point fault models emulate the corruption by
    /// encode → flip → decode on float values.
    pub backend: BackendKind,
    /// The fault model applied in every trial.
    pub fault: FaultModel,
    /// RNG seed so campaigns are reproducible.
    pub seed: u64,
    /// How many trials of a batched pass execute per row group on the tiled scheduler.
    /// `0` (the default) runs every batched pass untiled; `k` runs the tileable segments
    /// of the plan over row groups of `k` trials each, so a segment's live activations
    /// stay cache-sized instead of scaling with the whole batch; [`TILE_AUTO`] derives
    /// the group size from the warmed plan's per-row footprint against
    /// [`DEFAULT_TILE_BUDGET_BYTES`]. Tiling is a pure scheduling knob: every tile size
    /// reports SDC counts bit-for-bit identical to the untiled batched pass (fault plans
    /// stay keyed by `(input, trial)` index and the injector translates row-group
    /// coordinates). Ignored on the per-sample path (`batch = 1`).
    pub tile: usize,
}

// Hand-written (the vendored serde derive has no `#[serde(default)]`): configs
// serialized before the tiled scheduler existed — persisted fingerprints, checkpoint
// manifests — must keep deserializing, with a missing `tile` meaning untiled.
impl serde::Deserialize for CampaignConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: serde::Deserialize>(
            value: &serde::Value,
            name: &str,
        ) -> Result<T, serde::Error> {
            T::from_value(value.get_field(name).unwrap_or(&serde::Value::Null))
                .map_err(|e| serde::Error::new(format!("CampaignConfig.{name}: {e}")))
        }
        if value.as_object().is_none() {
            return Err(serde::Error::new(
                "expected object for struct CampaignConfig",
            ));
        }
        Ok(CampaignConfig {
            trials: field(value, "trials")?,
            batch: field(value, "batch")?,
            workers: field(value, "workers")?,
            backend: field(value, "backend")?,
            fault: field(value, "fault")?,
            seed: field(value, "seed")?,
            tile: match value.get_field("tile") {
                Some(_) => field(value, "tile")?,
                None => 0,
            },
        })
    }
}

/// Sentinel for [`CampaignConfig::tile`]: derive the row-group size from the warmed
/// plan's per-row activation footprint so each segment's working set fits
/// [`DEFAULT_TILE_BUDGET_BYTES`].
pub const TILE_AUTO: usize = usize::MAX;

impl Default for CampaignConfig {
    fn default() -> Self {
        let backend = default_backend();
        CampaignConfig {
            trials: 100,
            batch: 1,
            workers: ranger_runtime::default_workers(),
            backend,
            // Keep the default fault consistent with the default backend, so a
            // `RANGER_BACKEND` sweep never manufactures an invalid pairing.
            fault: match backend.spec() {
                Some(spec) => FaultModel {
                    datatype: DataType::Fixed(spec),
                    bits: 1,
                },
                None => FaultModel::default(),
            },
            seed: 0,
            tile: default_tile(),
        }
    }
}

/// The default row-group size for campaign configurations: the `RANGER_TILE` environment
/// variable if set (an empty value counts as unset), otherwise `0` (untiled).
///
/// Accepts a trial count (`RANGER_TILE=4`) or `auto` ([`TILE_AUTO`]). Reading the
/// environment here — once, at configuration-default time, never inside the executors —
/// lets a CI job sweep an entire test suite through the tiled scheduler
/// (`RANGER_TILE=4 cargo test`) without every call site growing a knob, mirroring
/// `RANGER_BACKEND` and `RANGER_WORKERS`.
///
/// # Errors
///
/// Returns an error if `RANGER_TILE` is set to something that is neither a number nor
/// `auto`. A misspelled sweep must fail loudly: silently falling back to untiled would
/// run — and report timings for — the wrong scheduler.
pub fn try_default_tile() -> Result<usize, String> {
    match std::env::var("RANGER_TILE") {
        Ok(value) if !value.is_empty() => {
            if value.eq_ignore_ascii_case("auto") {
                Ok(TILE_AUTO)
            } else {
                value.parse::<usize>().map_err(|_| {
                    format!(
                        "invalid RANGER_TILE '{value}': expected a trials-per-row-group \
                         count (0 disables tiling) or 'auto'"
                    )
                })
            }
        }
        _ => Ok(0),
    }
}

/// [`try_default_tile`], panicking on a misconfigured `RANGER_TILE`.
///
/// Infallible call sites (configuration `Default` impls) use this; surfaces with an
/// error channel (the CLI) use [`try_default_tile`] and report cleanly.
///
/// # Panics
///
/// Panics if `RANGER_TILE` is set to an unrecognised value.
pub fn default_tile() -> usize {
    match try_default_tile() {
        Ok(tile) => tile,
        Err(e) => panic!("{e}"),
    }
}

impl CampaignConfig {
    /// Checks the configuration for degenerate values and invalid pairings.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidConfig`] if `trials`, `batch` or `workers` is
    /// zero — the first would silently produce a campaign that measures nothing, the
    /// other two describe an executor that can never run a pass — or if a fixed-point
    /// backend is paired with a fault model of a different datatype (e.g. fixed16 faults
    /// on the fixed32 backend): word-level flips only make sense in the backend's own
    /// format, and silently reinterpreting the fault would diverge from both paths.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.trials == 0 {
            return Err(CampaignError::InvalidConfig(
                "campaign trials must be positive: 0 trials would report an SDC rate over \
                 an empty sample"
                    .to_string(),
            ));
        }
        if self.batch == 0 {
            return Err(CampaignError::InvalidConfig(
                "campaign batch must be positive: use batch = 1 for the per-sample path \
                 or batch = k to run k trials per forward pass"
                    .to_string(),
            ));
        }
        if self.workers == 0 {
            return Err(CampaignError::InvalidConfig(
                "campaign workers must be positive: use workers = 1 for the serial path \
                 or workers = k to run trial chunks on a k-worker pool"
                    .to_string(),
            ));
        }
        if let Some(spec) = self.backend.spec() {
            if self.fault.datatype != DataType::Fixed(spec) {
                return Err(CampaignError::InvalidConfig(format!(
                    "fault model datatype {} does not match the {} backend's word format \
                     ({spec}): on a fixed-point backend faults flip bits directly in the \
                     stored integer words, so the fault datatype must be the backend's own \
                     format — use a fixed-{spec} fault model, or run on the f32 backend to \
                     emulate {} corruption on float compute",
                    self.fault.datatype, self.backend, self.fault.datatype
                )));
            }
        }
        Ok(())
    }
}

/// Errors surfaced by [`run_campaign`].
#[derive(Debug)]
pub enum CampaignError {
    /// The campaign configuration or its inputs are degenerate (see
    /// [`CampaignConfig::validate`]).
    InvalidConfig(String),
    /// A forward pass failed.
    Graph(GraphError),
    /// Several independent work units failed. `first` is the error of the earliest unit
    /// in `(input, trial)` order — the same error a serial campaign would have stopped
    /// on, identified by its `(input, chunk)` coordinates — and `suppressed` counts the
    /// additional unit failures that were observed but not reported individually (a
    /// parallel campaign lets in-flight units complete after a failure, so a
    /// multi-chunk service failure can produce many).
    Failures {
        /// The earliest failure in `(input, trial)` order.
        first: Box<CampaignError>,
        /// The input index of the earliest failing work unit.
        input: usize,
        /// The canonical chunk index ([`TrialChunk::index`]) of the earliest failing
        /// work unit.
        chunk: usize,
        /// How many further unit failures were suppressed behind `first`.
        suppressed: usize,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidConfig(message) => {
                write!(f, "invalid campaign configuration: {message}")
            }
            CampaignError::Graph(e) => write!(f, "campaign forward pass failed: {e}"),
            CampaignError::Failures {
                first,
                input,
                chunk,
                suppressed,
            } => {
                write!(
                    f,
                    "{first} (first failing work unit: input {input}, chunk {chunk}; plus \
                     {suppressed} additional work-unit failure(s) suppressed)"
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::InvalidConfig(_) => None,
            CampaignError::Graph(e) => Some(e),
            CampaignError::Failures { first, .. } => Some(first.as_ref()),
        }
    }
}

impl From<GraphError> for CampaignError {
    fn from(e: GraphError) -> Self {
        CampaignError::Graph(e)
    }
}

/// The outcome of a fault-injection campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The SDC categories evaluated (one entry per judge category).
    pub categories: Vec<String>,
    /// Number of trials that were SDCs, per category.
    pub sdc_counts: Vec<u64>,
    /// Total number of injected trials (per category the denominator is the same).
    pub trials: u64,
    /// Trials whose fault was masked before reaching any value (the planned operator was
    /// not executed or the chosen element did not exist); these still count as trials —
    /// they are benign faults.
    pub unactivated: u64,
}

impl CampaignResult {
    /// Returns the SDC rate (with confidence interval) for category `index`, or `None` if
    /// the index is out of range.
    pub fn sdc_rate(&self, index: usize) -> Option<Proportion> {
        self.sdc_counts
            .get(index)
            .map(|&count| Proportion::new(count, self.trials))
    }

    /// Returns the SDC rate for the named category, if present.
    pub fn sdc_rate_for(&self, category: &str) -> Option<Proportion> {
        self.categories
            .iter()
            .position(|c| c == category)
            .and_then(|i| self.sdc_rate(i))
    }

    /// Returns (category, SDC-rate) pairs for every category.
    pub fn rates(&self) -> Vec<(String, Proportion)> {
        self.categories
            .iter()
            .cloned()
            .zip(
                self.sdc_counts
                    .iter()
                    .map(|&c| Proportion::new(c, self.trials)),
            )
            .collect()
    }

    /// Accumulates one work unit's partial tally into this result.
    ///
    /// Campaign counts are order-independent sums, so absorbing the same set of tallies
    /// in any order — serial, work-stealing completion order, or a checkpoint-resumed
    /// mixture — produces bit-for-bit identical totals.
    ///
    /// # Panics
    ///
    /// Panics if the tally's category count differs from this result's.
    pub fn absorb(&mut self, tally: &ChunkTally) {
        assert_eq!(
            self.sdc_counts.len(),
            tally.sdc_counts.len(),
            "cannot absorb a tally with a different category count"
        );
        for (count, partial) in self.sdc_counts.iter_mut().zip(&tally.sdc_counts) {
            *count += partial;
        }
        self.trials += tally.trials;
        self.unactivated += tally.unactivated;
    }

    /// Merges two campaign results over the same categories (e.g. different inputs).
    ///
    /// # Panics
    ///
    /// Panics if the category lists differ.
    pub fn merge(&self, other: &CampaignResult) -> CampaignResult {
        assert_eq!(
            self.categories, other.categories,
            "cannot merge campaigns with different categories"
        );
        CampaignResult {
            categories: self.categories.clone(),
            sdc_counts: self
                .sdc_counts
                .iter()
                .zip(&other.sdc_counts)
                .map(|(a, b)| a + b)
                .collect(),
            trials: self.trials + other.trials,
            unactivated: self.unactivated + other.unactivated,
        }
    }
}

/// Returns the RNG that draws the fault plan of trial `trial` on input `input` for a
/// campaign seeded with `seed`.
///
/// This is the reproduction's **canonical draw order**: one independent generator per
/// `(input, trial)` pair, seeded from
/// [`trial_stream_seed`]`(seed, input, trial)`. Every campaign path — serial, batched,
/// parallel — draws each trial's plan from exactly this generator, which is what makes
/// the reported counts independent of batch size and worker count. Reference
/// implementations (e.g. the executor-per-pass parity tests) must derive their plans the
/// same way to match a campaign trial-for-trial.
pub fn trial_rng(seed: u64, input: usize, trial: usize) -> StdRng {
    StdRng::seed_from_u64(trial_stream_seed(seed, input as u64, trial as u64))
}

/// One schedulable campaign work unit: `len` consecutive trials of one input.
///
/// `index` is the chunk's position in the campaign's **canonical chunk order** (inputs
/// ascending, trial ranges ascending within an input) — the key a checkpoint store uses
/// to mark a chunk as completed across process restarts. Because fault plans are keyed
/// by `(input, trial)` index, the trials covered by a chunk are a pure function of the
/// chunk geometry: any partition of the trial space into chunks reproduces the exact
/// counts of any other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialChunk {
    /// Position in the canonical chunk order.
    pub index: usize,
    /// Index of the input this chunk injects into.
    pub input: usize,
    /// First trial (inclusive) of the range.
    pub start: usize,
    /// Number of consecutive trials the chunk executes.
    pub len: usize,
}

/// Partial campaign statistics tallied by one work unit, in the same category order as
/// the campaign's [`CampaignResult`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkTally {
    /// SDC trials observed by this unit, per judge category.
    pub sdc_counts: Vec<u64>,
    /// Trials this unit executed.
    pub trials: u64,
    /// Trials whose fault never activated (still counted as benign trials).
    pub unactivated: u64,
}

impl ChunkTally {
    fn new(categories: usize) -> Self {
        ChunkTally {
            sdc_counts: vec![0; categories],
            trials: 0,
            unactivated: 0,
        }
    }

    /// Counts one faulty run into the tally.
    fn record(&mut self, judge: &dyn SdcJudge, golden: &Tensor, faulty: &Tensor, injected: bool) {
        if !injected {
            self.unactivated += 1;
        }
        for (count, sdc) in self.sdc_counts.iter_mut().zip(judge.judge(golden, faulty)) {
            if sdc {
                *count += 1;
            }
        }
        self.trials += 1;
    }
}

/// The canonical trials-per-work-unit for `config` (the partition [`run_campaign`] and
/// [`PreparedCampaign::new`] use).
///
/// With batching enabled every unit is exactly one batched forward pass. On the
/// per-sample path the unit size only affects scheduling granularity (never the results,
/// which are keyed by trial index): chunks are sized so each worker sees a handful of
/// units — enough for stealing to rebalance stragglers without paying per-trial
/// task overhead — and capped so campaigns with many trials still interleave inputs.
pub fn default_chunk_len(config: &CampaignConfig) -> usize {
    if config.batch > 1 {
        config.batch
    } else {
        config.trials.div_ceil(config.workers * 4).clamp(1, 32)
    }
}

/// Decomposes a campaign over `num_inputs` inputs into its canonical chunk list:
/// `chunk_len` consecutive trials per unit, inputs ascending, trial ranges ascending
/// within an input, `TrialChunk::index` numbering the units `0..`.
///
/// Any `chunk_len` produces the same campaign counts (trials are index-keyed); it is a
/// scheduling and checkpoint-granularity knob only. Batched campaigns execute one chunk
/// per forward pass, so their chunk length must equal the batch size
/// ([`PreparedCampaign::with_chunk_len`] enforces this).
pub fn campaign_chunks(
    config: &CampaignConfig,
    num_inputs: usize,
    chunk_len: usize,
) -> Vec<TrialChunk> {
    assert!(chunk_len > 0, "chunk length must be positive");
    (0..num_inputs)
        .flat_map(|input| {
            (0..config.trials)
                .step_by(chunk_len)
                .map(move |start| (input, start, chunk_len.min(config.trials - start)))
        })
        .enumerate()
        .map(|(index, (input, start, len))| TrialChunk {
            index,
            input,
            start,
            len,
        })
        .collect()
}

/// Runs a fault-injection campaign: for every input, one golden (fault-free) run followed
/// by `config.trials` faulty runs, each injecting one random fault according to the fault
/// model, judged against the golden output.
///
/// Trial `t` of input `i` draws its fault plan from the index-keyed generator
/// [`trial_rng`]`(config.seed, i, t)`, so the reported counts are a pure function of the
/// configuration: with `config.batch > 1` the faulty runs execute one trial-chunk per
/// `[batch, ...]` pass, with `config.workers > 1` the chunks run on a work-stealing
/// [`ThreadPool`] (one plan buffer arena per worker, partial tallies reduced in chunk
/// order) — and every combination produces SDC/benign counts **bit-for-bit identical**
/// to the serial per-sample path.
///
/// # Errors
///
/// Returns a [`CampaignError`] if the configuration is degenerate or any forward pass
/// fails.
pub fn run_campaign(
    target: &InjectionTarget<'_>,
    inputs: &[Tensor],
    judge: &dyn SdcJudge,
    config: &CampaignConfig,
) -> Result<CampaignResult, CampaignError> {
    let prepared = PreparedCampaign::new(target, inputs, judge, config)?;
    let mut result = prepared.empty_result();
    let chunks = prepared.chunks();

    // Cold-path registry lookup: one histogram record per campaign, not per trial.
    // Recorded on success only, so the distribution is of completed campaigns.
    let run_hist =
        ranger_obs::enabled().then(|| ranger_obs::registry().histogram("campaign.run_nanos"));
    let run_start = run_hist.as_ref().map(|_| std::time::Instant::now());

    let tallies: Vec<ChunkTally> = if config.workers <= 1 {
        // Serial: every unit runs inline in one arena; the collect short-circuits, so a
        // failing unit stops the campaign immediately.
        let mut values = prepared.buffers();
        chunks
            .iter()
            .map(|&unit| prepared.run_chunk(&mut values, unit))
            .collect::<Result<_, _>>()?
    } else {
        // Parallel: units run on the pool, each worker owning its own arena; the pool
        // returns tallies in unit order whatever the scheduling was. In-flight units
        // still complete after a failure; the error reported is deterministically the
        // first in (input, trial) order, annotated with its (input, chunk) identity and
        // the count of further failures.
        let prepared = &prepared;
        collect_unit_results(
            chunks,
            ThreadPool::new(config.workers).run_with(
                |_worker| prepared.buffers(),
                chunks
                    .iter()
                    .map(|&unit| move |values: &mut Values| prepared.run_chunk(values, unit)),
            ),
        )?
    };
    // Reduce in (input, trial) order (the counts are order-independent sums).
    for tally in &tallies {
        result.absorb(tally);
    }
    prepared.publish_metrics();
    if let (Some(hist), Some(start)) = (run_hist, run_start) {
        hist.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    Ok(result)
}

/// Reduces per-unit results: all tallies, or the first error in unit order — identified
/// by its `(input, chunk)` coordinates — with the count of additional suppressed
/// failures attached (so a multi-chunk service failure is never silently truncated to
/// one anonymous error).
///
/// `chunks` must be the unit list the results were produced from, in the same order.
fn collect_unit_results(
    chunks: &[TrialChunk],
    results: Vec<Result<ChunkTally, CampaignError>>,
) -> Result<Vec<ChunkTally>, CampaignError> {
    debug_assert_eq!(chunks.len(), results.len());
    let failures = results.iter().filter(|r| r.is_err()).count();
    let mut tallies = Vec::with_capacity(results.len());
    for (position, result) in results.into_iter().enumerate() {
        match result {
            Ok(tally) => tallies.push(tally),
            Err(first) => {
                return Err(if failures > 1 {
                    let unit = chunks[position];
                    CampaignError::Failures {
                        first: Box::new(first),
                        input: unit.input,
                        chunk: unit.index,
                        suppressed: failures - 1,
                    }
                } else {
                    first
                });
            }
        }
    }
    Ok(tallies)
}

/// A campaign compiled down to its schedulable work units: the execution plan, the
/// golden outputs, the per-input injection spaces and the canonical chunk list.
///
/// This is the seam the streaming campaign service (`ranger-serve`) builds on: prepare
/// once, then execute any subset of [`PreparedCampaign::chunks`] in any order — on any
/// executor — and sum the [`ChunkTally`]s. Because fault plans are keyed by
/// `(input, trial)` index, every such execution reproduces the counts of
/// [`run_campaign`] bit for bit; skipping chunks whose tallies were already persisted by
/// a checkpoint store is how a killed campaign resumes without re-running its prefix.
pub struct PreparedCampaign<'a> {
    target: &'a InjectionTarget<'a>,
    inputs: &'a [Tensor],
    judge: &'a dyn SdcJudge,
    config: CampaignConfig,
    plan: ExecPlan<'a>,
    goldens: Vec<Tensor>,
    spaces: Vec<InjectionSpace>,
    categories: Vec<String>,
    chunks: Vec<TrialChunk>,
    metrics: Option<CampaignMetrics>,
    tiled: Option<TiledCampaign>,
}

/// The tiled-scheduler state of a prepared campaign: the segment schedule (computed once
/// per campaign, not per pass) and the resolved row-group height every batched pass —
/// golden and faulty — runs with.
struct TiledCampaign {
    schedule: TiledSchedule,
    tile_rows: usize,
}

/// Metric handles for the campaign hot path, resolved once at preparation time so
/// executing a chunk never takes the registry lock.
///
/// `None` when metrics were disabled at preparation: the hot path then skips even
/// the clock reads. Recording is pure observation — latencies and counts are
/// written, never read back, so enabling metrics cannot change a single draw or
/// verdict (pinned by `tests/metrics_determinism.rs`).
struct CampaignMetrics {
    /// Latency of each golden (fault-free) forward pass.
    golden_pass_nanos: std::sync::Arc<ranger_obs::Histogram>,
    /// Latency of each faulty forward pass (one trial per-sample, one chunk batched).
    faulty_pass_nanos: std::sync::Arc<ranger_obs::Histogram>,
    /// Completion latency of each work unit, quantiles included.
    chunk_nanos: std::sync::Arc<ranger_obs::Histogram>,
    /// Trials executed; divide by `campaign.run_nanos` for trials/sec.
    trials: std::sync::Arc<ranger_obs::Counter>,
}

impl CampaignMetrics {
    fn resolve() -> Option<Self> {
        if !ranger_obs::enabled() {
            return None;
        }
        let registry = ranger_obs::registry();
        Some(CampaignMetrics {
            golden_pass_nanos: registry.histogram("campaign.golden_pass_nanos"),
            faulty_pass_nanos: registry.histogram("campaign.faulty_pass_nanos"),
            chunk_nanos: registry.histogram("campaign.chunk_nanos"),
            trials: registry.counter("campaign.trials"),
        })
    }
}

impl<'a> PreparedCampaign<'a> {
    /// Prepares a campaign with the canonical chunk length ([`default_chunk_len`]).
    ///
    /// # Errors
    ///
    /// Returns a [`CampaignError`] if the configuration is degenerate, the graph cannot
    /// be compiled on the configured backend, or a golden pass fails.
    pub fn new(
        target: &'a InjectionTarget<'a>,
        inputs: &'a [Tensor],
        judge: &'a dyn SdcJudge,
        config: &CampaignConfig,
    ) -> Result<Self, CampaignError> {
        // Validate before computing the default chunk length, which divides by `workers`.
        config.validate()?;
        Self::with_chunk_len(target, inputs, judge, config, default_chunk_len(config))
    }

    /// Prepares a campaign partitioned into `chunk_len`-trial work units.
    ///
    /// Any chunk length reproduces the same counts; it only sets scheduling and
    /// checkpoint granularity. Batched campaigns execute one chunk per `[batch, ...]`
    /// forward pass, so `chunk_len` must equal `config.batch` when batching is enabled.
    ///
    /// # Errors
    ///
    /// See [`PreparedCampaign::new`]; additionally rejects a zero `chunk_len` and a
    /// batched configuration whose `chunk_len` differs from the batch size.
    pub fn with_chunk_len(
        target: &'a InjectionTarget<'a>,
        inputs: &'a [Tensor],
        judge: &'a dyn SdcJudge,
        config: &CampaignConfig,
        chunk_len: usize,
    ) -> Result<Self, CampaignError> {
        config.validate()?;
        if chunk_len == 0 {
            return Err(CampaignError::InvalidConfig(
                "campaign chunk length must be positive".to_string(),
            ));
        }
        if config.batch > 1 && chunk_len != config.batch {
            return Err(CampaignError::InvalidConfig(format!(
                "campaign chunk length {chunk_len} does not match batch size {}: a \
                 batched campaign executes exactly one chunk per forward pass",
                config.batch
            )));
        }
        // Plan once onto the configured backend (an uncompilable graph errors even for
        // an empty input list, as it always has); golden and faulty passes execute on
        // the same backend, so on a fixed-point backend the whole campaign — reference
        // outputs included — is genuine fixed-point inference. Warming runs one
        // single-row pass: that records every per-row shape (all the tiled scheduler
        // needs — `derive_tile_rows` sizes row groups from `dims[1..]`, which a lead of
        // 1 records exactly) at 1/batch the cost of warming with the batched feed. On
        // LeNet at batch 64 the batched warm pass costs as much compute as a whole
        // 64-trial campaign, which single-handedly erased batching's throughput win.
        // The price is one allocation burst on each worker arena's first batched pass
        // (the cold-store contract: first pass sizes, every later pass is
        // allocation-free); that is per worker per campaign, not per chunk, and
        // disappears against any real trial count.
        let plan = target.graph.compile_with(config.backend.backend())?;
        let categories = judge.categories();
        let metrics = CampaignMetrics::resolve();
        if inputs.is_empty() {
            return Ok(PreparedCampaign {
                target,
                inputs,
                judge,
                config: *config,
                plan,
                goldens: Vec::new(),
                spaces: Vec::new(),
                categories,
                chunks: Vec::new(),
                metrics,
                tiled: None,
            });
        }
        plan.warm(&[(target.input_name, inputs[0].clone())])?;
        // Resolve the tiled schedule after warming: TILE_AUTO sizes row groups from the
        // warmed per-node shapes, and a plan with no tileable segment (everything behind
        // a barrier) simply stays untiled. Tiling only reshapes batched passes, so the
        // per-sample path ignores the knob entirely.
        let tiled = if config.batch > 1 && config.tile != 0 {
            let schedule = plan.tiled_schedule(&[target.output]);
            if schedule.segments() == 0 {
                None
            } else {
                let rows_per_trial = inputs[0].batch_rows().max(1);
                let tile_trials = if config.tile == TILE_AUTO {
                    (plan.derive_tile_rows(&schedule, DEFAULT_TILE_BUDGET_BYTES) / rows_per_trial)
                        .max(1)
                } else {
                    config.tile
                };
                Some(TiledCampaign {
                    schedule,
                    tile_rows: tile_trials.saturating_mul(rows_per_trial),
                })
            }
        } else {
            None
        };
        let mut values = plan.buffers();
        let goldens = golden_outputs(
            &plan,
            &mut values,
            target,
            inputs,
            config,
            metrics.as_ref(),
            tiled.as_ref(),
        )?;
        let spaces: Vec<InjectionSpace> = inputs
            .iter()
            .map(|input| InjectionSpace::build_on(&plan, target, input))
            .collect::<Result<_, _>>()?;
        let chunks = campaign_chunks(config, inputs.len(), chunk_len);
        Ok(PreparedCampaign {
            target,
            inputs,
            judge,
            config: *config,
            plan,
            goldens,
            spaces,
            categories,
            chunks,
            metrics,
            tiled,
        })
    }

    /// The campaign's work units in canonical order.
    pub fn chunks(&self) -> &[TrialChunk] {
        &self.chunks
    }

    /// The judge categories, in the order every tally and result reports them.
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// The configuration this campaign was prepared with.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The number of inputs the campaign injects into.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// The fault-free outputs, one per input (computed during preparation).
    pub fn goldens(&self) -> &[Tensor] {
        &self.goldens
    }

    /// A fresh buffer arena for executing chunks (one per executor thread).
    pub fn buffers(&self) -> Values {
        self.plan.buffers()
    }

    /// An all-zero result over this campaign's categories, ready to
    /// [`absorb`](CampaignResult::absorb) chunk tallies.
    pub fn empty_result(&self) -> CampaignResult {
        CampaignResult {
            categories: self.categories.clone(),
            sdc_counts: vec![0; self.categories.len()],
            trials: 0,
            unactivated: 0,
        }
    }

    /// Executes one work unit in the given arena and returns its partial tally.
    ///
    /// Chunks are independent: any execution order, any thread, any subset. The tally of
    /// a chunk depends only on the campaign configuration and the chunk geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`CampaignError`] if a forward pass fails or the input cannot be
    /// batched.
    pub fn run_chunk(
        &self,
        values: &mut Values,
        unit: TrialChunk,
    ) -> Result<ChunkTally, CampaignError> {
        let input = &self.inputs[unit.input];
        let golden = &self.goldens[unit.input];
        let space = &self.spaces[unit.input];
        let config = &self.config;
        // Pre-resolved handles, pure observation: no registry lock, no RNG, and the
        // recorded values are never read back by campaign logic.
        let _chunk_span = self.metrics.as_ref().map(|m| m.chunk_nanos.span());
        let mut tally = ChunkTally::new(self.categories.len());
        if config.batch <= 1 {
            // Per-sample path: one forward pass per trial.
            let feeds = [(self.target.input_name, input.clone())];
            for trial in unit.start..unit.start + unit.len {
                let mut rng = trial_rng(config.seed, unit.input, trial);
                let mut injector = FaultInjector::plan_random(config.fault, space, &mut rng);
                let pass_span = self.metrics.as_ref().map(|m| m.faulty_pass_nanos.span());
                self.plan.run_into(values, &feeds, &mut injector)?;
                drop(pass_span);
                let faulty = values.get(self.target.output)?;
                tally.record(self.judge, golden, faulty, injector.fully_injected());
            }
        } else {
            // Batched path: the whole chunk in one [len, ...] pass, one plan per row group.
            let plans: Vec<FaultInjector> = (unit.start..unit.start + unit.len)
                .map(|trial| {
                    let mut rng = trial_rng(config.seed, unit.input, trial);
                    FaultInjector::plan_random(config.fault, space, &mut rng)
                })
                .collect();
            let feed = input.repeat_batch(plans.len()).map_err(|e| {
                CampaignError::InvalidConfig(format!("campaign input cannot be batched: {e}"))
            })?;
            let rows_per_trial = input.batch_rows();
            let mut injector = BatchFaultInjector::new(plans, space);
            let feeds = [(self.target.input_name, feed)];
            let pass_span = self.metrics.as_ref().map(|m| m.faulty_pass_nanos.span());
            match &self.tiled {
                Some(tiled) => self.plan.run_tiled_into(
                    values,
                    &feeds,
                    &mut injector,
                    &tiled.schedule,
                    tiled.tile_rows,
                )?,
                None => self.plan.run_into(values, &feeds, &mut injector)?,
            }
            drop(pass_span);
            if let Some(violation) = injector.violation() {
                return Err(CampaignError::InvalidConfig(violation.to_string()));
            }
            let output = values.get(self.target.output)?;
            for (t, trial) in injector.trials().iter().enumerate() {
                let faulty = slice_row_group(output, t * rows_per_trial, rows_per_trial)?;
                tally.record(self.judge, golden, &faulty, trial.fully_injected());
            }
        }
        if let Some(metrics) = &self.metrics {
            metrics.trials.add(tally.trials);
        }
        Ok(tally)
    }

    /// Drains the plan's per-node timing slots into the global metrics registry
    /// (per-op-kind `plan.op.<Kind>.{nanos,calls}` counters).
    ///
    /// [`run_campaign`] calls this once at the end of a campaign; drivers that
    /// execute chunks themselves (the streaming service) should call it when their
    /// run completes. Draining, so repeated calls never double-count; a no-op when
    /// the campaign was prepared with metrics disabled.
    pub fn publish_metrics(&self) {
        self.plan.publish_timings();
    }
}

/// Computes the fault-free output of every input: one pass per input on the per-sample
/// path, or one `[N, ...]` pass per input-chunk when batching is enabled.
fn golden_outputs(
    plan: &ExecPlan<'_>,
    values: &mut Values,
    target: &InjectionTarget<'_>,
    inputs: &[Tensor],
    config: &CampaignConfig,
    metrics: Option<&CampaignMetrics>,
    tiled: Option<&TiledCampaign>,
) -> Result<Vec<Tensor>, CampaignError> {
    let mut goldens: Vec<Tensor> = Vec::with_capacity(inputs.len());
    if config.batch <= 1 {
        for input in inputs {
            let feeds = [(target.input_name, input.clone())];
            let span = metrics.map(|m| m.golden_pass_nanos.span());
            plan.run_into(values, &feeds, &mut NoopInterceptor)?;
            drop(span);
            goldens.push(values.get(target.output)?.clone());
        }
        return Ok(goldens);
    }
    for chunk in inputs.chunks(config.batch) {
        let stacked = Tensor::stack_batch(chunk).map_err(|e| {
            CampaignError::InvalidConfig(format!("campaign inputs cannot be batched: {e}"))
        })?;
        let feeds = [(target.input_name, stacked)];
        let span = metrics.map(|m| m.golden_pass_nanos.span());
        match tiled {
            Some(tiled) => plan.run_tiled_into(
                values,
                &feeds,
                &mut NoopInterceptor,
                &tiled.schedule,
                tiled.tile_rows,
            )?,
            None => plan.run_into(values, &feeds, &mut NoopInterceptor)?,
        }
        drop(span);
        let output = values.get(target.output)?;
        let mut row = 0usize;
        for input in chunk {
            let rows = input.batch_rows();
            goldens.push(slice_row_group(output, row, rows)?);
            row += rows;
        }
    }
    Ok(goldens)
}

/// Extracts rows `[start, start + rows)` of a batched output as its own tensor — the
/// value the same forward pass would have produced for that input (or trial) alone.
fn slice_row_group(output: &Tensor, start: usize, rows: usize) -> Result<Tensor, CampaignError> {
    output.slice_rows(start, rows).map_err(|_| {
        CampaignError::InvalidConfig(format!(
            "campaign output of shape {:?} does not carry the leading batch dimension \
             (needed rows [{start}, {})) — run this campaign with batch = 1",
            output.dims(),
            start + rows
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::judge::ClassifierJudge;
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::{Executor, GraphBuilder, Op};

    fn toy_classifier() -> (ranger_graph::Graph, ranger_graph::NodeId) {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 6, 12, &mut rng);
        let h = b.relu(h);
        let h = b.dense(h, 12, 8, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 8, 4, &mut rng);
        let probs = b.softmax(y);
        (b.into_graph(), probs)
    }

    #[test]
    fn campaign_is_reproducible_for_a_seed() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6])];
        // Default-based, so the CI `RANGER_BACKEND` sweep exercises every backend here.
        let config = CampaignConfig {
            trials: 50,
            workers: 1,
            seed: 7,
            ..CampaignConfig::default()
        };
        let judge = ClassifierJudge::top1();
        let a = run_campaign(&target, &inputs, &judge, &config).unwrap();
        let b = run_campaign(&target, &inputs, &judge, &config).unwrap();
        assert_eq!(a.sdc_counts, b.sdc_counts);
        assert_eq!(a.trials, 50);
    }

    /// The ExecPlan-backed campaign must match a hand-rolled Executor-per-pass campaign
    /// trial-for-trial: same per-(input, trial) RNG streams, same interception points,
    /// same SDC counts.
    #[test]
    fn plan_backed_campaign_matches_executor_per_pass() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.3)];
        // The reference is a hand-rolled f32 Executor loop, so the backend is pinned.
        let config = CampaignConfig {
            trials: 40,
            batch: 1,
            workers: 1,
            backend: BackendKind::F32,
            fault: FaultModel::single_bit_fixed32(),
            seed: 21,
            tile: 0,
        };
        let judge = ClassifierJudge::top1();
        let fast = run_campaign(&target, &inputs, &judge, &config).unwrap();

        // Reference: a fresh Executor run per pass, plans drawn from the canonical
        // per-(input, trial) streams.
        let mut counts = vec![0u64; 1];
        let exec = Executor::new(&graph);
        for (i, input) in inputs.iter().enumerate() {
            let golden = exec.run_simple(&[("x", input.clone())], probs).unwrap();
            let space = InjectionSpace::build(&target, input).unwrap();
            for t in 0..config.trials {
                let mut rng = trial_rng(config.seed, i, t);
                let mut injector = FaultInjector::plan_random(config.fault, &space, &mut rng);
                let faulty = exec
                    .run_with(&[("x", input.clone())], probs, &mut injector)
                    .unwrap();
                for (count, sdc) in counts.iter_mut().zip(judge.judge(&golden, &faulty)) {
                    if sdc {
                        *count += 1;
                    }
                }
            }
        }
        assert_eq!(fast.sdc_counts, counts);
    }

    /// The parallel-campaign acceptance: identical SDC counts, trials and unactivated
    /// tallies for every worker count × batch size combination.
    #[test]
    fn parallel_campaign_matches_serial_campaign_bit_for_bit() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![
            Tensor::ones(vec![1, 6]),
            Tensor::filled(vec![1, 6], 0.3),
            Tensor::filled(vec![1, 6], -0.7),
        ];
        let judge = ClassifierJudge::top1();
        // Default-based fault/backend: the CI sweep runs this grid on every backend.
        let config = |workers, batch| CampaignConfig {
            trials: 30,
            batch,
            workers,
            seed: 19,
            ..CampaignConfig::default()
        };
        let reference = run_campaign(&target, &inputs, &judge, &config(1, 1)).unwrap();
        for workers in [1usize, 2, 4, 8] {
            for batch in [1usize, 16] {
                let parallel =
                    run_campaign(&target, &inputs, &judge, &config(workers, batch)).unwrap();
                assert_eq!(
                    parallel.sdc_counts, reference.sdc_counts,
                    "workers = {workers}, batch = {batch} diverged from the serial SDC counts"
                );
                assert_eq!(
                    parallel.trials, reference.trials,
                    "workers = {workers}, batch = {batch}"
                );
                assert_eq!(
                    parallel.unactivated, reference.unactivated,
                    "workers = {workers}, batch = {batch}"
                );
            }
        }
    }

    /// The batched campaign acceptance: identical SDC counts, trials and unactivated
    /// tallies for every batch size, including sizes that do not divide the trial count.
    #[test]
    fn batched_campaign_matches_per_sample_campaign_bit_for_bit() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![
            Tensor::ones(vec![1, 6]),
            Tensor::filled(vec![1, 6], 0.3),
            Tensor::filled(vec![1, 6], -0.7),
        ];
        let judge = ClassifierJudge::top1();
        let reference = run_campaign(
            &target,
            &inputs,
            &judge,
            &CampaignConfig {
                trials: 30,
                batch: 1,
                workers: 1,
                seed: 13,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        for batch in [2usize, 7, 16, 30, 64] {
            let batched = run_campaign(
                &target,
                &inputs,
                &judge,
                &CampaignConfig {
                    trials: 30,
                    batch,
                    workers: 1,
                    seed: 13,
                    ..CampaignConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                batched.sdc_counts, reference.sdc_counts,
                "batch = {batch} diverged from the per-sample SDC counts"
            );
            assert_eq!(batched.trials, reference.trials, "batch = {batch}");
            assert_eq!(
                batched.unactivated, reference.unactivated,
                "batch = {batch}"
            );
        }
    }

    /// A graph with an injectable operator computed purely from constants cannot batch
    /// that operator's faults; the batched campaign must reject it loudly instead of
    /// silently reporting different counts than `batch = 1`.
    #[test]
    fn batched_campaign_rejects_non_batch_scaling_operators() {
        use ranger_graph::{Graph, Op};
        let mut g = Graph::new();
        let x = g.add_input("x");
        // A large constant-fed Identity dominates the injection space, so the seeded
        // plans are certain to target it within a handful of trials.
        let c = g.add_const("c", Tensor::ones(vec![50]), false);
        let _frozen = g.add_node("frozen", Op::Identity, vec![c]);
        let y = g.add_node("double", Op::ScalarMul { factor: 2.0 }, vec![x]);
        let target = InjectionTarget {
            graph: &g,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 3])];
        let judge = ClassifierJudge::top1();
        let config = |batch| CampaignConfig {
            trials: 20,
            batch,
            workers: 1,
            seed: 4,
            ..CampaignConfig::default()
        };
        // The per-sample path handles such graphs fine.
        run_campaign(&target, &inputs, &judge, &config(1)).unwrap();
        // The batched path refuses with a descriptive error.
        let err = run_campaign(&target, &inputs, &judge, &config(4)).unwrap_err();
        assert!(
            err.to_string().contains("batch dimension"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn degenerate_configs_are_rejected_with_descriptive_errors() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6])];
        let judge = ClassifierJudge::top1();
        for (config, needle) in [
            (
                CampaignConfig {
                    trials: 0,
                    ..CampaignConfig::default()
                },
                "trials must be positive",
            ),
            (
                CampaignConfig {
                    batch: 0,
                    ..CampaignConfig::default()
                },
                "batch must be positive",
            ),
            (
                CampaignConfig {
                    workers: 0,
                    ..CampaignConfig::default()
                },
                "workers must be positive",
            ),
        ] {
            let err = run_campaign(&target, &inputs, &judge, &config).unwrap_err();
            assert!(
                matches!(err, CampaignError::InvalidConfig(_)),
                "expected InvalidConfig, got {err:?}"
            );
            assert!(
                err.to_string().contains(needle),
                "error '{err}' should mention '{needle}'"
            );
        }
        assert!(CampaignConfig::default().validate().is_ok());
    }

    #[test]
    fn campaign_config_round_trips_through_json_with_its_batch() {
        let config = CampaignConfig {
            trials: 10,
            batch: 9,
            workers: 3,
            backend: BackendKind::Fixed16,
            fault: FaultModel::single_bit_fixed16(),
            seed: 3,
            tile: 2,
        };
        let json = serde_json::to_string(&config).unwrap();
        assert!(json.contains("\"batch\""));
        assert!(json.contains("\"workers\""));
        assert!(json.contains("\"backend\""));
        assert!(json.contains("\"tile\""));
        let revived: CampaignConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(revived, config);
        // Configs serialized before the tiled scheduler existed deserialize to untiled,
        // so persisted fingerprints and checkpoints keep their meaning.
        let legacy: CampaignConfig = serde_json::from_str(
            &json
                .replace(",\"tile\":2", "")
                .replace("\"tile\":2,", "")
                .replace("\"tile\":2", ""),
        )
        .unwrap();
        assert_eq!(legacy.tile, 0);
    }

    /// The `RANGER_TILE` audit (mirroring `RANGER_BACKEND`): junk must be rejected
    /// loudly, never silently fall back to untiled. The inject test binary has no other
    /// reader of `RANGER_TILE`, so the temporary mutation cannot race another test; the
    /// sweep value is restored on exit.
    #[test]
    fn misconfigured_ranger_tile_is_rejected_not_defaulted() {
        let original = std::env::var("RANGER_TILE").ok();
        std::env::set_var("RANGER_TILE", "sometimes");
        let err = try_default_tile().unwrap_err();
        assert!(err.contains("RANGER_TILE"), "{err}");
        assert!(err.contains("auto"), "{err}");
        std::env::set_var("RANGER_TILE", "4");
        assert_eq!(try_default_tile(), Ok(4));
        std::env::set_var("RANGER_TILE", "auto");
        assert_eq!(try_default_tile(), Ok(TILE_AUTO));
        std::env::set_var("RANGER_TILE", "");
        assert_eq!(try_default_tile(), Ok(0));
        std::env::remove_var("RANGER_TILE");
        assert_eq!(try_default_tile(), Ok(0));
        if let Some(value) = original {
            std::env::set_var("RANGER_TILE", value);
        }
    }

    /// The tiled-scheduler acceptance at the campaign level: every tile size — including
    /// one trial per group, a non-divisor, the whole batch and the auto-derived size —
    /// reports SDC, trial and unactivated counts bit-for-bit identical to the untiled
    /// batched campaign (which itself matches per-sample). Runs on the default backend so
    /// the CI `RANGER_BACKEND` sweep covers every compute path.
    #[test]
    fn tiled_campaign_matches_untiled_campaign_at_every_tile_size() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.3)];
        let judge = ClassifierJudge::top1();
        let config = |tile| CampaignConfig {
            trials: 30,
            batch: 16,
            workers: 1,
            seed: 17,
            tile,
            ..CampaignConfig::default()
        };
        let untiled = run_campaign(&target, &inputs, &judge, &config(0)).unwrap();
        for tile in [1usize, 3, 16, TILE_AUTO] {
            let tiled = run_campaign(&target, &inputs, &judge, &config(tile)).unwrap();
            assert_eq!(
                tiled.sdc_counts, untiled.sdc_counts,
                "tile = {tile} diverged from the untiled SDC counts"
            );
            assert_eq!(tiled.trials, untiled.trials, "tile = {tile}");
            assert_eq!(tiled.unactivated, untiled.unactivated, "tile = {tile}");
        }
    }

    #[test]
    fn protection_with_clamps_never_increases_sdc_rate() {
        let (graph, probs) = toy_classifier();
        let inputs = vec![Tensor::ones(vec![1, 6])];
        let config = CampaignConfig {
            trials: 150,
            batch: 1,
            workers: 1,
            seed: 11,
            ..CampaignConfig::default()
        };
        let judge = ClassifierJudge::top1();

        let unprotected = {
            let target = InjectionTarget {
                graph: &graph,
                input_name: "x",
                output: probs,
                excluded: &[],
            };
            run_campaign(&target, &inputs, &judge, &config).unwrap()
        };

        // Protect every ReLU output with a generous clamp.
        let mut protected_graph = graph.clone();
        let relu_ids: Vec<_> = protected_graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Op::Relu))
            .map(|n| n.id)
            .collect();
        for id in relu_ids {
            protected_graph
                .insert_after(id, "ranger", Op::Clamp { lo: 0.0, hi: 10.0 })
                .unwrap();
        }
        let protected = {
            let target = InjectionTarget {
                graph: &protected_graph,
                input_name: "x",
                output: probs,
                excluded: &[],
            };
            run_campaign(&target, &inputs, &judge, &config).unwrap()
        };
        let protected_rate = protected.sdc_rate(0).expect("category 0 exists").rate();
        let unprotected_rate = unprotected.sdc_rate(0).expect("category 0 exists").rate();
        assert!(
            protected_rate <= unprotected_rate,
            "range restriction must not increase the SDC rate ({protected_rate} vs {unprotected_rate})"
        );
    }

    #[test]
    fn merge_accumulates_counts() {
        let a = CampaignResult {
            categories: vec!["top-1".into()],
            sdc_counts: vec![3],
            trials: 10,
            unactivated: 1,
        };
        let b = CampaignResult {
            categories: vec!["top-1".into()],
            sdc_counts: vec![5],
            trials: 20,
            unactivated: 0,
        };
        let merged = a.merge(&b);
        assert_eq!(merged.sdc_counts, vec![8]);
        assert_eq!(merged.trials, 30);
        assert_eq!(merged.unactivated, 1);
        assert!((merged.sdc_rate(0).unwrap().rate() - 8.0 / 30.0).abs() < 1e-12);
        assert!(merged.sdc_rate_for("top-1").is_some());
        assert!(merged.sdc_rate_for("nope").is_none());
    }

    #[test]
    fn out_of_range_category_is_none_not_a_panic() {
        let result = CampaignResult {
            categories: vec!["top-1".into()],
            sdc_counts: vec![2],
            trials: 10,
            unactivated: 0,
        };
        assert!(result.sdc_rate(0).is_some());
        assert!(result.sdc_rate(1).is_none());
        assert!(result.sdc_rate(usize::MAX).is_none());
    }

    /// The fixed-point backend acceptance grid: on both fixed backends, every
    /// (workers × batch) combination reports the serial per-sample SDC counts
    /// bit-for-bit — integer kernels are row-independent and fault plans are keyed by
    /// (input, trial) index, so neither pass shape nor schedule can reach the counts.
    #[test]
    fn fixed_backend_campaigns_are_bit_for_bit_deterministic_across_workers_and_batch() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.3)];
        let judge = ClassifierJudge::top1();
        for (backend, fault) in [
            (BackendKind::Fixed16, FaultModel::single_bit_fixed16()),
            (BackendKind::Fixed32, FaultModel::single_bit_fixed32()),
        ] {
            let config = |workers, batch| CampaignConfig {
                trials: 30,
                batch,
                workers,
                backend,
                fault,
                seed: 23,
                tile: 0,
            };
            let reference = run_campaign(&target, &inputs, &judge, &config(1, 1)).unwrap();
            assert_eq!(reference.trials, 60, "{backend}");
            for workers in [1usize, 2, 4] {
                for batch in [1usize, 8] {
                    let run =
                        run_campaign(&target, &inputs, &judge, &config(workers, batch)).unwrap();
                    assert_eq!(
                        run.sdc_counts, reference.sdc_counts,
                        "{backend}: workers {workers} × batch {batch} diverged"
                    );
                    assert_eq!(run.unactivated, reference.unactivated, "{backend}");
                }
            }
        }
    }

    /// On the fixed-point backend golden outputs are quantized inference, and a
    /// high-order word flip shows up as a corrupted (still in-format) value — the
    /// campaign runs end-to-end on the genuine integer path.
    #[test]
    fn fixed_backend_campaign_runs_on_the_integer_path() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6])];
        let judge = ClassifierJudge::top1();
        let config = CampaignConfig {
            trials: 40,
            batch: 1,
            workers: 1,
            backend: BackendKind::Fixed16,
            fault: FaultModel::single_bit_fixed16(),
            seed: 2,
            tile: 0,
        };
        let result = run_campaign(&target, &inputs, &judge, &config).unwrap();
        assert_eq!(result.trials, 40);
        // Fault plans are drawn from the same index-keyed streams on every backend, so
        // the same seed on the f32 backend injects the same (site, bit) plans — only the
        // compute (and possibly the verdicts) differ.
        let emulated = run_campaign(
            &target,
            &inputs,
            &judge,
            &CampaignConfig {
                backend: BackendKind::F32,
                ..config
            },
        )
        .unwrap();
        assert_eq!(emulated.trials, result.trials);
    }

    /// Invalid backend/fault-model pairings (e.g. fixed16 faults on the fixed32 backend)
    /// are rejected with a descriptive error instead of silently diverging.
    #[test]
    fn mismatched_backend_fault_pairings_are_rejected() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6])];
        let judge = ClassifierJudge::top1();
        for (backend, fault) in [
            (BackendKind::Fixed32, FaultModel::single_bit_fixed16()),
            (BackendKind::Fixed16, FaultModel::single_bit_fixed32()),
            (BackendKind::Fixed16, FaultModel::single_bit_float32()),
        ] {
            let config = CampaignConfig {
                backend,
                fault,
                ..CampaignConfig::default()
            };
            let err = run_campaign(&target, &inputs, &judge, &config).unwrap_err();
            assert!(
                matches!(err, CampaignError::InvalidConfig(_)),
                "{backend} + {fault} should be rejected, got {err:?}"
            );
            let message = err.to_string();
            assert!(
                message.contains("does not match") && message.contains("backend"),
                "unhelpful error for {backend} + {fault}: {message}"
            );
        }
        // Fixed fault models on the f32 backend remain valid: that is the original
        // TensorFI-style emulation path.
        let emulation = CampaignConfig {
            backend: BackendKind::F32,
            fault: FaultModel::single_bit_fixed16(),
            ..CampaignConfig::default()
        };
        assert!(emulation.validate().is_ok());
    }

    /// When several parallel work units fail, the reported error must carry the count of
    /// the suppressed ones — a multi-chunk service failure is not one failure.
    #[test]
    fn parallel_failures_report_the_suppressed_count() {
        use ranger_graph::{Graph, Op};
        let mut g = Graph::new();
        let x = g.add_input("x");
        // Same non-batch-scaling shape as above: every batched chunk fails.
        let c = g.add_const("c", Tensor::ones(vec![50]), false);
        let _frozen = g.add_node("frozen", Op::Identity, vec![c]);
        let y = g.add_node("double", Op::ScalarMul { factor: 2.0 }, vec![x]);
        let target = InjectionTarget {
            graph: &g,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 3])];
        let judge = ClassifierJudge::top1();
        let config = |trials| CampaignConfig {
            trials,
            batch: 4,
            workers: 2,
            seed: 4,
            ..CampaignConfig::default()
        };
        // 20 trials / batch 4 = 5 chunks, all failing: first error + 4 suppressed.
        let err = run_campaign(&target, &inputs, &judge, &config(20)).unwrap_err();
        match &err {
            CampaignError::Failures {
                first,
                input,
                chunk,
                suppressed,
            } => {
                assert_eq!(*suppressed, 4, "expected 4 suppressed failures: {err}");
                assert_eq!((*input, *chunk), (0, 0), "earliest failing unit: {err}");
                assert!(
                    first.to_string().contains("batch dimension"),
                    "first error lost its message: {first}"
                );
            }
            other => panic!("expected CampaignError::Failures, got {other:?}"),
        }
        assert!(
            err.to_string().contains("4 additional work-unit failure"),
            "display should surface the suppressed count: {err}"
        );
        assert!(
            err.to_string()
                .contains("first failing work unit: input 0, chunk 0"),
            "display should name the earliest failing (input, chunk) unit: {err}"
        );
        // A single failing unit stays unwrapped: no "plus 0 suppressed" noise.
        let err = run_campaign(&target, &inputs, &judge, &config(4)).unwrap_err();
        assert!(
            !matches!(err, CampaignError::Failures { .. }),
            "a lone failure must not be wrapped: {err:?}"
        );
    }

    /// `campaign_chunks` covers the `inputs × trials` space exactly once, in canonical
    /// `(input, trial)` order, with contiguous indices.
    #[test]
    fn campaign_chunks_partition_the_trial_space() {
        let config = CampaignConfig {
            trials: 23,
            ..CampaignConfig::default()
        };
        let chunks = campaign_chunks(&config, 3, 7);
        assert_eq!(chunks.len(), 3 * 4); // ceil(23 / 7) = 4 chunks per input
        let mut expected_index = 0;
        for input in 0..3 {
            let mut next_trial = 0;
            for chunk in chunks.iter().filter(|c| c.input == input) {
                assert_eq!(chunk.index, expected_index);
                assert_eq!(chunk.start, next_trial);
                assert!(chunk.len > 0);
                next_trial += chunk.len;
                expected_index += 1;
            }
            assert_eq!(next_trial, config.trials, "input {input} not fully covered");
        }
    }

    /// Executing a prepared campaign's chunks manually — in reverse order, in one arena —
    /// absorbs to the exact counts of `run_campaign`. This is the contract the resumable
    /// service is built on.
    #[test]
    fn prepared_campaign_chunks_reproduce_run_campaign_in_any_order() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6]), Tensor::filled(vec![1, 6], 0.3)];
        let judge = ClassifierJudge::top1();
        let config = CampaignConfig {
            trials: 25,
            batch: 1,
            workers: 1,
            seed: 11,
            ..CampaignConfig::default()
        };
        let reference = run_campaign(&target, &inputs, &judge, &config).unwrap();

        // A chunk length unrelated to the default partition.
        let prepared = PreparedCampaign::with_chunk_len(&target, &inputs, &judge, &config, 6)
            .expect("preparation failed");
        let mut values = prepared.buffers();
        let mut result = prepared.empty_result();
        let mut chunks: Vec<TrialChunk> = prepared.chunks().to_vec();
        chunks.reverse();
        for chunk in chunks {
            let tally = prepared.run_chunk(&mut values, chunk).unwrap();
            result.absorb(&tally);
        }
        assert_eq!(result.sdc_counts, reference.sdc_counts);
        assert_eq!(result.trials, reference.trials);
        assert_eq!(result.unactivated, reference.unactivated);
    }

    /// A batched campaign's chunk length is its batch size — anything else is rejected
    /// before any pass runs.
    #[test]
    fn prepared_campaign_rejects_chunk_len_batch_mismatch() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let inputs = vec![Tensor::ones(vec![1, 6])];
        let judge = ClassifierJudge::top1();
        let config = CampaignConfig {
            trials: 12,
            batch: 4,
            ..CampaignConfig::default()
        };
        let err = PreparedCampaign::with_chunk_len(&target, &inputs, &judge, &config, 3)
            .err()
            .expect("mismatched chunk length must be rejected");
        assert!(err.to_string().contains("does not match batch size"));
        let err = PreparedCampaign::with_chunk_len(&target, &inputs, &judge, &config, 0)
            .err()
            .expect("zero chunk length must be rejected");
        assert!(err.to_string().contains("must be positive"));
    }

    #[test]
    #[should_panic(expected = "different categories")]
    fn merge_rejects_mismatched_categories() {
        let a = CampaignResult {
            categories: vec!["top-1".into()],
            sdc_counts: vec![0],
            trials: 0,
            unactivated: 0,
        };
        let b = CampaignResult {
            categories: vec!["top-5".into()],
            sdc_counts: vec![0],
            trials: 0,
            unactivated: 0,
        };
        a.merge(&b);
    }
}
