//! Silent-Data-Corruption criteria.
//!
//! The paper defines an SDC as any DNN output that deviates from the fault-free output of
//! the program: an image misclassification for the classifier models, and a steering-angle
//! deviation exceeding a threshold (15°, 30°, 60° or 120°) for the AV models.

use ranger_tensor::Tensor;

/// Decides, for one faulty execution, which SDC categories the outcome falls into.
///
/// A judge may evaluate several categories at once (e.g. top-1 and top-5
/// misclassification, or the four steering thresholds); each campaign trial is then
/// counted against every category.
///
/// Judges are `Send + Sync`: a parallel campaign shares one judge across all its
/// workers, so judging must be a pure function of the two outputs (both provided
/// implementations are stateless value comparisons).
pub trait SdcJudge: Send + Sync {
    /// Names of the categories this judge evaluates, in the order `judge` reports them.
    fn categories(&self) -> Vec<String>;

    /// Compares the fault-free output with the faulty output and returns, per category,
    /// whether the deviation constitutes an SDC.
    fn judge(&self, golden: &Tensor, faulty: &Tensor) -> Vec<bool>;
}

/// Misclassification judge for classifier models.
///
/// A fault is an SDC in category "top-k" if the fault-free top-1 class is no longer among
/// the faulty run's top-k classes. (With the paper's experimental setup the fault-free
/// prediction is correct by construction — inputs are chosen so the model classifies them
/// correctly — so this matches "misclassification".)
#[derive(Debug, Clone)]
pub struct ClassifierJudge {
    ks: Vec<usize>,
}

impl ClassifierJudge {
    /// Judges only top-1 misclassification.
    pub fn top1() -> Self {
        ClassifierJudge { ks: vec![1] }
    }

    /// Judges top-1 and top-5 misclassification (used for the ImageNet-domain models).
    pub fn top1_and_top5() -> Self {
        ClassifierJudge { ks: vec![1, 5] }
    }

    /// Judges an arbitrary set of top-k categories.
    ///
    /// # Panics
    ///
    /// Panics if `ks` is empty or contains zero.
    pub fn new(ks: Vec<usize>) -> Self {
        assert!(
            !ks.is_empty() && ks.iter().all(|&k| k > 0),
            "ks must be positive"
        );
        ClassifierJudge { ks }
    }
}

impl SdcJudge for ClassifierJudge {
    fn categories(&self) -> Vec<String> {
        self.ks.iter().map(|k| format!("top-{k}")).collect()
    }

    fn judge(&self, golden: &Tensor, faulty: &Tensor) -> Vec<bool> {
        let golden_class = golden.argmax().unwrap_or(0);
        self.ks
            .iter()
            .map(|&k| {
                let topk = faulty.top_k(k);
                !topk.contains(&golden_class)
            })
            .collect()
    }
}

/// Steering-deviation judge for the AV regression models.
///
/// A fault is an SDC in category "threshold-T" if the faulty steering angle deviates from
/// the fault-free angle by more than `T` degrees. If the model outputs radians, set
/// `output_in_radians` so the deviation is converted before thresholding.
#[derive(Debug, Clone)]
pub struct SteeringJudge {
    thresholds_degrees: Vec<f64>,
    output_in_radians: bool,
}

impl SteeringJudge {
    /// The paper's four thresholds: 15°, 30°, 60° and 120°.
    pub fn paper_thresholds(output_in_radians: bool) -> Self {
        SteeringJudge {
            thresholds_degrees: vec![15.0, 30.0, 60.0, 120.0],
            output_in_radians,
        }
    }

    /// A custom set of thresholds in degrees.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds_degrees` is empty.
    pub fn new(thresholds_degrees: Vec<f64>, output_in_radians: bool) -> Self {
        assert!(
            !thresholds_degrees.is_empty(),
            "at least one threshold is required"
        );
        SteeringJudge {
            thresholds_degrees,
            output_in_radians,
        }
    }

    /// The thresholds this judge evaluates, in degrees.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds_degrees
    }
}

impl SdcJudge for SteeringJudge {
    fn categories(&self) -> Vec<String> {
        self.thresholds_degrees
            .iter()
            .map(|t| format!("threshold-{t}"))
            .collect()
    }

    fn judge(&self, golden: &Tensor, faulty: &Tensor) -> Vec<bool> {
        let golden_angle = golden.data().first().copied().unwrap_or(0.0) as f64;
        let faulty_angle = faulty.data().first().copied().unwrap_or(0.0) as f64;
        let mut deviation = (golden_angle - faulty_angle).abs();
        if self.output_in_radians {
            deviation = deviation.to_degrees();
        }
        // A non-finite output (e.g. NaN propagated from a float32 exponent flip) deviates
        // arbitrarily far and counts as an SDC in every category.
        if !deviation.is_finite() {
            return vec![true; self.thresholds_degrees.len()];
        }
        self.thresholds_degrees
            .iter()
            .map(|&t| deviation > t)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs(values: &[f32]) -> Tensor {
        Tensor::from_vec(vec![1, values.len()], values.to_vec()).unwrap()
    }

    #[test]
    fn classifier_judge_detects_top1_flip() {
        let judge = ClassifierJudge::top1();
        let golden = probs(&[0.7, 0.2, 0.1]);
        let same = probs(&[0.6, 0.3, 0.1]);
        let flipped = probs(&[0.2, 0.7, 0.1]);
        assert_eq!(judge.judge(&golden, &same), vec![false]);
        assert_eq!(judge.judge(&golden, &flipped), vec![true]);
        assert_eq!(judge.categories(), vec!["top-1"]);
    }

    #[test]
    fn classifier_judge_top5_is_more_lenient() {
        let judge = ClassifierJudge::top1_and_top5();
        let golden = probs(&[0.5, 0.1, 0.1, 0.1, 0.1, 0.1]);
        // The correct class drops to rank 2: top-1 SDC but not a top-5 SDC.
        let shifted = probs(&[0.3, 0.4, 0.1, 0.1, 0.05, 0.05]);
        assert_eq!(judge.judge(&golden, &shifted), vec![true, false]);
        // The correct class drops out of the top 5 entirely.
        let gone = probs(&[0.01, 0.3, 0.2, 0.2, 0.15, 0.14]);
        assert_eq!(judge.judge(&golden, &gone), vec![true, true]);
    }

    #[test]
    fn steering_judge_thresholds_in_degrees() {
        let judge = SteeringJudge::paper_thresholds(false);
        let golden = probs(&[100.0]);
        let small = probs(&[110.0]);
        let large = probs(&[-50.0]);
        assert_eq!(
            judge.judge(&golden, &small),
            vec![false, false, false, false]
        );
        assert_eq!(judge.judge(&golden, &large), vec![true, true, true, true]);
        let medium = probs(&[60.0]); // 40 degrees off
        assert_eq!(
            judge.judge(&golden, &medium),
            vec![true, true, false, false]
        );
        assert_eq!(judge.categories().len(), 4);
    }

    #[test]
    fn steering_judge_converts_radians() {
        let judge = SteeringJudge::paper_thresholds(true);
        let golden = probs(&[0.0]);
        // 0.5 rad ≈ 28.6 degrees: exceeds 15 but not 30.
        let faulty = probs(&[0.5]);
        assert_eq!(
            judge.judge(&golden, &faulty),
            vec![true, false, false, false]
        );
    }

    #[test]
    fn steering_judge_counts_nan_as_sdc() {
        let judge = SteeringJudge::new(vec![15.0], false);
        let golden = probs(&[10.0]);
        let faulty = probs(&[f32::NAN]);
        assert_eq!(judge.judge(&golden, &faulty), vec![true]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn classifier_judge_rejects_zero_k() {
        ClassifierJudge::new(vec![0]);
    }
}
