//! The interceptor that corrupts operator outputs during a forward pass.

use crate::fault::FaultModel;
use crate::space::{InjectionSite, InjectionSpace};
use rand::Rng;
use ranger_graph::{Interceptor, Node, NodeId, TileRows};
use ranger_tensor::{DataType, QTensor, Tensor};

/// One planned corruption: a site plus the bit to flip there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFlip {
    /// Where the flip strikes.
    pub site: InjectionSite,
    /// Which bit of the datatype representation is flipped (0 = least significant).
    pub bit: u32,
}

/// An [`Interceptor`] that applies a set of planned bit flips during one forward pass.
///
/// The injector is constructed per trial (one plan per execution, matching the paper's
/// "at most one fault occurs per program execution" assumption — a multi-bit plan is still
/// a single transient fault event).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    fault: FaultModel,
    plan: Vec<PlannedFlip>,
    injected: Vec<PlannedFlip>,
}

impl FaultInjector {
    /// Creates an injector that applies exactly the given flips.
    pub fn with_plan(fault: FaultModel, plan: Vec<PlannedFlip>) -> Self {
        FaultInjector {
            fault,
            plan,
            injected: Vec::new(),
        }
    }

    /// Plans a random fault according to `fault`: each of the `fault.bits` flips picks an
    /// independent site in `space` and an independent bit position.
    pub fn plan_random<R: Rng + ?Sized>(
        fault: FaultModel,
        space: &InjectionSpace,
        rng: &mut R,
    ) -> Self {
        let plan = (0..fault.bits)
            .map(|_| PlannedFlip {
                site: space.sample(rng),
                bit: rng.gen_range(0..fault.datatype.bit_width()),
            })
            .collect();
        Self::with_plan(fault, plan)
    }

    /// The flips this injector will apply.
    pub fn plan(&self) -> &[PlannedFlip] {
        &self.plan
    }

    /// The flips that were actually applied during the last execution.
    pub fn injected(&self) -> &[PlannedFlip] {
        &self.injected
    }

    /// Returns `true` if every planned flip was applied (i.e. each targeted operator was
    /// executed and its output was large enough).
    pub fn fully_injected(&self) -> bool {
        self.injected.len() == self.plan.len()
    }

    /// Nodes targeted by this plan.
    pub fn targeted_nodes(&self) -> Vec<NodeId> {
        self.plan.iter().map(|f| f.site.node).collect()
    }
}

impl Interceptor for FaultInjector {
    fn after_op(&mut self, node: &Node, output: &mut Tensor) {
        for flip in &self.plan {
            if flip.site.node == node.id && flip.site.element < output.len() {
                let value = output.data()[flip.site.element];
                let corrupted = self.fault.datatype.flip_bit(value, flip.bit);
                output.data_mut()[flip.site.element] = corrupted;
                self.injected.push(*flip);
            }
        }
    }

    /// On a fixed-point backend whose word format matches the fault model's datatype, the
    /// planned bits flip **directly in the stored integer words** — no
    /// encode → flip → decode round trip, so the corruption is exact even for magnitudes
    /// `f32` cannot represent. A mismatched datatype (only reachable through hand-built
    /// configurations; campaigns reject the pairing up front) falls back to flipping the
    /// dequantized value under the fault's own datatype and requantizing.
    fn after_op_words(&mut self, node: &Node, output: &mut QTensor) {
        for flip in &self.plan {
            if flip.site.node == node.id && flip.site.element < output.len() {
                if self.fault.datatype == DataType::Fixed(output.spec()) {
                    output.flip_word(flip.site.element, flip.bit);
                } else {
                    let value = output.get_f32(flip.site.element);
                    let corrupted = self.fault.datatype.flip_bit(value, flip.bit);
                    output.set_from_f32(flip.site.element, corrupted);
                }
                self.injected.push(*flip);
            }
        }
    }

    /// Tiled twin of `after_op`: the plan's element coordinates address the **full**
    /// batched output, so each flip lands in exactly the row group that owns its
    /// element — whatever the tile size, every planned element is flipped exactly once
    /// per pass, which is what pins tiled and untiled passes bit-for-bit.
    fn after_op_tile(&mut self, node: &Node, output: &mut Tensor, rows: TileRows) {
        let per_row = output.len() / rows.rows.max(1);
        let base = rows.row_start * per_row;
        let full_len = per_row * rows.total_rows;
        for flip in &self.plan {
            if flip.site.node == node.id
                && flip.site.element < full_len
                && (base..base + output.len()).contains(&flip.site.element)
            {
                let local = flip.site.element - base;
                let value = output.data()[local];
                let corrupted = self.fault.datatype.flip_bit(value, flip.bit);
                output.data_mut()[local] = corrupted;
                self.injected.push(*flip);
            }
        }
    }

    /// Word-level twin of [`FaultInjector::after_op_tile`], with the datatype rule of
    /// [`FaultInjector::after_op_words`].
    fn after_op_words_tile(&mut self, node: &Node, output: &mut QTensor, rows: TileRows) {
        let per_row = output.len() / rows.rows.max(1);
        let base = rows.row_start * per_row;
        let full_len = per_row * rows.total_rows;
        for flip in &self.plan {
            if flip.site.node == node.id
                && flip.site.element < full_len
                && (base..base + output.len()).contains(&flip.site.element)
            {
                let local = flip.site.element - base;
                if self.fault.datatype == DataType::Fixed(output.spec()) {
                    output.flip_word(local, flip.bit);
                } else {
                    let value = output.get_f32(local);
                    let corrupted = self.fault.datatype.flip_bit(value, flip.bit);
                    output.set_from_f32(local, corrupted);
                }
                self.injected.push(*flip);
            }
        }
    }
}

/// An [`Interceptor`] that applies one [`FaultInjector`] plan per row group of a batched
/// forward pass.
///
/// A batched campaign replicates one input `k` times along the leading batch dimension
/// and runs all `k` trials in a single forward pass; trial `t` owns rows
/// `[t * rows_per_trial, (t + 1) * rows_per_trial)` of every operator output. Because the
/// operators process batch rows independently, flipping a bit inside trial `t`'s rows
/// corrupts exactly the values the same plan would corrupt in a single-sample pass — the
/// per-trial outputs (and therefore the SDC counts) are bit-for-bit identical.
///
/// The equivalence requires the targeted operator's output to carry the batch dimension.
/// The injector checks each targeted output against the single-sample size recorded in
/// the [`InjectionSpace`] the plans were drawn from; an operator whose output does not
/// scale (e.g. one computed purely from constants) is never silently mis-injected —
/// instead [`BatchFaultInjector::violation`] reports it after the pass, and the campaign
/// runner turns that into an error.
#[derive(Debug, Clone)]
pub struct BatchFaultInjector {
    trials: Vec<FaultInjector>,
    space: InjectionSpace,
    violation: Option<String>,
    /// Every trial's planned flips as `(node index, trial, plan index)`, sorted by
    /// node. The interceptor hooks fire once per operator — and once per (operator,
    /// row group) under tiling — so scanning every trial's whole plan inside each
    /// hook is O(trials × nodes × row groups) per pass; with this index a hook is a
    /// binary search plus exactly the flips that target its operator. Sorted by
    /// `(node, trial, plan index)`, the index visits a node's flips in the same
    /// trial-major order the scan did, so injection order — and therefore every
    /// count — is unchanged.
    flips_by_node: Vec<(usize, usize, usize)>,
}

impl BatchFaultInjector {
    /// Creates a batched injector applying `trials[t]` to row group `t`. `space` is the
    /// injection space the trial plans were drawn from; it provides each operator's
    /// single-sample output size.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is empty.
    pub fn new(trials: Vec<FaultInjector>, space: &InjectionSpace) -> Self {
        assert!(
            !trials.is_empty(),
            "a batched injector needs at least one trial"
        );
        let mut flips_by_node: Vec<(usize, usize, usize)> = trials
            .iter()
            .enumerate()
            .flat_map(|(t, injector)| {
                injector
                    .plan
                    .iter()
                    .enumerate()
                    .map(move |(f, flip)| (flip.site.node.index(), t, f))
            })
            .collect();
        flips_by_node.sort_unstable();
        BatchFaultInjector {
            trials,
            space: space.clone(),
            violation: None,
            flips_by_node,
        }
    }

    /// The indices into `flips_by_node` whose flips target `node`.
    fn flips_of(&self, node: NodeId) -> std::ops::Range<usize> {
        let idx = node.index();
        let start = self.flips_by_node.partition_point(|&(n, _, _)| n < idx);
        let end = start + self.flips_by_node[start..].partition_point(|&(n, _, _)| n == idx);
        start..end
    }

    /// The per-trial injectors, in row-group order (borrow after the pass to read each
    /// trial's [`FaultInjector::injected`] record).
    pub fn trials(&self) -> &[FaultInjector] {
        &self.trials
    }

    /// If a planned flip targeted an operator whose output did not carry the batch
    /// dimension, describes the first such operator; `None` after a clean pass.
    pub fn violation(&self) -> Option<&str> {
        self.violation.as_deref()
    }
}

impl BatchFaultInjector {
    /// Validates that `node`'s batched output scales with the trial count and returns the
    /// per-trial slice length; records the violation (once) and returns `None` otherwise.
    fn checked_per_trial(&mut self, node: &Node, output_len: usize) -> Option<usize> {
        let k = self.trials.len();
        let per_trial = self.space.values_of(node.id).unwrap_or(output_len / k);
        if output_len != per_trial * k {
            if self.violation.is_none() {
                self.violation = Some(format!(
                    "operator '{}' produced {} values under a batch of {k} trials \
                     (expected {}): its output does not carry the batch dimension, \
                     so its faults cannot be batched — run this campaign with \
                     batch = 1",
                    node.name,
                    output_len,
                    per_trial * k
                ));
            }
            return None;
        }
        Some(per_trial)
    }
}

impl Interceptor for BatchFaultInjector {
    fn after_op(&mut self, node: &Node, output: &mut Tensor) {
        // The per-trial slice length is the operator's single-sample output size, as
        // recorded in the injection space the plans were sampled from (for hand-built
        // plans targeting nodes outside the space, the even split is the only guess).
        for k in self.flips_of(node.id) {
            let (_, t, f) = self.flips_by_node[k];
            let flip = self.trials[t].plan[f];
            let Some(per_trial) = self.checked_per_trial(node, output.len()) else {
                continue;
            };
            if flip.site.element < per_trial {
                let index = t * per_trial + flip.site.element;
                let injector = &mut self.trials[t];
                let value = output.data()[index];
                let corrupted = injector.fault.datatype.flip_bit(value, flip.bit);
                output.data_mut()[index] = corrupted;
                injector.injected.push(flip);
            }
        }
    }

    /// The word-level twin of the batched `after_op`: each trial's planned bits flip
    /// directly in its own row group of the stored integer words (see
    /// [`FaultInjector::after_op_words`] for the datatype rule), with the same
    /// batch-scaling violation check.
    fn after_op_words(&mut self, node: &Node, output: &mut QTensor) {
        for k in self.flips_of(node.id) {
            let (_, t, f) = self.flips_by_node[k];
            let flip = self.trials[t].plan[f];
            let Some(per_trial) = self.checked_per_trial(node, output.len()) else {
                continue;
            };
            if flip.site.element < per_trial {
                let index = t * per_trial + flip.site.element;
                let injector = &mut self.trials[t];
                if injector.fault.datatype == DataType::Fixed(output.spec()) {
                    output.flip_word(index, flip.bit);
                } else {
                    let value = output.get_f32(index);
                    let corrupted = injector.fault.datatype.flip_bit(value, flip.bit);
                    output.set_from_f32(index, corrupted);
                }
                injector.injected.push(flip);
            }
        }
    }

    /// Tiled twin of the batched `after_op`. Trial `t` owns elements
    /// `[t * per_trial, (t + 1) * per_trial)` of the **full** batched output; a row
    /// group covers the contiguous element range `[base, base + tile len)`. A planned
    /// flip fires iff its global index falls inside the current group — row groups
    /// partition the batch, so across the groups of one pass every flip fires exactly
    /// once, at the same element the untiled pass would corrupt. No alignment between
    /// tile boundaries and trial boundaries is required.
    fn after_op_tile(&mut self, node: &Node, output: &mut Tensor, rows: TileRows) {
        let per_row = output.len() / rows.rows.max(1);
        let base = rows.row_start * per_row;
        let full_len = per_row * rows.total_rows;
        for k in self.flips_of(node.id) {
            let (_, t, f) = self.flips_by_node[k];
            let flip = self.trials[t].plan[f];
            let Some(per_trial) = self.checked_per_trial(node, full_len) else {
                continue;
            };
            if flip.site.element < per_trial {
                let global = t * per_trial + flip.site.element;
                if (base..base + output.len()).contains(&global) {
                    let local = global - base;
                    let injector = &mut self.trials[t];
                    let value = output.data()[local];
                    let corrupted = injector.fault.datatype.flip_bit(value, flip.bit);
                    output.data_mut()[local] = corrupted;
                    injector.injected.push(flip);
                }
            }
        }
    }

    /// Word-level twin of [`BatchFaultInjector::after_op_tile`], with the datatype rule
    /// of [`FaultInjector::after_op_words`].
    fn after_op_words_tile(&mut self, node: &Node, output: &mut QTensor, rows: TileRows) {
        let per_row = output.len() / rows.rows.max(1);
        let base = rows.row_start * per_row;
        let full_len = per_row * rows.total_rows;
        for k in self.flips_of(node.id) {
            let (_, t, f) = self.flips_by_node[k];
            let flip = self.trials[t].plan[f];
            let Some(per_trial) = self.checked_per_trial(node, full_len) else {
                continue;
            };
            if flip.site.element < per_trial {
                let global = t * per_trial + flip.site.element;
                if (base..base + output.len()).contains(&global) {
                    let local = global - base;
                    let injector = &mut self.trials[t];
                    if injector.fault.datatype == DataType::Fixed(output.spec()) {
                        output.flip_word(local, flip.bit);
                    } else {
                        let value = output.get_f32(local);
                        let corrupted = injector.fault.datatype.flip_bit(value, flip.bit);
                        output.set_from_f32(local, corrupted);
                    }
                    injector.injected.push(flip);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InjectionTarget;
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::{Executor, GraphBuilder};

    fn toy() -> (ranger_graph::Graph, NodeId) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 3, 4, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 4, 2, &mut rng);
        (b.into_graph(), y)
    }

    #[test]
    fn planned_flip_changes_exactly_one_value_path() {
        let (graph, y) = toy();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let input = Tensor::ones(vec![1, 3]);
        let exec = Executor::new(&graph);
        let golden = exec.run_simple(&[("x", input.clone())], y).unwrap();

        let space = InjectionSpace::build(&target, &input).unwrap();
        assert!(space.total_values() > 0);
        let fault = FaultModel::single_bit_fixed32();
        // Flip a high-order bit of the final dense layer's output: the corruption cannot
        // be masked by a downstream ReLU, so the output must deviate substantially.
        let site = InjectionSite {
            node: y,
            element: 0,
        };
        let mut injector = FaultInjector::with_plan(fault, vec![PlannedFlip { site, bit: 29 }]);
        let faulty = exec.run_with(&[("x", input)], y, &mut injector).unwrap();
        assert!(injector.fully_injected());
        assert_eq!(injector.injected().len(), 1);
        let deviation = golden.max_abs_diff(&faulty).unwrap();
        assert!(
            deviation > 1.0,
            "high-order flip should propagate, deviation {deviation}"
        );
    }

    #[test]
    fn plan_random_respects_bit_width_and_count() {
        let (graph, y) = toy();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let input = Tensor::ones(vec![1, 3]);
        let space = InjectionSpace::build(&target, &input).unwrap();
        let fault = FaultModel {
            datatype: ranger_tensor::DataType::fixed16(),
            bits: 3,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let injector = FaultInjector::plan_random(fault, &space, &mut rng);
        assert_eq!(injector.plan().len(), 3);
        for flip in injector.plan() {
            assert!(flip.bit < 16);
        }
        assert_eq!(injector.targeted_nodes().len(), 3);
    }

    #[test]
    fn batched_trials_match_single_sample_passes_bit_for_bit() {
        let (graph, y) = toy();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let input = Tensor::ones(vec![1, 3]);
        let space = InjectionSpace::build(&target, &input).unwrap();
        let fault = FaultModel::single_bit_fixed32();
        let mut rng = StdRng::seed_from_u64(5);
        let trials: Vec<FaultInjector> = (0..3)
            .map(|_| FaultInjector::plan_random(fault, &space, &mut rng))
            .collect();

        let exec = Executor::new(&graph);
        // Reference: each trial as its own single-sample pass.
        let singles: Vec<Tensor> = trials
            .iter()
            .map(|injector| {
                let mut injector = injector.clone();
                exec.run_with(&[("x", input.clone())], y, &mut injector)
                    .unwrap()
            })
            .collect();

        // Batched: all three trials in one [3, ...] pass.
        let feed = input.repeat_batch(3).unwrap();
        let mut batched = BatchFaultInjector::new(trials, &space);
        let out = exec.run_with(&[("x", feed)], y, &mut batched).unwrap();
        for (t, single) in singles.iter().enumerate() {
            assert_eq!(
                out.batch_row(t).unwrap(),
                *single,
                "trial {t} diverged between the batched and single-sample pass"
            );
        }
        assert!(batched.trials().iter().all(FaultInjector::fully_injected));
        assert!(batched.violation().is_none());
    }

    /// An injectable operator computed purely from constants produces the same output
    /// length whatever the batch size; targeting it in a batched pass must be flagged,
    /// never silently mis-injected.
    #[test]
    fn non_batch_scaling_targets_are_flagged_not_silently_diverged() {
        use ranger_graph::{Graph, Op};
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c = g.add_const("c", Tensor::ones(vec![6]), false);
        let frozen = g.add_node("frozen", Op::Identity, vec![c]);
        let y = g.add_node("double", Op::ScalarMul { factor: 2.0 }, vec![x]);

        let target = InjectionTarget {
            graph: &g,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let input = Tensor::ones(vec![1, 3]);
        let space = InjectionSpace::build(&target, &input).unwrap();
        assert_eq!(space.values_of(frozen), Some(6));

        let fault = FaultModel::single_bit_fixed32();
        let flip = PlannedFlip {
            site: InjectionSite {
                node: frozen,
                element: 0,
            },
            bit: 1,
        };
        let trials = vec![FaultInjector::with_plan(fault, vec![flip]); 2];
        let mut batched = BatchFaultInjector::new(trials, &space);
        let feed = input.repeat_batch(2).unwrap();
        Executor::new(&g)
            .run_with(&[("x", feed)], y, &mut batched)
            .unwrap();
        let violation = batched.violation().expect("violation must be flagged");
        assert!(violation.contains("frozen") && violation.contains("batch dimension"));
        // The frozen constant was never corrupted.
        assert!(batched.trials().iter().all(|t| t.injected().is_empty()));
    }

    /// On a fixed-point backend the injector flips stored words; the lazily decoded f32
    /// mirror served by `Values::get` must always reflect the flip — over repeated
    /// passes through one arena, with mirrors decoded between passes (the campaign
    /// runner's exact read pattern).
    #[test]
    fn word_flips_dirty_the_lazy_mirror() {
        use ranger_graph::BackendKind;
        let (graph, y) = toy();
        let fault = FaultModel {
            datatype: ranger_tensor::DataType::fixed16(),
            bits: 1,
        };
        let site = InjectionSite {
            node: y,
            element: 0,
        };
        let plan = graph.compile_with(BackendKind::Fixed16.backend()).unwrap();
        let mut values = plan.buffers();
        let feeds = [("x", Tensor::ones(vec![1, 3]))];
        // Golden pass, mirror decoded.
        plan.run_into(
            &mut values,
            &feeds,
            &mut ranger_graph::exec::NoopInterceptor,
        )
        .unwrap();
        let golden = values.get(y).unwrap().clone();
        for bit in [1u32, 13] {
            let mut injector = FaultInjector::with_plan(fault, vec![PlannedFlip { site, bit }]);
            plan.run_into(&mut values, &feeds, &mut injector).unwrap();
            assert!(injector.fully_injected());
            let faulty = values.get(y).unwrap();
            assert_ne!(faulty, &golden, "bit {bit}: flip must reach the mirror");
            assert_eq!(
                &values.get_q(y).unwrap().dequantize(),
                faulty,
                "bit {bit}: mirror and stored words diverged"
            );
            // A clean pass through the same arena restores the golden mirror.
            plan.run_into(
                &mut values,
                &feeds,
                &mut ranger_graph::exec::NoopInterceptor,
            )
            .unwrap();
            assert_eq!(values.get(y).unwrap(), &golden, "bit {bit}");
        }
    }

    /// The tiled bit-for-bit discipline at the injector level: the same batched plans,
    /// run through the tiled scheduler at several tile sizes (including a non-divisor
    /// and one larger than the batch), corrupt exactly the same elements as the untiled
    /// batched pass — on the f32 reference and on a fixed-point backend's words.
    #[test]
    fn batched_tiled_passes_match_untiled_at_every_tile_size() {
        use ranger_graph::BackendKind;
        let (graph, y) = toy();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let input = Tensor::ones(vec![1, 3]);
        let space = InjectionSpace::build(&target, &input).unwrap();
        for kind in [BackendKind::F32, BackendKind::Fixed16] {
            let fault = match kind {
                BackendKind::Fixed16 => FaultModel {
                    datatype: ranger_tensor::DataType::fixed16(),
                    bits: 1,
                },
                _ => FaultModel::single_bit_fixed32(),
            };
            let mut rng = StdRng::seed_from_u64(9);
            let trials: Vec<FaultInjector> = (0..4)
                .map(|_| FaultInjector::plan_random(fault, &space, &mut rng))
                .collect();
            let plan = graph.compile_with(kind.backend()).unwrap();
            let feeds = [("x", input.repeat_batch(4).unwrap())];
            let mut untiled = BatchFaultInjector::new(trials.clone(), &space);
            let golden = plan.run(&feeds, &mut untiled).unwrap();
            let golden_out = golden.get(y).unwrap();
            assert!(untiled.trials().iter().all(FaultInjector::fully_injected));

            let schedule = plan.tiled_schedule(&[y]);
            assert!(schedule.segments() >= 1);
            for tile_rows in [1usize, 2, 3, 7] {
                let mut tiled = BatchFaultInjector::new(trials.clone(), &space);
                let mut values = plan.buffers();
                plan.run_tiled_into(&mut values, &feeds, &mut tiled, &schedule, tile_rows)
                    .unwrap();
                assert!(
                    tiled.trials().iter().all(FaultInjector::fully_injected),
                    "{kind:?} tile_rows={tile_rows}: every flip must land exactly once"
                );
                assert!(tiled.violation().is_none());
                let out = values.get(y).unwrap();
                let (a, b): (Vec<u32>, Vec<u32>) = (
                    golden_out.data().iter().map(|v| v.to_bits()).collect(),
                    out.data().iter().map(|v| v.to_bits()).collect(),
                );
                assert_eq!(a, b, "{kind:?} tile_rows={tile_rows} diverged");
            }
        }
    }

    #[test]
    fn flips_outside_output_bounds_are_skipped() {
        let (graph, y) = toy();
        let fault = FaultModel::single_bit_fixed32();
        let mut injector = FaultInjector::with_plan(
            fault,
            vec![PlannedFlip {
                site: InjectionSite {
                    node: y,
                    element: 999,
                },
                bit: 1,
            }],
        );
        let exec = Executor::new(&graph);
        let input = Tensor::ones(vec![1, 3]);
        let out = exec.run_with(&[("x", input)], y, &mut injector).unwrap();
        assert!(!injector.fully_injected());
        assert!(!out.has_non_finite());
    }
}
