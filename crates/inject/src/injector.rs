//! The interceptor that corrupts operator outputs during a forward pass.

use crate::fault::FaultModel;
use crate::space::{InjectionSite, InjectionSpace};
use rand::Rng;
use ranger_graph::{Interceptor, Node, NodeId};
use ranger_tensor::Tensor;

/// One planned corruption: a site plus the bit to flip there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFlip {
    /// Where the flip strikes.
    pub site: InjectionSite,
    /// Which bit of the datatype representation is flipped (0 = least significant).
    pub bit: u32,
}

/// An [`Interceptor`] that applies a set of planned bit flips during one forward pass.
///
/// The injector is constructed per trial (one plan per execution, matching the paper's
/// "at most one fault occurs per program execution" assumption — a multi-bit plan is still
/// a single transient fault event).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    fault: FaultModel,
    plan: Vec<PlannedFlip>,
    injected: Vec<PlannedFlip>,
}

impl FaultInjector {
    /// Creates an injector that applies exactly the given flips.
    pub fn with_plan(fault: FaultModel, plan: Vec<PlannedFlip>) -> Self {
        FaultInjector {
            fault,
            plan,
            injected: Vec::new(),
        }
    }

    /// Plans a random fault according to `fault`: each of the `fault.bits` flips picks an
    /// independent site in `space` and an independent bit position.
    pub fn plan_random<R: Rng + ?Sized>(
        fault: FaultModel,
        space: &InjectionSpace,
        rng: &mut R,
    ) -> Self {
        let plan = (0..fault.bits)
            .map(|_| PlannedFlip {
                site: space.sample(rng),
                bit: rng.gen_range(0..fault.datatype.bit_width()),
            })
            .collect();
        Self::with_plan(fault, plan)
    }

    /// The flips this injector will apply.
    pub fn plan(&self) -> &[PlannedFlip] {
        &self.plan
    }

    /// The flips that were actually applied during the last execution.
    pub fn injected(&self) -> &[PlannedFlip] {
        &self.injected
    }

    /// Returns `true` if every planned flip was applied (i.e. each targeted operator was
    /// executed and its output was large enough).
    pub fn fully_injected(&self) -> bool {
        self.injected.len() == self.plan.len()
    }

    /// Nodes targeted by this plan.
    pub fn targeted_nodes(&self) -> Vec<NodeId> {
        self.plan.iter().map(|f| f.site.node).collect()
    }
}

impl Interceptor for FaultInjector {
    fn after_op(&mut self, node: &Node, output: &mut Tensor) {
        for flip in &self.plan {
            if flip.site.node == node.id && flip.site.element < output.len() {
                let value = output.data()[flip.site.element];
                let corrupted = self.fault.datatype.flip_bit(value, flip.bit);
                output.data_mut()[flip.site.element] = corrupted;
                self.injected.push(*flip);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InjectionTarget;
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::{Executor, GraphBuilder};

    fn toy() -> (ranger_graph::Graph, NodeId) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 3, 4, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 4, 2, &mut rng);
        (b.into_graph(), y)
    }

    #[test]
    fn planned_flip_changes_exactly_one_value_path() {
        let (graph, y) = toy();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let input = Tensor::ones(vec![1, 3]);
        let exec = Executor::new(&graph);
        let golden = exec.run_simple(&[("x", input.clone())], y).unwrap();

        let space = InjectionSpace::build(&target, &input).unwrap();
        assert!(space.total_values() > 0);
        let fault = FaultModel::single_bit_fixed32();
        // Flip a high-order bit of the final dense layer's output: the corruption cannot
        // be masked by a downstream ReLU, so the output must deviate substantially.
        let site = InjectionSite {
            node: y,
            element: 0,
        };
        let mut injector = FaultInjector::with_plan(fault, vec![PlannedFlip { site, bit: 29 }]);
        let faulty = exec.run_with(&[("x", input)], y, &mut injector).unwrap();
        assert!(injector.fully_injected());
        assert_eq!(injector.injected().len(), 1);
        let deviation = golden.max_abs_diff(&faulty).unwrap();
        assert!(
            deviation > 1.0,
            "high-order flip should propagate, deviation {deviation}"
        );
    }

    #[test]
    fn plan_random_respects_bit_width_and_count() {
        let (graph, y) = toy();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let input = Tensor::ones(vec![1, 3]);
        let space = InjectionSpace::build(&target, &input).unwrap();
        let fault = FaultModel {
            datatype: ranger_tensor::DataType::fixed16(),
            bits: 3,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let injector = FaultInjector::plan_random(fault, &space, &mut rng);
        assert_eq!(injector.plan().len(), 3);
        for flip in injector.plan() {
            assert!(flip.bit < 16);
        }
        assert_eq!(injector.targeted_nodes().len(), 3);
    }

    #[test]
    fn flips_outside_output_bounds_are_skipped() {
        let (graph, y) = toy();
        let fault = FaultModel::single_bit_fixed32();
        let mut injector = FaultInjector::with_plan(
            fault,
            vec![PlannedFlip {
                site: InjectionSite {
                    node: y,
                    element: 999,
                },
                bit: 1,
            }],
        );
        let exec = Executor::new(&graph);
        let input = Tensor::ones(vec![1, 3]);
        let out = exec.run_with(&[("x", input)], y, &mut injector).unwrap();
        assert!(!injector.fully_injected());
        assert!(!out.has_non_finite());
    }
}
