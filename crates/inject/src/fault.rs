//! The fault model: datatype and number of independent bit flips per execution.

use ranger_tensor::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transient-fault model.
///
/// The paper's primary fault model is a single bit flip per inference in the output value
/// of one operator, with the value encoded as a 32-bit fixed-point number (RQ1–RQ3); RQ4
/// uses a 16-bit fixed-point datatype, and Section VI-B evaluates 2–5 independent bit
/// flips per inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// The numeric representation the corrupted value is encoded in.
    pub datatype: DataType,
    /// Number of independent bit flips per execution. Each flip picks its own operator
    /// output value, so `bits > 1` can corrupt several values (the conservative
    /// multiple-independent-flip model of Section VI-B).
    pub bits: usize,
}

impl FaultModel {
    /// Single bit flip in the 32-bit fixed-point datatype (the paper's default).
    pub fn single_bit_fixed32() -> Self {
        FaultModel {
            datatype: DataType::fixed32(),
            bits: 1,
        }
    }

    /// Single bit flip in the 16-bit fixed-point datatype (RQ4).
    pub fn single_bit_fixed16() -> Self {
        FaultModel {
            datatype: DataType::fixed16(),
            bits: 1,
        }
    }

    /// Single bit flip in the IEEE-754 float32 representation.
    pub fn single_bit_float32() -> Self {
        FaultModel {
            datatype: DataType::Float32,
            bits: 1,
        }
    }

    /// `bits` independent bit flips in the 32-bit fixed-point datatype (Section VI-B).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn multi_bit_fixed32(bits: usize) -> Self {
        assert!(bits > 0, "a fault model needs at least one bit flip");
        FaultModel {
            datatype: DataType::fixed32(),
            bits,
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::single_bit_fixed32()
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bit flip(s) in {}", self.bits, self.datatype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_primary_model() {
        let m = FaultModel::default();
        assert_eq!(m.bits, 1);
        assert_eq!(m.datatype, DataType::fixed32());
        assert_eq!(m, FaultModel::single_bit_fixed32());
    }

    #[test]
    fn constructors_produce_expected_widths() {
        assert_eq!(FaultModel::single_bit_fixed16().datatype.bit_width(), 16);
        assert_eq!(FaultModel::single_bit_float32().datatype.bit_width(), 32);
        assert_eq!(FaultModel::multi_bit_fixed32(3).bits, 3);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bit_model_is_rejected() {
        FaultModel::multi_bit_fixed32(0);
    }

    #[test]
    fn display_mentions_bits_and_type() {
        let s = FaultModel::multi_bit_fixed32(2).to_string();
        assert!(s.contains('2') && s.contains("fixed"));
    }
}
