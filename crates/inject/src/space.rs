//! The injection state space: which values a transient fault may corrupt.

use crate::InjectionTarget;
use rand::Rng;
use ranger_graph::exec::{Executor, Interceptor};
use ranger_graph::{ExecPlan, GraphError, Node, NodeId};
use ranger_tensor::{FixedSpec, QTensor, Tensor};

/// One concrete place a fault can strike: an element of an operator's output tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionSite {
    /// The operator whose output is corrupted.
    pub node: NodeId,
    /// The flat element index within that output tensor.
    pub element: usize,
}

/// The set of all injectable values of a model on a given input, weighted by element
/// count.
///
/// The paper injects faults "into the output values of operators in the graph", i.e. the
/// probability that a given operator is hit is proportional to the number of values it
/// produces (its share of the state space). The space is computed from one profiling run
/// because output shapes are only known at execution time.
#[derive(Debug, Clone)]
pub struct InjectionSpace {
    sites: Vec<(NodeId, usize)>,
    total: usize,
    /// The integer word layout of the profiled values when the space was built on a
    /// fixed-point backend: faults drawn from this space strike raw words of this format.
    spec: Option<FixedSpec>,
}

struct SizeRecorder<'a> {
    excluded: &'a [NodeId],
    sites: Vec<(NodeId, usize)>,
}

impl Interceptor for SizeRecorder<'_> {
    fn after_op(&mut self, node: &Node, output: &mut Tensor) {
        if !self.excluded.contains(&node.id) {
            self.sites.push((node.id, output.len()));
        }
    }

    // On a fixed-point backend, record the word count directly — no dequantized mirror
    // round trip is needed to size the state space.
    fn after_op_words(&mut self, node: &Node, output: &mut QTensor) {
        if !self.excluded.contains(&node.id) {
            self.sites.push((node.id, output.len()));
        }
    }
}

impl InjectionSpace {
    /// Profiles `target` on `input` with the `f32` reference executor and builds the
    /// injection space.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the profiling forward pass fails.
    pub fn build(target: &InjectionTarget<'_>, input: &Tensor) -> Result<Self, GraphError> {
        let mut recorder = SizeRecorder {
            excluded: target.excluded,
            sites: Vec::new(),
        };
        let exec = Executor::new(target.graph);
        exec.run(&[(target.input_name, input.clone())], &mut recorder)?;
        Ok(Self::from_recorder(recorder, None))
    }

    /// Profiles `target` on `input` through an already-compiled plan, so the space
    /// reflects the tensors the plan's backend actually materializes — on a fixed-point
    /// backend that means the raw integer words faults will strike, and the space records
    /// their [word layout](InjectionSpace::word_layout).
    ///
    /// (Operator output *element counts* are backend-independent, so spaces built on any
    /// backend weight operators identically and seeded fault plans stay comparable across
    /// backends.)
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the profiling forward pass fails.
    pub fn build_on(
        plan: &ExecPlan<'_>,
        target: &InjectionTarget<'_>,
        input: &Tensor,
    ) -> Result<Self, GraphError> {
        let mut recorder = SizeRecorder {
            excluded: target.excluded,
            sites: Vec::new(),
        };
        plan.run(&[(target.input_name, input.clone())], &mut recorder)?;
        Ok(Self::from_recorder(recorder, plan.backend().spec()))
    }

    fn from_recorder(recorder: SizeRecorder<'_>, spec: Option<FixedSpec>) -> Self {
        let total = recorder.sites.iter().map(|(_, n)| n).sum();
        InjectionSpace {
            sites: recorder.sites,
            total,
            spec,
        }
    }

    /// Total number of injectable values (the state space size).
    pub fn total_values(&self) -> usize {
        self.total
    }

    /// The fixed-point word layout of the injectable values, when the space was profiled
    /// on a fixed-point backend ([`InjectionSpace::build_on`]); `None` when the values
    /// are `f32` tensors.
    pub fn word_layout(&self) -> Option<FixedSpec> {
        self.spec
    }

    /// Number of injectable operators.
    pub fn operator_count(&self) -> usize {
        self.sites.len()
    }

    /// Returns the number of injectable values produced by `node`, if it is injectable.
    pub fn values_of(&self, node: NodeId) -> Option<usize> {
        self.sites
            .iter()
            .find(|(id, _)| *id == node)
            .map(|(_, n)| *n)
    }

    /// Samples an injection site uniformly over the state space (operators weighted by the
    /// number of values they produce).
    ///
    /// # Panics
    ///
    /// Panics if the space is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> InjectionSite {
        assert!(
            self.total > 0,
            "cannot sample from an empty injection space"
        );
        let mut pick = rng.gen_range(0..self.total);
        for &(node, count) in &self.sites {
            if pick < count {
                return InjectionSite {
                    node,
                    element: pick,
                };
            }
            pick -= count;
        }
        unreachable!("sample index must fall inside one of the operators")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::GraphBuilder;

    fn toy_target() -> (ranger_graph::Graph, NodeId, NodeId) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 4, 6, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 6, 2, &mut rng);
        let relu_node = h;
        (b.into_graph(), y, relu_node)
    }

    #[test]
    fn space_counts_operator_outputs() {
        let (graph, y, _) = toy_target();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let space = InjectionSpace::build(&target, &Tensor::ones(vec![1, 4])).unwrap();
        // Operators: fc1 MatMul (6), fc1 BiasAdd (6), Relu (6), fc2 MatMul (2), fc2 BiasAdd (2).
        assert_eq!(space.operator_count(), 5);
        assert_eq!(space.total_values(), 6 + 6 + 6 + 2 + 2);
    }

    #[test]
    fn excluded_nodes_are_not_in_the_space() {
        let (graph, y, _) = toy_target();
        let excluded = vec![y];
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: y,
            excluded: &excluded,
        };
        let space = InjectionSpace::build(&target, &Tensor::ones(vec![1, 4])).unwrap();
        assert_eq!(space.values_of(y), None);
        assert_eq!(space.operator_count(), 4);
    }

    #[test]
    fn sampling_covers_operators_in_proportion() {
        let (graph, y, relu) = toy_target();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let space = InjectionSpace::build(&target, &Tensor::ones(vec![1, 4])).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut relu_hits = 0usize;
        let n = 4000;
        for _ in 0..n {
            let site = space.sample(&mut rng);
            assert!(site.element < space.values_of(site.node).unwrap());
            if site.node == relu {
                relu_hits += 1;
            }
        }
        // The ReLU holds 6/22 of the state space; allow a generous tolerance.
        let fraction = relu_hits as f64 / n as f64;
        assert!(
            (fraction - 6.0 / 22.0).abs() < 0.05,
            "fraction was {fraction}"
        );
    }

    #[test]
    #[should_panic(expected = "empty injection space")]
    fn sampling_empty_space_panics() {
        let space = InjectionSpace {
            sites: Vec::new(),
            total: 0,
            spec: None,
        };
        let mut rng = StdRng::seed_from_u64(0);
        space.sample(&mut rng);
    }

    /// Spaces built on a fixed-point plan weight operators identically to the reference
    /// space (element counts are backend-independent) and record the word layout faults
    /// will strike.
    #[test]
    fn plan_built_space_matches_reference_and_records_layout() {
        use ranger_graph::BackendKind;
        let (graph, y, _) = toy_target();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: y,
            excluded: &[],
        };
        let input = Tensor::ones(vec![1, 4]);
        let reference = InjectionSpace::build(&target, &input).unwrap();
        assert_eq!(reference.word_layout(), None);
        for kind in [BackendKind::F32, BackendKind::Fixed16, BackendKind::Fixed32] {
            let plan = graph.compile_with(kind.backend()).unwrap();
            let space = InjectionSpace::build_on(&plan, &target, &input).unwrap();
            assert_eq!(space.total_values(), reference.total_values(), "{kind}");
            assert_eq!(space.operator_count(), reference.operator_count(), "{kind}");
            assert_eq!(space.word_layout(), kind.spec(), "{kind}");
        }
    }
}
