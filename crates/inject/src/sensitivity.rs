//! Bit-position sensitivity analysis.
//!
//! Section III-B of the paper argues that DNN computations are approximately monotone, so
//! critical faults cluster in the high-order bits: a flip in a high-order bit causes a
//! large value deviation at the fault site and therefore a large deviation at the output,
//! while low-order-bit flips are masked by the network's inherent resilience. This module
//! measures that relationship directly — the per-bit SDC rate — which both validates the
//! monotonicity assumption behind Ranger and shows how range restriction "transfers"
//! faults from the high-order bits to the harmless low-order ones.

use crate::fault::FaultModel;
use crate::injector::{FaultInjector, PlannedFlip};
use crate::judge::SdcJudge;
use crate::space::InjectionSpace;
use crate::InjectionTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ranger_graph::{Executor, GraphError};
use ranger_tensor::stats::Proportion;
use ranger_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Per-bit-position SDC statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BitSensitivity {
    /// One entry per bit position (index 0 = least significant bit): the SDC proportion
    /// observed when flipping exactly that bit at random fault sites.
    pub per_bit: Vec<Proportion>,
}

impl BitSensitivity {
    /// The SDC rate of the most significant non-sign bit.
    pub fn high_order_rate(&self) -> f64 {
        self.per_bit
            .len()
            .checked_sub(2)
            .and_then(|i| self.per_bit.get(i))
            .map(|p| p.rate())
            .unwrap_or(0.0)
    }

    /// The SDC rate of the least significant bit.
    pub fn low_order_rate(&self) -> f64 {
        self.per_bit.first().map(|p| p.rate()).unwrap_or(0.0)
    }

    /// Returns `true` if the per-bit SDC rates are approximately non-decreasing with bit
    /// significance (ignoring the sign bit), i.e. the monotone clustering of critical
    /// faults in high-order bits that the paper describes. `slack` absorbs sampling noise.
    pub fn is_approximately_monotone(&self, slack: f64) -> bool {
        if self.per_bit.len() < 2 {
            return true;
        }
        // Exclude the sign bit (the last position): its effect depends on magnitude only.
        let rates: Vec<f64> = self.per_bit[..self.per_bit.len() - 1]
            .iter()
            .map(|p| p.rate())
            .collect();
        let mut running_max = 0.0f64;
        for &r in &rates {
            if r + slack < running_max {
                return false;
            }
            running_max = running_max.max(r);
        }
        true
    }
}

/// Measures the SDC rate per flipped bit position: for every bit of the datatype, injects
/// `trials_per_bit` faults (each at an independently chosen random site) flipping exactly
/// that bit, and judges the outcomes against the fault-free output using the first
/// category of `judge`.
///
/// # Errors
///
/// Returns a [`GraphError`] if any forward pass fails.
pub fn bit_sensitivity(
    target: &InjectionTarget<'_>,
    input: &Tensor,
    judge: &dyn SdcJudge,
    fault: FaultModel,
    trials_per_bit: usize,
    seed: u64,
) -> Result<BitSensitivity, GraphError> {
    let exec = Executor::new(target.graph);
    let golden = exec.run_simple(&[(target.input_name, input.clone())], target.output)?;
    let space = InjectionSpace::build(target, input)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let width = fault.datatype.bit_width();
    let mut per_bit = Vec::with_capacity(width as usize);
    for bit in 0..width {
        let mut sdcs = 0u64;
        for _ in 0..trials_per_bit {
            let plan = vec![PlannedFlip {
                site: space.sample(&mut rng),
                bit,
            }];
            let mut injector = FaultInjector::with_plan(fault, plan);
            let faulty = exec.run_with(
                &[(target.input_name, input.clone())],
                target.output,
                &mut injector,
            )?;
            if judge.judge(&golden, &faulty)[0] {
                sdcs += 1;
            }
        }
        per_bit.push(Proportion::new(sdcs, trials_per_bit as u64));
    }
    Ok(BitSensitivity { per_bit })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::judge::ClassifierJudge;
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::GraphBuilder;

    fn toy_classifier() -> (ranger_graph::Graph, ranger_graph::NodeId) {
        let mut rng = StdRng::seed_from_u64(8);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 6, 16, &mut rng);
        let h = b.relu(h);
        let y = b.dense(h, 16, 4, &mut rng);
        let probs = b.softmax(y);
        (b.into_graph(), probs)
    }

    #[test]
    fn high_order_bits_cause_more_sdcs_than_low_order_bits() {
        let (graph, probs) = toy_classifier();
        let target = InjectionTarget {
            graph: &graph,
            input_name: "x",
            output: probs,
            excluded: &[],
        };
        let input = Tensor::filled(vec![1, 6], 0.8);
        let judge = ClassifierJudge::top1();
        let sensitivity = bit_sensitivity(
            &target,
            &input,
            &judge,
            FaultModel::single_bit_fixed32(),
            40,
            3,
        )
        .unwrap();
        assert_eq!(sensitivity.per_bit.len(), 32);
        assert!(
            sensitivity.high_order_rate() >= sensitivity.low_order_rate(),
            "high-order flips must be at least as damaging ({} vs {})",
            sensitivity.high_order_rate(),
            sensitivity.low_order_rate()
        );
        assert!(
            sensitivity.high_order_rate() > 0.0,
            "high-order flips should cause some SDCs"
        );
        assert!(
            sensitivity.low_order_rate() < 0.2,
            "low-order flips should be mostly benign"
        );
    }

    #[test]
    fn range_restriction_suppresses_high_order_bit_sdcs() {
        let (graph, probs) = toy_classifier();
        let input = Tensor::filled(vec![1, 6], 0.8);
        let judge = ClassifierJudge::top1();
        let fault = FaultModel::single_bit_fixed32();

        let unprotected = {
            let target = InjectionTarget {
                graph: &graph,
                input_name: "x",
                output: probs,
                excluded: &[],
            };
            bit_sensitivity(&target, &input, &judge, fault, 30, 5).unwrap()
        };
        // Clamp every ReLU with a generous bound.
        let mut protected = graph.clone();
        let relus: Vec<_> = protected
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, ranger_graph::Op::Relu))
            .map(|n| n.id)
            .collect();
        for id in relus {
            protected
                .insert_after(id, "ranger", ranger_graph::Op::Clamp { lo: 0.0, hi: 20.0 })
                .unwrap();
        }
        let with_ranger = {
            let target = InjectionTarget {
                graph: &protected,
                input_name: "x",
                output: probs,
                excluded: &[],
            };
            bit_sensitivity(&target, &input, &judge, fault, 30, 5).unwrap()
        };
        // The protected graph has a slightly different (larger) injection space, so the
        // comparison is statistical: averaged over the high-order bits, range restriction
        // must not make things worse beyond sampling noise.
        let high_bits = 24..31;
        let mean_high = |s: &BitSensitivity| {
            let rates: Vec<f64> = high_bits.clone().map(|b| s.per_bit[b].rate()).collect();
            rates.iter().sum::<f64>() / rates.len() as f64
        };
        assert!(
            mean_high(&with_ranger) <= mean_high(&unprotected) + 0.15,
            "range restriction must not make high-order flips worse: {} vs {}",
            mean_high(&with_ranger),
            mean_high(&unprotected)
        );
    }

    #[test]
    fn monotonicity_helper_detects_violations() {
        let monotone = BitSensitivity {
            per_bit: vec![
                Proportion::new(0, 10),
                Proportion::new(2, 10),
                Proportion::new(5, 10),
                Proportion::new(9, 10),
                Proportion::new(3, 10), // sign bit: ignored
            ],
        };
        assert!(monotone.is_approximately_monotone(0.05));
        let broken = BitSensitivity {
            per_bit: vec![
                Proportion::new(9, 10),
                Proportion::new(0, 10),
                Proportion::new(0, 10),
            ],
        };
        assert!(!broken.is_approximately_monotone(0.05));
        assert!(BitSensitivity { per_bit: vec![] }.is_approximately_monotone(0.0));
    }
}
