//! TensorFI-style fault injection for dataflow-graph DNNs.
//!
//! The paper evaluates Ranger by injecting transient hardware faults — single and multiple
//! bit flips — into the output values of operators in the TensorFlow graph using TensorFI,
//! and measuring the Silent Data Corruption (SDC) rate with and without Ranger's
//! protection. This crate reproduces that methodology on top of
//! [`ranger_graph`]'s execution-interception hook:
//!
//! * [`space`] — the injection state space: every element of every injectable operator
//!   output (the last fully-connected layer and everything downstream is excluded, as in
//!   the paper), weighted by element count.
//! * [`fault`] — the fault model: which datatype the corrupted value is encoded in and how
//!   many independent bit flips occur per execution.
//! * [`injector`] — an [`Interceptor`](ranger_graph::Interceptor) that corrupts the chosen
//!   value(s) during a forward pass.
//! * [`judge`] — SDC criteria: image misclassification (top-1 / top-5) for classifiers,
//!   steering-angle deviation thresholds (15°/30°/60°/120°) for the AV models.
//! * [`campaign`] — the campaign runner: golden run, repeated faulty runs, SDC statistics
//!   with 95% confidence intervals.
//!
//! # Example
//!
//! ```
//! use ranger_inject::prelude::*;
//! use ranger_graph::{GraphBuilder, Op};
//! use ranger_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A toy two-layer network.
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut b = GraphBuilder::new();
//! let x = b.input("x");
//! let h = b.dense(x, 4, 8, &mut rng);
//! let h = b.relu(h);
//! let y = b.dense(h, 8, 3, &mut rng);
//! let probs = b.softmax(y);
//! let graph = b.into_graph();
//!
//! let target = InjectionTarget {
//!     graph: &graph,
//!     input_name: "x",
//!     output: probs,
//!     excluded: &[],
//! };
//! let config = CampaignConfig {
//!     trials: 20,
//!     batch: 4,   // 4 trials per forward pass …
//!     workers: 2, // … scheduled across 2 worker threads —
//!     // any (batch, workers) combination reports identical SDC counts.
//!     backend: BackendKind::F32, // or Fixed16/Fixed32 for genuine fixed-point inference
//!     fault: FaultModel::single_bit_fixed32(),
//!     seed: 1,
//!     tile: 2,    // run batched passes in row groups of 2 trials (0 = untiled)
//! };
//! let inputs = vec![Tensor::ones(vec![1, 4])];
//! let judge = ClassifierJudge::top1();
//! let result = run_campaign(&target, &inputs, &judge, &config)?;
//! assert_eq!(result.trials, 20);
//! # Ok::<(), ranger_inject::CampaignError>(())
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod fault;
pub mod injector;
pub mod judge;
pub mod sensitivity;
pub mod space;

pub use campaign::{
    campaign_chunks, default_chunk_len, default_tile, run_campaign, trial_rng, try_default_tile,
    CampaignConfig, CampaignError, CampaignResult, ChunkTally, PreparedCampaign, TrialChunk,
    TILE_AUTO,
};
pub use fault::FaultModel;
pub use injector::{BatchFaultInjector, FaultInjector};
pub use judge::{ClassifierJudge, SdcJudge, SteeringJudge};
// Backend selection is part of the campaign configuration surface; re-exported so
// campaign callers need not depend on ranger-graph directly.
pub use ranger_graph::{default_backend, try_default_backend, BackendKind};
pub use sensitivity::{bit_sensitivity, BitSensitivity};
pub use space::{InjectionSite, InjectionSpace};

/// Convenience re-exports for experiment code.
pub mod prelude {
    pub use crate::campaign::{
        campaign_chunks, default_chunk_len, default_tile, run_campaign, trial_rng,
        try_default_tile, CampaignConfig, CampaignError, CampaignResult, ChunkTally,
        PreparedCampaign, TrialChunk, TILE_AUTO,
    };
    pub use crate::fault::FaultModel;
    pub use crate::injector::{BatchFaultInjector, FaultInjector};
    pub use crate::judge::{ClassifierJudge, SdcJudge, SteeringJudge};
    pub use crate::sensitivity::{bit_sensitivity, BitSensitivity};
    pub use crate::space::{InjectionSite, InjectionSpace};
    pub use crate::InjectionTarget;
    pub use ranger_graph::{default_backend, try_default_backend, BackendKind};
}

use ranger_graph::{Graph, NodeId};

/// Everything the campaign runner needs to know about the DNN under test.
#[derive(Debug, Clone, Copy)]
pub struct InjectionTarget<'a> {
    /// The graph to execute (protected or unprotected).
    pub graph: &'a Graph,
    /// Name of the input placeholder to feed images into.
    pub input_name: &'a str,
    /// The node whose value is the DNN's final output.
    pub output: NodeId,
    /// Nodes excluded from injection (the paper excludes the last FC layer and everything
    /// downstream of it).
    pub excluded: &'a [NodeId],
}
