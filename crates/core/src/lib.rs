//! Ranger: a low-cost fault corrector for DNNs through selective range restriction.
//!
//! This crate is the Rust reproduction of the primary contribution of *"A Low-cost Fault
//! Corrector for Deep Neural Networks through Range Restriction"* (Chen, Li, Pattabiraman,
//! DSN 2021). Ranger makes a DNN resilient to transient hardware faults by:
//!
//! 1. **Deriving restriction bounds** for every activation (ACT) operation by profiling
//!    the values the network produces on a sample of its training data — or using a
//!    function's inherent bounds (Tanh, Sigmoid) where they exist ([`bounds`]).
//! 2. **Selectively inserting range-restriction operators** after the ACT operations and
//!    the pooling/reshape/concatenation operations that follow them (Algorithm 1 of the
//!    paper), so that the large value deviations caused by critical faults are dampened
//!    into small ones the DNN's inherent resilience tolerates ([`transform`]).
//!
//! The crate also implements the paper's design alternatives (reset-to-zero and random
//! replacement, Section VI-C) in [`alternatives`], the overhead accounting of Table III/IV
//! in [`overhead`], and the technique-comparison entries of Table VI in [`baselines`].
//!
//! # Example
//!
//! ```
//! use ranger::prelude::*;
//! use ranger_graph::GraphBuilder;
//! use ranger_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A small ReLU network.
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut b = GraphBuilder::new();
//! let x = b.input("x");
//! let h = b.dense(x, 4, 8, &mut rng);
//! let h = b.relu(h);
//! let pool = b.flatten(h);
//! let y = b.dense(pool, 8, 2, &mut rng);
//! let graph = b.into_graph();
//!
//! // Step 1: derive restriction bounds from (training) samples.
//! let samples = vec![Tensor::ones(vec![1, 4]), Tensor::zeros(vec![1, 4])];
//! let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default())?;
//!
//! // Step 2: insert Ranger into the selected layers.
//! let (protected, stats) = apply_ranger(&graph, &bounds, &RangerConfig::default())?;
//! assert!(stats.clamps_inserted > 0);
//! assert!(protected.clamp_count() > graph.clamp_count());
//! # Ok::<(), ranger_graph::GraphError>(())
//! ```

#![warn(missing_docs)]

pub mod alternatives;
pub mod baselines;
pub mod bounds;
pub mod overhead;
pub mod protect;
pub mod transform;

pub use bounds::{profile_bounds, profile_convergence, ActivationBounds, BoundsConfig};
pub use protect::{DesignAlternative, Protector, RangerProtector, Unprotected};
pub use transform::{apply_ranger, RangerConfig, RangerStats};

/// Convenience re-exports for experiment code.
pub mod prelude {
    pub use crate::alternatives::apply_design_alternative;
    pub use crate::bounds::{profile_bounds, profile_convergence, ActivationBounds, BoundsConfig};
    pub use crate::overhead::{flops_overhead, memory_overhead_bytes, OverheadReport};
    pub use crate::protect::{DesignAlternative, Protector, RangerProtector, Unprotected};
    pub use crate::transform::{apply_ranger, RangerConfig, RangerStats};
    pub use ranger_graph::op::RestorePolicy;
}
