//! Design alternatives for the range-restriction operator (paper Section VI-C).
//!
//! Ranger restores out-of-bounds values to the restriction bound (saturation). The paper
//! also evaluates two alternatives: resetting out-of-bounds values to zero (as proposed by
//! Reagen et al. for Minerva) and replacing them with a random value inside the
//! restriction range. Saturation preserves accuracy and is deterministic; zero-resetting
//! degrades accuracy sharply because the value reduction is drastic and zeros propagate
//! through subsequent multiplications.

use crate::bounds::ActivationBounds;
use crate::protect::{DesignAlternative, Protector};
use crate::transform::RangerStats;
use ranger_graph::op::RestorePolicy;
use ranger_graph::{Graph, GraphError};

/// Applies the Ranger transformation with the given out-of-bounds policy.
///
/// `RestorePolicy::Saturate` is exactly [`apply_ranger`](crate::transform::apply_ranger)
/// with the default configuration; `Zero` and `Random` are the Section VI-C design
/// alternatives. This is a thin wrapper over the
/// [`DesignAlternative`] protector.
///
/// # Errors
///
/// Returns a [`GraphError`] if the graph is malformed.
pub fn apply_design_alternative(
    graph: &Graph,
    bounds: &ActivationBounds,
    policy: RestorePolicy,
) -> Result<(Graph, RangerStats), GraphError> {
    DesignAlternative::new(policy).protect(graph, bounds)
}

/// The three restoration policies the paper discusses, in the order Section VI-C presents
/// them.
pub fn all_policies() -> [RestorePolicy; 3] {
    [
        RestorePolicy::Saturate,
        RestorePolicy::Zero,
        RestorePolicy::Random,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{profile_bounds, BoundsConfig};
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::{Executor, GraphBuilder, NodeId, Op};
    use ranger_tensor::Tensor;

    fn toy() -> (Graph, NodeId, NodeId) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 3, 6, &mut rng);
        let r = b.relu(h);
        let y = b.dense(r, 6, 2, &mut rng);
        (b.into_graph(), r, y)
    }

    #[test]
    fn saturate_alternative_matches_default_ranger() {
        let (graph, ..) = toy();
        let samples: Vec<Tensor> = (0..4)
            .map(|i| Tensor::filled(vec![1, 3], i as f32 * 0.3))
            .collect();
        let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let (a, _) = apply_design_alternative(&graph, &bounds, RestorePolicy::Saturate).unwrap();
        let (b, _) = crate::transform::apply_ranger(
            &graph,
            &bounds,
            &crate::transform::RangerConfig::default(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_policy_zeroes_out_of_bound_values() {
        let (graph, relu, y) = toy();
        let mut bounds = ActivationBounds::new();
        bounds.set(relu, 0.0, 1.0);
        let (zeroed, _) = apply_design_alternative(&graph, &bounds, RestorePolicy::Zero).unwrap();
        assert!(zeroed.nodes().iter().any(|n| matches!(
            n.op,
            Op::RangeRestore {
                policy: RestorePolicy::Zero,
                ..
            }
        )));

        // Feed an input that drives the ReLU above the bound: the zero policy collapses
        // the downstream values harder than saturation does.
        let input = Tensor::filled(vec![1, 3], 100.0);
        let exec = Executor::new(&graph);
        let golden = exec.run_simple(&[("x", input.clone())], y).unwrap();
        let (saturated, _) =
            apply_design_alternative(&graph, &bounds, RestorePolicy::Saturate).unwrap();
        let out_sat = Executor::new(&saturated)
            .run_simple(&[("x", input.clone())], y)
            .unwrap();
        let out_zero = Executor::new(&zeroed)
            .run_simple(&[("x", input)], y)
            .unwrap();
        let dev_sat = golden.max_abs_diff(&out_sat).unwrap();
        let dev_zero = golden.max_abs_diff(&out_zero).unwrap();
        assert!(
            dev_zero >= dev_sat,
            "zero-resetting should deviate at least as much as saturation ({dev_zero} vs {dev_sat})"
        );
    }

    #[test]
    fn random_policy_stays_inside_the_bounds_and_is_deterministic() {
        let (graph, relu, _) = toy();
        let mut bounds = ActivationBounds::new();
        bounds.set(relu, 0.0, 1.0);
        let (randomized, _) =
            apply_design_alternative(&graph, &bounds, RestorePolicy::Random).unwrap();
        let clamp_node = randomized
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Op::RangeRestore { .. }))
            .unwrap()
            .id;
        let input = Tensor::filled(vec![1, 3], 50.0);
        let exec = Executor::new(&randomized);
        let a = exec
            .run_simple(&[("x", input.clone())], clamp_node)
            .unwrap();
        let b = exec.run_simple(&[("x", input)], clamp_node).unwrap();
        assert_eq!(a, b, "random replacement must be reproducible");
        assert!(a.max() <= 1.0 && a.min() >= 0.0);
    }

    #[test]
    fn all_policies_lists_three() {
        assert_eq!(all_policies().len(), 3);
    }
}
