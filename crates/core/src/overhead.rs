//! Overhead accounting (paper Tables III and IV).
//!
//! Ranger's runtime cost is a handful of comparison operations per restricted value, so
//! the paper reports it in FLOPs (platform-independent) together with the one-time
//! instrumentation cost and the memory needed to store the restriction bounds.

use crate::bounds::ActivationBounds;
use ranger_graph::flops;
use ranger_graph::{Graph, GraphError};
use ranger_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// FLOPs of a model with and without Ranger, plus the relative overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// FLOPs of one forward pass of the unprotected model.
    pub baseline_flops: u64,
    /// FLOPs of one forward pass of the protected model.
    pub protected_flops: u64,
}

impl OverheadReport {
    /// The relative overhead `(protected - baseline) / baseline`, as a fraction.
    pub fn relative(&self) -> f64 {
        if self.baseline_flops == 0 {
            0.0
        } else {
            (self.protected_flops as f64 - self.baseline_flops as f64) / self.baseline_flops as f64
        }
    }

    /// The relative overhead as a percentage.
    pub fn percent(&self) -> f64 {
        self.relative() * 100.0
    }
}

/// Profiles the FLOPs of the unprotected and protected graphs on the same input
/// (reproducing the paper's Table IV).
///
/// # Errors
///
/// Returns a [`GraphError`] if either forward pass fails.
pub fn flops_overhead(
    baseline: &Graph,
    protected: &Graph,
    input_name: &str,
    input: &Tensor,
) -> Result<OverheadReport, GraphError> {
    let base = flops::profile(baseline, &[(input_name, input.clone())])?;
    let prot = flops::profile(protected, &[(input_name, input.clone())])?;
    Ok(OverheadReport {
        baseline_flops: base.total,
        protected_flops: prot.total,
    })
}

/// Memory overhead of deploying Ranger: the bytes needed to store the restriction bounds
/// (two `f32` per protected activation). The paper reports this as negligible relative to
/// model size (e.g. VGG16 weighs over 500 MB).
pub fn memory_overhead_bytes(bounds: &ActivationBounds) -> usize {
    bounds.storage_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{profile_bounds, BoundsConfig};
    use crate::transform::{apply_ranger, RangerConfig};
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::GraphBuilder;

    #[test]
    fn ranger_overhead_is_small_relative_to_convolution_cost() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let c = b.conv2d(x, 3, 16, 3, 1, ranger_graph::op::Padding::Same, &mut rng);
        let r = b.relu(c);
        let p = b.max_pool(r, 2, 2);
        let f = b.flatten(p);
        let _y = b.dense(f, 16 * 8 * 8, 10, &mut rng);
        let graph = b.into_graph();

        let samples = vec![Tensor::ones(vec![1, 3, 16, 16])];
        let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let (protected, _) = apply_ranger(&graph, &bounds, &RangerConfig::default()).unwrap();

        let report = flops_overhead(&graph, &protected, "x", &samples[0]).unwrap();
        assert!(report.protected_flops > report.baseline_flops);
        assert!(
            report.percent() < 5.0,
            "range restriction must be cheap, got {:.3}%",
            report.percent()
        );
        assert!(report.relative() > 0.0);
    }

    #[test]
    fn zero_baseline_is_handled() {
        let report = OverheadReport {
            baseline_flops: 0,
            protected_flops: 10,
        };
        assert_eq!(report.relative(), 0.0);
    }

    #[test]
    fn memory_overhead_counts_bound_storage() {
        let mut bounds = ActivationBounds::new();
        bounds.set(ranger_graph::NodeId::new(1), 0.0, 1.0);
        bounds.set(ranger_graph::NodeId::new(2), 0.0, 2.0);
        assert_eq!(memory_overhead_bytes(&bounds), 16);
    }
}
