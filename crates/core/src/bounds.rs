//! Step 1 of Ranger: deriving restriction bounds by profiling activation values.
//!
//! The paper derives each ACT operation's restriction bound from a randomly-sampled subset
//! of the training data (20% is enough in their study; Fig. 4 shows the observed maxima
//! converge quickly with the number of samples). Functions with inherent bounds (Tanh,
//! Sigmoid) do not need profiling. The restriction bound can conservatively be the maximum
//! observed value (the paper's default) or a lower percentile of the observed values to
//! trade accuracy for additional resilience (Section VI-A).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ranger_graph::exec::{Executor, Interceptor};
use ranger_graph::{Graph, GraphError, Node, NodeId};
use ranger_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the bound-profiling step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundsConfig {
    /// The percentile (0–100] of observed activation values used as the upper restriction
    /// bound. `100.0` (the default) uses the maximum observed value, the paper's
    /// conservative choice that preserves accuracy; lower percentiles trade accuracy for
    /// resilience (Section VI-A).
    pub percentile: f64,
    /// Size of the per-activation reservoir used for percentile estimation. The maximum is
    /// always tracked exactly; the reservoir only matters for percentiles below 100.
    pub reservoir: usize,
    /// Seed for reservoir sampling.
    pub seed: u64,
}

impl Default for BoundsConfig {
    fn default() -> Self {
        BoundsConfig {
            percentile: 100.0,
            reservoir: 4096,
            seed: 0,
        }
    }
}

impl BoundsConfig {
    /// A configuration using the given percentile of observed values as the bound.
    pub fn with_percentile(percentile: f64) -> Self {
        BoundsConfig {
            percentile,
            ..Default::default()
        }
    }
}

/// Restriction bounds for the activation operations of a graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ActivationBounds {
    bounds: HashMap<NodeId, (f32, f32)>,
}

impl ActivationBounds {
    /// Creates an empty set of bounds.
    pub fn new() -> Self {
        ActivationBounds::default()
    }

    /// Returns the `(lower, upper)` restriction bound for an activation node.
    pub fn get(&self, node: NodeId) -> Option<(f32, f32)> {
        self.bounds.get(&node).copied()
    }

    /// Sets the restriction bound for an activation node.
    pub fn set(&mut self, node: NodeId, lo: f32, hi: f32) {
        self.bounds.insert(node, (lo, hi));
    }

    /// Number of activation operations with bounds.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Returns `true` if no bounds were derived.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Iterates over `(node, (lower, upper))` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, (f32, f32))> + '_ {
        self.bounds.iter().map(|(&k, &v)| (k, v))
    }

    /// Bytes needed to store the bounds at deployment time (two `f32` per ACT operation) —
    /// the memory overhead the paper reports as negligible.
    pub fn storage_bytes(&self) -> usize {
        self.bounds.len() * 2 * std::mem::size_of::<f32>()
    }
}

/// Observes activation outputs, maintaining min/max and a value reservoir per ACT node.
struct BoundProfiler {
    stats: HashMap<NodeId, LayerStats>,
    reservoir: usize,
    rng: StdRng,
}

struct LayerStats {
    min: f32,
    max: f32,
    seen: usize,
    sample: Vec<f32>,
}

impl Interceptor for BoundProfiler {
    fn after_op(&mut self, node: &Node, output: &mut Tensor) {
        if !node.op.is_activation() {
            return;
        }
        let entry = self.stats.entry(node.id).or_insert(LayerStats {
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
            seen: 0,
            sample: Vec::new(),
        });
        for &v in output.data() {
            // Non-finite activations (e.g. from a deliberately corrupted profiling run)
            // would produce meaningless bounds; ignore them.
            if !v.is_finite() {
                continue;
            }
            entry.min = entry.min.min(v);
            entry.max = entry.max.max(v);
            entry.seen += 1;
            if entry.sample.len() < self.reservoir {
                entry.sample.push(v);
            } else {
                // Reservoir sampling keeps the percentile estimate unbiased.
                let j = self.rng.gen_range(0..entry.seen);
                if j < self.reservoir {
                    entry.sample[j] = v;
                }
            }
        }
    }
}

/// Derives restriction bounds for every activation operation of `graph` by running the
/// provided profiling samples through it.
///
/// Activations with inherent bounds (Tanh, Sigmoid, Softmax) use those bounds directly;
/// unbounded activations (ReLU, ELU) use the configured percentile of the observed values.
///
/// # Errors
///
/// Returns a [`GraphError`] if a profiling forward pass fails.
pub fn profile_bounds(
    graph: &Graph,
    input_name: &str,
    samples: &[Tensor],
    config: &BoundsConfig,
) -> Result<ActivationBounds, GraphError> {
    let mut profiler = BoundProfiler {
        stats: HashMap::new(),
        reservoir: config.reservoir.max(1),
        rng: StdRng::seed_from_u64(config.seed),
    };
    let exec = Executor::new(graph);
    for sample in samples {
        exec.run(&[(input_name, sample.clone())], &mut profiler)?;
    }

    let mut bounds = ActivationBounds::new();
    for node in graph.nodes() {
        if !node.op.is_activation() {
            continue;
        }
        if let Some((lo, hi)) = node.op.inherent_bounds() {
            bounds.set(node.id, lo, hi);
            continue;
        }
        if let Some(stats) = profiler.stats.get(&node.id) {
            let hi = if config.percentile >= 100.0 {
                stats.max
            } else {
                let values: Vec<f64> = stats.sample.iter().map(|&v| v as f64).collect();
                ranger_tensor::stats::percentile(&values, config.percentile) as f32
            };
            // ReLU and ELU outputs are bounded below (0 and -1 respectively); use the
            // observed minimum which captures that without special-casing the operator.
            let lo = stats.min.min(0.0);
            // An activation whose profiled values were all non-finite yields no usable
            // bound; leave it unprotected rather than emit a degenerate clamp.
            if lo.is_finite() && hi.is_finite() && lo <= hi {
                bounds.set(node.id, lo, hi);
            }
        }
    }
    Ok(bounds)
}

/// One row of the Fig. 4 study: the per-activation maximum observed using a prefix of the
/// profiling samples, normalised to the maximum observed over all samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Number of profiling samples used.
    pub samples_used: usize,
    /// Per-activation normalised maxima (1.0 means the bound equals the global maximum),
    /// ordered by the activation's position in the graph.
    pub normalized_max: Vec<f64>,
}

/// Reproduces the Fig. 4 study: how quickly the observed per-activation maxima converge to
/// the global maxima as more profiling data is used.
///
/// `checkpoints` lists the sample counts at which to record the normalised maxima.
///
/// # Errors
///
/// Returns a [`GraphError`] if a profiling forward pass fails.
pub fn profile_convergence(
    graph: &Graph,
    input_name: &str,
    samples: &[Tensor],
    checkpoints: &[usize],
) -> Result<Vec<ConvergencePoint>, GraphError> {
    let exec = Executor::new(graph);
    // Running maxima per activation node, in graph order.
    let act_nodes: Vec<NodeId> = graph
        .nodes()
        .iter()
        .filter(|n| n.op.is_activation() && n.op.inherent_bounds().is_none())
        .map(|n| n.id)
        .collect();
    let mut running: HashMap<NodeId, f32> = HashMap::new();
    let mut per_checkpoint: Vec<(usize, HashMap<NodeId, f32>)> = Vec::new();

    struct MaxObserver<'a> {
        running: &'a mut HashMap<NodeId, f32>,
    }
    impl Interceptor for MaxObserver<'_> {
        fn after_op(&mut self, node: &Node, output: &mut Tensor) {
            if node.op.is_activation() && node.op.inherent_bounds().is_none() {
                let m = self.running.entry(node.id).or_insert(f32::NEG_INFINITY);
                *m = m.max(output.max());
            }
        }
    }

    for (i, sample) in samples.iter().enumerate() {
        let mut observer = MaxObserver {
            running: &mut running,
        };
        exec.run(&[(input_name, sample.clone())], &mut observer)?;
        if checkpoints.contains(&(i + 1)) {
            per_checkpoint.push((i + 1, running.clone()));
        }
    }
    let global = running;

    Ok(per_checkpoint
        .into_iter()
        .map(|(samples_used, maxima)| ConvergencePoint {
            samples_used,
            normalized_max: act_nodes
                .iter()
                .map(|id| {
                    let g = global.get(id).copied().unwrap_or(0.0) as f64;
                    let m = maxima.get(id).copied().unwrap_or(0.0) as f64;
                    if g.abs() < f64::EPSILON {
                        1.0
                    } else {
                        m / g
                    }
                })
                .collect(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::GraphBuilder;

    fn relu_net() -> (Graph, NodeId) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 4, 8, &mut rng);
        let relu = b.relu(h);
        let _y = b.dense(relu, 8, 2, &mut rng);
        (b.into_graph(), relu)
    }

    fn samples(n: usize, scale: f32) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(9);
        (0..n)
            .map(|_| {
                Tensor::from_vec(
                    vec![1, 4],
                    (0..4).map(|_| rng.gen_range(0.0..scale)).collect(),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn max_bound_covers_all_observed_values() {
        let (graph, relu) = relu_net();
        let data = samples(20, 1.0);
        let bounds = profile_bounds(&graph, "x", &data, &BoundsConfig::default()).unwrap();
        let (lo, hi) = bounds.get(relu).unwrap();
        assert!(lo <= 0.0);
        assert!(hi > 0.0);
        // Re-running the same samples must never exceed the derived bound.
        let exec = Executor::new(&graph);
        for s in &data {
            let out = exec.run_simple(&[("x", s.clone())], relu).unwrap();
            assert!(out.max() <= hi + 1e-6);
        }
    }

    #[test]
    fn lower_percentile_gives_tighter_bound() {
        let (graph, relu) = relu_net();
        let data = samples(50, 2.0);
        let full = profile_bounds(&graph, "x", &data, &BoundsConfig::default()).unwrap();
        let tight =
            profile_bounds(&graph, "x", &data, &BoundsConfig::with_percentile(90.0)).unwrap();
        assert!(tight.get(relu).unwrap().1 <= full.get(relu).unwrap().1);
    }

    #[test]
    fn inherently_bounded_activations_need_no_profiling() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let h = b.dense(x, 2, 2, &mut rng);
        let t = b.tanh(h);
        let graph = b.into_graph();
        let bounds = profile_bounds(
            &graph,
            "x",
            &samples(3, 1.0 /* unused scale */),
            &BoundsConfig::default(),
        );
        // Samples have the wrong width for this graph, so profiling would fail — but Tanh
        // bounds must be available even with zero samples.
        let bounds = match bounds {
            Ok(b) => b,
            Err(_) => profile_bounds(&graph, "x", &[], &BoundsConfig::default()).unwrap(),
        };
        assert_eq!(bounds.get(t), Some((-1.0, 1.0)));
    }

    #[test]
    fn storage_overhead_is_two_floats_per_activation() {
        let (graph, _) = relu_net();
        let bounds =
            profile_bounds(&graph, "x", &samples(5, 1.0), &BoundsConfig::default()).unwrap();
        assert_eq!(bounds.storage_bytes(), bounds.len() * 8);
        assert!(!bounds.is_empty());
        assert_eq!(bounds.iter().count(), bounds.len());
    }

    #[test]
    fn convergence_is_monotone_and_reaches_one() {
        let (graph, _) = relu_net();
        let data = samples(40, 1.5);
        let points = profile_convergence(&graph, "x", &data, &[5, 20, 40]).unwrap();
        assert_eq!(points.len(), 3);
        let last = points.last().unwrap();
        assert!(last.normalized_max.iter().all(|&v| (v - 1.0).abs() < 1e-9));
        // Normalised maxima never decrease as more samples are used.
        for layer in 0..points[0].normalized_max.len() {
            for w in points.windows(2) {
                assert!(w[1].normalized_max[layer] >= w[0].normalized_max[layer] - 1e-9);
            }
        }
    }

    #[test]
    fn empty_samples_give_bounds_only_for_inherent_activations() {
        let (graph, relu) = relu_net();
        let bounds = profile_bounds(&graph, "x", &[], &BoundsConfig::default()).unwrap();
        assert_eq!(bounds.get(relu), None);
    }
}
