//! The [`Protector`] trait: one interface over every protection strategy.
//!
//! The paper evaluates several ways of hardening a DNN graph given profiled activation
//! bounds: Ranger's saturating range restriction (Algorithm 1), the Section VI-C design
//! alternatives (reset-to-zero as in Minerva, random in-range replacement), and — as the
//! control arm of every Table VI comparison — leaving the graph unprotected. The
//! reproduction's experiment pipeline treats all of them uniformly through this trait, so
//! a campaign over `N` strategies is a loop over `N` protectors rather than `N` hand-wired
//! special cases.
//!
//! The long-standing free functions ([`apply_ranger`](crate::transform::apply_ranger),
//! [`apply_design_alternative`](crate::alternatives::apply_design_alternative)) remain as
//! thin wrappers over the corresponding protectors.
//!
//! # Example
//!
//! ```
//! use ranger::prelude::*;
//! use ranger::protect::{DesignAlternative, Protector, RangerProtector, Unprotected};
//! use ranger_graph::GraphBuilder;
//! use ranger_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut b = GraphBuilder::new();
//! let x = b.input("x");
//! let h = b.dense(x, 4, 8, &mut rng);
//! let h = b.relu(h);
//! let _y = b.dense(h, 8, 2, &mut rng);
//! let graph = b.into_graph();
//! let samples = vec![Tensor::ones(vec![1, 4])];
//! let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default())?;
//!
//! // The paper's comparison set as a uniform list of strategies.
//! let strategies: Vec<Box<dyn Protector>> = vec![
//!     Box::new(Unprotected),
//!     Box::new(RangerProtector::default()),
//!     Box::new(DesignAlternative::new(RestorePolicy::Zero)),
//! ];
//! for strategy in &strategies {
//!     let (protected, stats) = strategy.protect(&graph, &bounds)?;
//!     println!("{}: {} clamps", strategy.name(), stats.clamps_inserted);
//!     assert_eq!(protected.len() - graph.len(), stats.clamps_inserted);
//! }
//! # Ok::<(), ranger_graph::GraphError>(())
//! ```

use crate::bounds::ActivationBounds;
use crate::transform::{RangerConfig, RangerStats};
use ranger_graph::op::RestorePolicy;
use ranger_graph::{Graph, GraphError, NodeId, Op};
use std::time::Instant;

/// A protection strategy: given a graph and its profiled activation bounds, produce a
/// hardened copy of the graph plus insertion statistics.
///
/// Implementations must not modify the input graph (the paper's TensorFlow implementation
/// duplicates the graph and remaps operator inputs; the same contract holds here), and a
/// protected graph must compute identical fault-free outputs for inputs covered by the
/// profiling bounds.
pub trait Protector {
    /// A short human-readable name for reports (e.g. `"ranger"`, `"zero"`).
    fn name(&self) -> String;

    /// Produces the protected graph and the statistics of the transformation.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the graph is malformed (e.g. cyclic).
    fn protect(
        &self,
        graph: &Graph,
        bounds: &ActivationBounds,
    ) -> Result<(Graph, RangerStats), GraphError>;
}

/// Ranger's selective range restriction (Algorithm 1 of the paper).
///
/// This is the canonical implementation of the transformation; the
/// [`apply_ranger`](crate::transform::apply_ranger) free function is a thin wrapper over
/// it.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangerProtector {
    /// The transformation configuration (follower protection, out-of-bounds policy).
    pub config: RangerConfig,
}

impl RangerProtector {
    /// Creates a protector with an explicit configuration.
    pub fn new(config: RangerConfig) -> Self {
        RangerProtector { config }
    }
}

/// Builds the restriction operator for the configured policy.
fn restriction_op(lo: f32, hi: f32, policy: RestorePolicy) -> Op {
    match policy {
        RestorePolicy::Saturate => Op::Clamp { lo, hi },
        other => Op::RangeRestore {
            lo,
            hi,
            policy: other,
        },
    }
}

impl Protector for RangerProtector {
    fn name(&self) -> String {
        match self.config.policy {
            RestorePolicy::Saturate => "ranger".to_string(),
            RestorePolicy::Zero => "ranger-zero".to_string(),
            RestorePolicy::Random => "ranger-random".to_string(),
        }
    }

    /// Algorithm 1 of the paper: traverse the operations of the network in order; for
    /// every ACT operation with a known restriction bound insert a range-restriction
    /// operator after it; if the operation consuming the ACT output is a max-pool,
    /// average-pool or reshape, bound it with the same restriction bound; if it is a
    /// concatenation, bound it with the merged bounds (minimum of the lower bounds,
    /// maximum of the upper bounds) of the ACT operations feeding it.
    fn protect(
        &self,
        graph: &Graph,
        bounds: &ActivationBounds,
    ) -> Result<(Graph, RangerStats), GraphError> {
        let config = &self.config;
        let start = Instant::now();
        let mut protected = graph.clone();
        let mut stats = RangerStats {
            clamps_inserted: 0,
            activations_protected: 0,
            followers_protected: 0,
            insertion_seconds: 0.0,
        };

        // Traverse the *original* operator list so freshly inserted restriction operators
        // are not revisited.
        let order: Vec<NodeId> = graph.operator_nodes()?;
        for id in order {
            let node = graph.node(id)?;
            if !node.op.is_activation() {
                continue;
            }
            let Some((lo, hi)) = bounds.get(id) else {
                continue;
            };
            // Degenerate bounds (inverted or non-finite) would make the clamp
            // meaningless — skip them instead of producing an operator that rejects every
            // value.
            if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                continue;
            }

            // Line 3-4: bound the ACT operation itself.
            let name = format!("{}/ranger", node.name);
            protected.insert_after(id, name, restriction_op(lo, hi, config.policy))?;
            stats.clamps_inserted += 1;
            stats.activations_protected += 1;

            if !config.protect_followers {
                continue;
            }

            // Lines 5-8: bound the operations that consume this ACT operation's output.
            // Consumers are looked up in the original graph (the paper's op_{i+1}).
            for consumer_id in graph.consumers(id) {
                let consumer = graph.node(consumer_id)?;
                if consumer.op.extends_activation_bound() {
                    let name = format!("{}/ranger", consumer.name);
                    protected.insert_after(
                        consumer_id,
                        name,
                        restriction_op(lo, hi, config.policy),
                    )?;
                    stats.clamps_inserted += 1;
                    stats.followers_protected += 1;
                } else if consumer.op.is_concat() {
                    // Merge the bounds of every bounded ACT operation feeding the concat.
                    let mut merged_lo = lo;
                    let mut merged_hi = hi;
                    for &concat_input in &consumer.inputs {
                        if let Some((l, h)) = bounds.get(concat_input) {
                            merged_lo = merged_lo.min(l);
                            merged_hi = merged_hi.max(h);
                        }
                    }
                    // Insert at most one restriction per concat operation, even though
                    // several of its inputs are ACT operations.
                    let already = protected.consumers(consumer_id).into_iter().any(|c| {
                        matches!(
                            protected.node(c).map(|n| &n.op),
                            Ok(Op::Clamp { .. }) | Ok(Op::RangeRestore { .. })
                        )
                    });
                    if !already {
                        let name = format!("{}/ranger", consumer.name);
                        protected.insert_after(
                            consumer_id,
                            name,
                            restriction_op(merged_lo, merged_hi, config.policy),
                        )?;
                        stats.clamps_inserted += 1;
                        stats.followers_protected += 1;
                    }
                }
            }
        }

        stats.insertion_seconds = start.elapsed().as_secs_f64();
        Ok((protected, stats))
    }
}

/// A Section VI-C design alternative: Ranger's insertion points with a different
/// out-of-bounds policy (reset-to-zero or random in-range replacement).
#[derive(Debug, Clone, Copy)]
pub struct DesignAlternative {
    /// The out-of-bounds restoration policy.
    pub policy: RestorePolicy,
}

impl DesignAlternative {
    /// Creates the design alternative for `policy`.
    pub fn new(policy: RestorePolicy) -> Self {
        DesignAlternative { policy }
    }
}

impl Protector for DesignAlternative {
    fn name(&self) -> String {
        match self.policy {
            RestorePolicy::Saturate => "saturate".to_string(),
            RestorePolicy::Zero => "zero".to_string(),
            RestorePolicy::Random => "random".to_string(),
        }
    }

    fn protect(
        &self,
        graph: &Graph,
        bounds: &ActivationBounds,
    ) -> Result<(Graph, RangerStats), GraphError> {
        RangerProtector::new(RangerConfig::with_policy(self.policy)).protect(graph, bounds)
    }
}

/// The unprotected control arm: returns a verbatim copy of the graph with zero insertion
/// statistics. Every Table VI-style comparison runs this arm to obtain the baseline SDC
/// rate that coverage is computed against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unprotected;

impl Protector for Unprotected {
    fn name(&self) -> String {
        "unprotected".to_string()
    }

    fn protect(
        &self,
        graph: &Graph,
        _bounds: &ActivationBounds,
    ) -> Result<(Graph, RangerStats), GraphError> {
        Ok((
            graph.clone(),
            RangerStats {
                clamps_inserted: 0,
                activations_protected: 0,
                followers_protected: 0,
                insertion_seconds: 0.0,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{profile_bounds, BoundsConfig};
    use crate::transform::apply_ranger;
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::GraphBuilder;
    use ranger_tensor::Tensor;

    fn toy() -> (Graph, Vec<Tensor>) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let c = b.conv2d(x, 1, 2, 3, 1, ranger_graph::op::Padding::Same, &mut rng);
        let r = b.relu(c);
        let p = b.max_pool(r, 2, 2);
        let f = b.flatten(p);
        let _y = b.dense(f, 8, 2, &mut rng);
        let samples = (0..4)
            .map(|i| Tensor::filled(vec![1, 1, 4, 4], 0.25 * (i + 1) as f32))
            .collect();
        (b.into_graph(), samples)
    }

    #[test]
    fn ranger_protector_equals_free_function() {
        let (graph, samples) = toy();
        let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let (via_trait, stats_t) = RangerProtector::default().protect(&graph, &bounds).unwrap();
        let (via_free, stats_f) = apply_ranger(&graph, &bounds, &RangerConfig::default()).unwrap();
        assert_eq!(via_trait, via_free);
        assert_eq!(stats_t.clamps_inserted, stats_f.clamps_inserted);
        assert_eq!(stats_t.activations_protected, stats_f.activations_protected);
        assert_eq!(stats_t.followers_protected, stats_f.followers_protected);
    }

    #[test]
    fn design_alternative_inserts_policy_ops() {
        let (graph, samples) = toy();
        let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let (zeroed, stats) = DesignAlternative::new(RestorePolicy::Zero)
            .protect(&graph, &bounds)
            .unwrap();
        assert!(stats.clamps_inserted > 0);
        assert!(zeroed.nodes().iter().any(|n| matches!(
            n.op,
            Op::RangeRestore {
                policy: RestorePolicy::Zero,
                ..
            }
        )));
        assert_eq!(zeroed.clamp_count(), 0);
    }

    #[test]
    fn unprotected_is_the_identity() {
        let (graph, samples) = toy();
        let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let (copy, stats) = Unprotected.protect(&graph, &bounds).unwrap();
        assert_eq!(copy, graph);
        assert_eq!(stats.clamps_inserted, 0);
    }

    #[test]
    fn protectors_are_usable_as_trait_objects() {
        let (graph, samples) = toy();
        let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let strategies: Vec<Box<dyn Protector>> = vec![
            Box::new(Unprotected),
            Box::new(RangerProtector::default()),
            Box::new(DesignAlternative::new(RestorePolicy::Random)),
        ];
        let names: Vec<String> = strategies.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["unprotected", "ranger", "random"]);
        for s in &strategies {
            let (protected, stats) = s.protect(&graph, &bounds).unwrap();
            assert_eq!(protected.len() - graph.len(), stats.clamps_inserted);
        }
    }
}
