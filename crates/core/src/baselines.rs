//! Baseline protection techniques Ranger is compared against (paper Table VI and Fig. 8).
//!
//! Two kinds of baselines appear in the paper:
//!
//! * **Re-evaluated baselines** — the Hong et al. defence (replace the unbounded ReLU
//!   activation with the saturating Tanh and retrain) is re-implemented and re-measured in
//!   this reproduction: build the model with `ranger_models::Activation::Tanh` and run the
//!   same fault-injection campaign. The reset-to-zero corrector of Reagen et al. is
//!   reproduced through [`crate::alternatives`].
//! * **Reported baselines** — techniques the paper cites with their published coverage and
//!   overhead numbers (TMR, selective duplication, the symptom-based detector, the
//!   ML-based corrector and ABFT). Those numbers are reproduced here as reference entries
//!   so the Table VI comparison can be regenerated alongside the measured Ranger results.

use serde::{Deserialize, Serialize};

/// How a technique's numbers were obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// Measured by this reproduction's own experiments.
    Measured,
    /// Quoted from the paper's Table VI (which in turn cites the original work).
    ReportedByPaper,
}

/// One row of the Table VI technique comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechniqueEntry {
    /// Technique name as the paper lists it.
    pub name: &'static str,
    /// SDC coverage in percent (what fraction of SDC-causing faults the technique
    /// detects or corrects).
    pub sdc_coverage_percent: f64,
    /// Performance overhead in percent.
    pub overhead_percent: f64,
    /// Where the numbers come from.
    pub provenance: Provenance,
}

/// The reference entries of Table VI for techniques that are cited rather than
/// re-implemented. Ranger's own row and the Hong et al. row are produced by measurement
/// (see `crates/bench`), so they are not included here.
pub fn reported_techniques() -> Vec<TechniqueEntry> {
    vec![
        TechniqueEntry {
            name: "Triple Modular Redundancy",
            sdc_coverage_percent: 100.0,
            overhead_percent: 200.0,
            provenance: Provenance::ReportedByPaper,
        },
        TechniqueEntry {
            name: "Selective duplication (Mahmoud et al.)",
            sdc_coverage_percent: 60.0,
            overhead_percent: 30.0,
            provenance: Provenance::ReportedByPaper,
        },
        TechniqueEntry {
            name: "Symptom-based detector (Li et al.)",
            sdc_coverage_percent: 99.5,
            overhead_percent: 74.48,
            provenance: Provenance::ReportedByPaper,
        },
        TechniqueEntry {
            name: "ML-based error corrector (Schorn et al.)",
            sdc_coverage_percent: 66.95,
            overhead_percent: 0.95,
            provenance: Provenance::ReportedByPaper,
        },
        TechniqueEntry {
            name: "ABFT-based approach (Zhao et al.)",
            sdc_coverage_percent: 29.98,
            overhead_percent: 8.0,
            provenance: Provenance::ReportedByPaper,
        },
    ]
}

/// Builds a measured Table VI row from a campaign: `coverage = 1 - protected/unprotected`
/// SDC rate, expressed in percent.
pub fn measured_entry(
    name: &'static str,
    unprotected_sdc_rate: f64,
    protected_sdc_rate: f64,
    overhead_percent: f64,
) -> TechniqueEntry {
    let coverage = if unprotected_sdc_rate <= 0.0 {
        0.0
    } else {
        (1.0 - protected_sdc_rate / unprotected_sdc_rate) * 100.0
    };
    TechniqueEntry {
        name,
        sdc_coverage_percent: coverage.clamp(0.0, 100.0),
        overhead_percent,
        provenance: Provenance::Measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reported_table_matches_paper_values() {
        let entries = reported_techniques();
        assert_eq!(entries.len(), 5);
        let tmr = &entries[0];
        assert_eq!(tmr.sdc_coverage_percent, 100.0);
        assert_eq!(tmr.overhead_percent, 200.0);
        assert!(entries
            .iter()
            .all(|e| e.provenance == Provenance::ReportedByPaper));
    }

    #[test]
    fn measured_entry_computes_relative_coverage() {
        let e = measured_entry("Ranger", 0.15, 0.0044, 0.53);
        assert!(e.sdc_coverage_percent > 97.0 && e.sdc_coverage_percent < 98.0);
        assert_eq!(e.provenance, Provenance::Measured);
        // Degenerate cases.
        assert_eq!(measured_entry("x", 0.0, 0.1, 1.0).sdc_coverage_percent, 0.0);
        assert_eq!(
            measured_entry("x", 0.1, 0.0, 1.0).sdc_coverage_percent,
            100.0
        );
        assert_eq!(measured_entry("x", 0.1, 0.2, 1.0).sdc_coverage_percent, 0.0);
    }
}
