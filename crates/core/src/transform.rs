//! Step 2 of Ranger: inserting range restriction into the selected DNN layers
//! (Algorithm 1 of the paper).

use crate::bounds::ActivationBounds;
use crate::protect::{Protector, RangerProtector};
use ranger_graph::op::RestorePolicy;
use ranger_graph::{Graph, GraphError};
use serde::{Deserialize, Serialize};

/// Configuration of the Ranger transformation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangerConfig {
    /// Whether to extend each ACT operation's bound to the following
    /// `{MaxPool, AvgPool, Reshape, Concatenate}` operation, as Algorithm 1 lines 5–8 do.
    /// Disabling this protects only the ACT operations themselves (useful for ablation).
    pub protect_followers: bool,
    /// What an inserted restriction operator does with out-of-bounds values. The paper's
    /// Ranger saturates at the bound; `Zero` and `Random` are the Section VI-C design
    /// alternatives.
    pub policy: RestorePolicy,
}

impl Default for RangerConfig {
    fn default() -> Self {
        RangerConfig {
            protect_followers: true,
            policy: RestorePolicy::Saturate,
        }
    }
}

impl RangerConfig {
    /// The ablation configuration that restricts only ACT operations (no follower
    /// protection).
    pub fn activations_only() -> Self {
        RangerConfig {
            protect_followers: false,
            ..Default::default()
        }
    }

    /// A configuration using a Section VI-C design alternative for out-of-bounds values.
    pub fn with_policy(policy: RestorePolicy) -> Self {
        RangerConfig {
            policy,
            ..Default::default()
        }
    }
}

/// Statistics about one application of the Ranger transformation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangerStats {
    /// Total number of restriction operators inserted.
    pub clamps_inserted: usize,
    /// How many of those protect ACT operations directly.
    pub activations_protected: usize,
    /// How many protect follower operations (pooling, reshape, concatenation).
    pub followers_protected: usize,
    /// Wall-clock seconds the transformation took (the paper's Table III instrumentation
    /// time).
    pub insertion_seconds: f64,
}

/// Applies Ranger to a graph, returning the protected graph and transformation statistics.
///
/// This is Algorithm 1 of the paper; the canonical implementation lives in
/// [`RangerProtector`] and this free function is a thin
/// wrapper over it, kept for the many call sites (and readers of the paper) that want a
/// direct function. The input graph is not modified — like the TensorFlow implementation,
/// which duplicates the (append-only) graph and remaps operator inputs, the transformation
/// works on a copy.
///
/// # Errors
///
/// Returns a [`GraphError`] if the graph is malformed (e.g. cyclic).
pub fn apply_ranger(
    graph: &Graph,
    bounds: &ActivationBounds,
    config: &RangerConfig,
) -> Result<(Graph, RangerStats), GraphError> {
    RangerProtector::new(*config).protect(graph, bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{profile_bounds, BoundsConfig};
    use rand::{rngs::StdRng, SeedableRng};
    use ranger_graph::exec::{Executor, NoopInterceptor};
    use ranger_graph::{GraphBuilder, NodeId, Op};
    use ranger_tensor::Tensor;

    /// Builds a small CNN-like graph with a ReLU feeding a max-pool (the Algorithm 1
    /// follower case) and returns (graph, relu, pool, output).
    fn relu_pool_net() -> (Graph, NodeId, NodeId, NodeId) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let c = b.conv2d(x, 1, 2, 3, 1, ranger_graph::op::Padding::Same, &mut rng);
        let relu = b.relu(c);
        let pool = b.max_pool(relu, 2, 2);
        let f = b.flatten(pool);
        let y = b.dense(f, 2 * 2 * 2, 2, &mut rng);
        (b.into_graph(), relu, pool, y)
    }

    fn profiling_samples() -> Vec<Tensor> {
        (0..5)
            .map(|i| Tensor::filled(vec![1, 1, 4, 4], 0.2 * i as f32))
            .collect()
    }

    #[test]
    fn algorithm1_bounds_act_and_following_pool() {
        let (graph, relu, pool, _) = relu_pool_net();
        let bounds =
            profile_bounds(&graph, "x", &profiling_samples(), &BoundsConfig::default()).unwrap();
        let (protected, stats) = apply_ranger(&graph, &bounds, &RangerConfig::default()).unwrap();

        assert_eq!(stats.activations_protected, 1);
        assert_eq!(stats.followers_protected, 1);
        assert_eq!(stats.clamps_inserted, 2);
        assert_eq!(protected.clamp_count(), 2);
        assert!(stats.insertion_seconds >= 0.0);

        // The ReLU's consumer (in the protected graph) must now be a Clamp, and the pool's
        // consumer too.
        let relu_consumers = protected.consumers(relu);
        assert!(relu_consumers
            .iter()
            .any(|&c| matches!(protected.node(c).unwrap().op, Op::Clamp { .. })));
        let pool_consumers = protected.consumers(pool);
        assert!(pool_consumers
            .iter()
            .any(|&c| matches!(protected.node(c).unwrap().op, Op::Clamp { .. })));
        // The original graph is untouched.
        assert_eq!(graph.clamp_count(), 0);
    }

    #[test]
    fn activations_only_config_skips_followers() {
        let (graph, ..) = relu_pool_net();
        let bounds =
            profile_bounds(&graph, "x", &profiling_samples(), &BoundsConfig::default()).unwrap();
        let (protected, stats) =
            apply_ranger(&graph, &bounds, &RangerConfig::activations_only()).unwrap();
        assert_eq!(stats.followers_protected, 0);
        assert_eq!(protected.clamp_count(), 1);
    }

    #[test]
    fn transformation_preserves_fault_free_output() {
        let (graph, _, _, y) = relu_pool_net();
        let samples = profiling_samples();
        let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let (protected, _) = apply_ranger(&graph, &bounds, &RangerConfig::default()).unwrap();

        let exec = Executor::new(&graph);
        let exec_p = Executor::new(&protected);
        for s in &samples {
            let a = exec.run_simple(&[("x", s.clone())], y).unwrap();
            let b = exec_p.run_simple(&[("x", s.clone())], y).unwrap();
            assert!(
                a.approx_eq(&b, 1e-6).unwrap(),
                "range restriction must not change fault-free outputs"
            );
        }
    }

    #[test]
    fn concat_gets_merged_bounds() {
        // Two ReLU branches with different ranges feeding a concat.
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let c1 = b.conv2d(x, 1, 2, 1, 1, ranger_graph::op::Padding::Same, &mut rng);
        let r1 = b.relu(c1);
        let c2 = b.conv2d(x, 1, 2, 1, 1, ranger_graph::op::Padding::Same, &mut rng);
        let r2 = b.relu(c2);
        let cat = b.concat(vec![r1, r2]);
        let _f = b.flatten(cat);
        let graph = b.into_graph();

        let mut bounds = ActivationBounds::new();
        bounds.set(r1, 0.0, 5.0);
        bounds.set(r2, -1.0, 10.0);
        let (protected, stats) = apply_ranger(&graph, &bounds, &RangerConfig::default()).unwrap();

        // One clamp per ReLU plus exactly one for the concat.
        assert_eq!(stats.clamps_inserted, 3);
        let concat_clamp = protected
            .consumers(cat)
            .into_iter()
            .find_map(|c| match protected.node(c).unwrap().op {
                Op::Clamp { lo, hi } => Some((lo, hi)),
                _ => None,
            })
            .expect("concat must be protected");
        assert_eq!(concat_clamp, (-1.0, 10.0));
    }

    #[test]
    fn unbounded_activations_without_profile_are_left_alone() {
        let (graph, ..) = relu_pool_net();
        let (protected, stats) =
            apply_ranger(&graph, &ActivationBounds::new(), &RangerConfig::default()).unwrap();
        assert_eq!(stats.clamps_inserted, 0);
        assert_eq!(protected.clamp_count(), 0);
    }

    #[test]
    fn design_alternative_policy_inserts_range_restore_ops() {
        let (graph, ..) = relu_pool_net();
        let bounds =
            profile_bounds(&graph, "x", &profiling_samples(), &BoundsConfig::default()).unwrap();
        let (protected, _) = apply_ranger(
            &graph,
            &bounds,
            &RangerConfig::with_policy(RestorePolicy::Zero),
        )
        .unwrap();
        let restore_count = protected
            .nodes()
            .iter()
            .filter(|n| {
                matches!(
                    n.op,
                    Op::RangeRestore {
                        policy: RestorePolicy::Zero,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(restore_count, 2);
        assert_eq!(protected.clamp_count(), 0);
    }

    #[test]
    fn protected_graph_corrects_an_injected_critical_fault() {
        use ranger_graph::{Interceptor, Node};
        struct CorruptRelu {
            node: NodeId,
        }
        impl Interceptor for CorruptRelu {
            fn after_op(&mut self, node: &Node, output: &mut Tensor) {
                if node.id == self.node {
                    // Emulate a high-order-bit flip: a huge value deviation.
                    output.data_mut()[0] = 1.0e9;
                }
            }
        }

        let (graph, relu, _, y) = relu_pool_net();
        let samples = profiling_samples();
        let bounds = profile_bounds(&graph, "x", &samples, &BoundsConfig::default()).unwrap();
        let (protected, _) = apply_ranger(&graph, &bounds, &RangerConfig::default()).unwrap();

        let input = samples[2].clone();
        let exec = Executor::new(&graph);
        let golden = exec.run_simple(&[("x", input.clone())], y).unwrap();
        let faulty_unprotected = exec
            .run_with(&[("x", input.clone())], y, &mut CorruptRelu { node: relu })
            .unwrap();
        let exec_p = Executor::new(&protected);
        let faulty_protected = exec_p
            .run_with(&[("x", input)], y, &mut CorruptRelu { node: relu })
            .unwrap();

        let unprotected_dev = golden.max_abs_diff(&faulty_unprotected).unwrap();
        let protected_dev = golden.max_abs_diff(&faulty_protected).unwrap();
        assert!(
            unprotected_dev > 1.0e3,
            "the fault must matter without Ranger"
        );
        assert!(
            protected_dev < unprotected_dev / 1.0e3,
            "Ranger must dampen the deviation ({unprotected_dev} -> {protected_dev})"
        );
        let _ = exec.run(
            &[("x", Tensor::zeros(vec![1, 1, 4, 4]))],
            &mut NoopInterceptor,
        );
    }
}
