//! The [`Model`] wrapper: a graph plus the metadata experiments need.

use ranger_datasets::classification::ImageDomain;
use ranger_datasets::driving::AngleUnit;
use ranger_graph::{Executor, Graph, GraphError, NodeId};
use ranger_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the paper's eight DNN benchmarks a model replicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// LeNet on MNIST-like digits.
    LeNet,
    /// AlexNet on CIFAR-10-like object images.
    AlexNet,
    /// VGG11 on GTSRB-like traffic signs.
    Vgg11,
    /// VGG16 on ImageNet-like natural scenes.
    Vgg16,
    /// ResNet-18 on ImageNet-like natural scenes.
    ResNet18,
    /// SqueezeNet on ImageNet-like natural scenes.
    SqueezeNet,
    /// The Nvidia Dave steering model on the driving dataset.
    Dave,
    /// The Comma.ai steering model on the driving dataset.
    Comma,
}

impl ModelKind {
    /// All eight benchmark kinds in the order the paper lists them.
    pub fn all() -> [ModelKind; 8] {
        [
            ModelKind::LeNet,
            ModelKind::AlexNet,
            ModelKind::Vgg11,
            ModelKind::Vgg16,
            ModelKind::ResNet18,
            ModelKind::SqueezeNet,
            ModelKind::Dave,
            ModelKind::Comma,
        ]
    }

    /// The six classifier kinds.
    pub fn classifiers() -> [ModelKind; 6] {
        [
            ModelKind::LeNet,
            ModelKind::AlexNet,
            ModelKind::Vgg11,
            ModelKind::Vgg16,
            ModelKind::ResNet18,
            ModelKind::SqueezeNet,
        ]
    }

    /// The two steering (regression) kinds.
    pub fn steering() -> [ModelKind; 2] {
        [ModelKind::Dave, ModelKind::Comma]
    }

    /// Returns the synthetic image domain this model is trained on (classifiers only).
    pub fn image_domain(&self) -> Option<ImageDomain> {
        match self {
            ModelKind::LeNet => Some(ImageDomain::Digits),
            ModelKind::AlexNet => Some(ImageDomain::Objects),
            ModelKind::Vgg11 => Some(ImageDomain::TrafficSigns),
            ModelKind::Vgg16 | ModelKind::ResNet18 | ModelKind::SqueezeNet => {
                Some(ImageDomain::NaturalScenes)
            }
            ModelKind::Dave | ModelKind::Comma => None,
        }
    }

    /// Returns `true` for the two steering models.
    pub fn is_steering(&self) -> bool {
        matches!(self, ModelKind::Dave | ModelKind::Comma)
    }

    /// The display name used in the paper's tables and figures.
    pub fn paper_name(&self) -> &'static str {
        match self {
            ModelKind::LeNet => "LeNet",
            ModelKind::AlexNet => "AlexNet",
            ModelKind::Vgg11 => "VGG11",
            ModelKind::Vgg16 => "VGG16",
            ModelKind::ResNet18 => "ResNet-18",
            ModelKind::SqueezeNet => "SqueezeNet",
            ModelKind::Dave => "Dave",
            ModelKind::Comma => "Comma.ai",
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.paper_name())
    }
}

impl std::str::FromStr for ModelKind {
    type Err = String;

    /// Parses the user-facing model names accepted across the CLI and the campaign
    /// service (case-insensitive, with the common aliases).
    fn from_str(name: &str) -> Result<Self, Self::Err> {
        match name.to_ascii_lowercase().as_str() {
            "lenet" => Ok(ModelKind::LeNet),
            "alexnet" => Ok(ModelKind::AlexNet),
            "vgg11" => Ok(ModelKind::Vgg11),
            "vgg16" => Ok(ModelKind::Vgg16),
            "resnet18" | "resnet-18" | "resnet" => Ok(ModelKind::ResNet18),
            "squeezenet" => Ok(ModelKind::SqueezeNet),
            "dave" => Ok(ModelKind::Dave),
            "comma" | "comma.ai" => Ok(ModelKind::Comma),
            other => Err(format!(
                "unknown model '{other}' (expected lenet, alexnet, vgg11, vgg16, \
                 resnet18, squeezenet, dave or comma)"
            )),
        }
    }
}

/// The activation function family a model is built with.
///
/// The default is ReLU (as in the paper's original models); `Tanh` reproduces the defence
/// of Hong et al. evaluated in Fig. 8, which replaces the unbounded ReLU with the
/// saturating Tanh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Rectified linear unit (unbounded above).
    #[default]
    Relu,
    /// Hyperbolic tangent (inherently bounded in (-1, 1)).
    Tanh,
}

/// What a model predicts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Task {
    /// Image classification over `num_classes` classes.
    Classification {
        /// Number of output classes.
        num_classes: usize,
    },
    /// Steering-angle regression, producing an angle in `unit`.
    Regression {
        /// The unit of the predicted angle.
        unit: AngleUnit,
    },
}

/// A complete model specification: which benchmark, with which activation family, and —
/// for the Dave model — which output unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// The benchmark architecture.
    pub kind: ModelKind,
    /// The activation family ([`Activation::Tanh`] reproduces the Hong et al. baseline).
    pub activation: Activation,
    /// Output unit for the steering models. The original Dave model outputs radians
    /// (through `2·atan`); the paper's retrained Dave and the Comma model output degrees.
    pub steering_unit: AngleUnit,
}

impl ModelConfig {
    /// Creates the default (paper-original) configuration for `kind`.
    pub fn new(kind: ModelKind) -> Self {
        let steering_unit = match kind {
            ModelKind::Dave => AngleUnit::Radians,
            _ => AngleUnit::Degrees,
        };
        ModelConfig {
            kind,
            activation: Activation::Relu,
            steering_unit,
        }
    }

    /// LeNet with the paper's original configuration.
    pub fn lenet() -> Self {
        Self::new(ModelKind::LeNet)
    }

    /// Returns a copy of this configuration using the Tanh activation family (the Hong et
    /// al. baseline architecture of Fig. 8).
    pub fn with_tanh(mut self) -> Self {
        self.activation = Activation::Tanh;
        self
    }

    /// Returns a copy of this configuration whose steering output unit is `unit`
    /// (meaningful for [`ModelKind::Dave`]; the paper's Section VI retrains Dave to output
    /// degrees).
    pub fn with_steering_unit(mut self, unit: AngleUnit) -> Self {
        self.steering_unit = unit;
        self
    }

    /// A short, filesystem-safe identifier used by the model zoo cache.
    pub fn cache_key(&self) -> String {
        let act = match self.activation {
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
        };
        let unit = match self.steering_unit {
            AngleUnit::Degrees => "deg",
            AngleUnit::Radians => "rad",
        };
        format!("{:?}_{act}_{unit}", self.kind).to_lowercase()
    }
}

/// A DNN benchmark: the dataflow graph plus the metadata experiments need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Model {
    /// The configuration this model was built from.
    pub config: ModelConfig,
    /// The dataflow graph (weights live in its constant nodes).
    pub graph: Graph,
    /// Name of the graph input placeholder to feed images into.
    pub input_name: String,
    /// The pre-output node (logits for classifiers, last fully-connected output for the
    /// steering models).
    pub logits: NodeId,
    /// The final output node (softmax probabilities or the steering angle).
    pub output: NodeId,
    /// The task this model solves.
    pub task: Task,
    /// Nodes excluded from fault injection: the last fully-connected layer and everything
    /// downstream of it. The paper excludes the last FC layer because its values feed the
    /// output directly and range restriction there cannot help; it accounts for a
    /// negligible fraction of the injection state space and can be protected by
    /// duplication instead.
    pub excluded_from_injection: Vec<NodeId>,
}

impl Model {
    /// Runs a forward pass on `batch` and returns the final output tensor.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if execution fails.
    pub fn forward(&self, batch: &Tensor) -> Result<Tensor, GraphError> {
        let exec = Executor::new(&self.graph);
        exec.run_simple(&[(self.input_name.as_str(), batch.clone())], self.output)
    }

    /// Returns the predicted class index for every row of `batch` (classifiers only).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if execution fails.
    ///
    /// # Panics
    ///
    /// Panics if called on a regression model.
    pub fn predict_classes(&self, batch: &Tensor) -> Result<Vec<usize>, GraphError> {
        let Task::Classification { num_classes } = self.task else {
            panic!("predict_classes called on a regression model");
        };
        let out = self.forward(batch)?;
        let n = out.dims()[0];
        let mut preds = Vec::with_capacity(n);
        for i in 0..n {
            let row = &out.data()[i * num_classes..(i + 1) * num_classes];
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(idx, _)| idx)
                .unwrap_or(0);
            preds.push(argmax);
        }
        Ok(preds)
    }

    /// Returns the predicted steering angles in degrees for every row of `batch`
    /// (steering models only).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if execution fails.
    ///
    /// # Panics
    ///
    /// Panics if called on a classification model.
    pub fn predict_angles_degrees(&self, batch: &Tensor) -> Result<Vec<f32>, GraphError> {
        let Task::Regression { unit } = self.task else {
            panic!("predict_angles_degrees called on a classification model");
        };
        let out = self.forward(batch)?;
        Ok(out.data().iter().map(|&v| unit.to_degrees(v)).collect())
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.graph.parameter_count()
    }

    /// Number of activation (ACT) operations in the graph — the quantity the memory
    /// overhead of Ranger's stored restriction bounds is proportional to.
    pub fn activation_count(&self) -> usize {
        self.graph
            .nodes()
            .iter()
            .filter(|n| n.op.is_activation())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_kind_partitions() {
        assert_eq!(ModelKind::all().len(), 8);
        assert_eq!(ModelKind::classifiers().len(), 6);
        assert_eq!(ModelKind::steering().len(), 2);
        for k in ModelKind::classifiers() {
            assert!(!k.is_steering());
            assert!(k.image_domain().is_some());
        }
        for k in ModelKind::steering() {
            assert!(k.is_steering());
            assert!(k.image_domain().is_none());
        }
    }

    #[test]
    fn default_config_uses_radians_only_for_dave() {
        assert_eq!(
            ModelConfig::new(ModelKind::Dave).steering_unit,
            AngleUnit::Radians
        );
        assert_eq!(
            ModelConfig::new(ModelKind::Comma).steering_unit,
            AngleUnit::Degrees
        );
        assert_eq!(
            ModelConfig::new(ModelKind::LeNet).activation,
            Activation::Relu
        );
    }

    #[test]
    fn cache_keys_distinguish_variants() {
        let base = ModelConfig::new(ModelKind::Dave);
        let tanh = base.with_tanh();
        let degrees = base.with_steering_unit(AngleUnit::Degrees);
        assert_ne!(base.cache_key(), tanh.cache_key());
        assert_ne!(base.cache_key(), degrees.cache_key());
        assert!(base.cache_key().contains("dave"));
    }

    #[test]
    fn paper_names_are_stable() {
        assert_eq!(ModelKind::Vgg16.paper_name(), "VGG16");
        assert_eq!(ModelKind::Comma.to_string(), "Comma.ai");
    }
}
