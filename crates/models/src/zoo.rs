//! A disk-backed cache of trained benchmark models.
//!
//! Fault-injection campaigns, accuracy studies and overhead measurements all need the same
//! trained models; training them once and caching the weights keeps the experiment
//! binaries fast and deterministic. The cache key encodes the model configuration and the
//! seed, so variants (Tanh activations for the Hong et al. baseline, the degree-output
//! Dave model) are cached independently.

use crate::archs;
use crate::model::{Model, ModelConfig, ModelKind};
use crate::train::{
    classification_accuracy, regression_metrics, train_classifier, train_regressor, EvalMetrics,
    TrainConfig,
};
use ranger_datasets::classification::ClassificationDataset;
use ranger_datasets::driving::DrivingDataset;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Errors produced by the model zoo.
#[derive(Debug)]
pub enum ZooError {
    /// Training or evaluation failed.
    Graph(ranger_graph::GraphError),
    /// Reading or writing the cache failed.
    Io(std::io::Error),
    /// A cached entry could not be decoded.
    Corrupt(String),
}

impl fmt::Display for ZooError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZooError::Graph(e) => write!(f, "training failed: {e}"),
            ZooError::Io(e) => write!(f, "model zoo I/O error: {e}"),
            ZooError::Corrupt(path) => write!(f, "corrupt model zoo entry at {path}"),
        }
    }
}

impl std::error::Error for ZooError {}

impl From<ranger_graph::GraphError> for ZooError {
    fn from(e: ranger_graph::GraphError) -> Self {
        ZooError::Graph(e)
    }
}

impl From<std::io::Error> for ZooError {
    fn from(e: std::io::Error) -> Self {
        ZooError::Io(e)
    }
}

/// A trained model together with its validation metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    /// The trained model (weights stored in the graph's constant nodes).
    pub model: Model,
    /// Validation metrics in the paper's units.
    pub metrics: EvalMetrics,
    /// A scalar "accuracy" convenient for quick checks: top-1 accuracy for classifiers,
    /// the fraction of validation frames predicted within 15° for steering models.
    pub validation_accuracy: f64,
    /// Wall-clock seconds spent training (0 when loaded from the cache).
    pub train_seconds: f64,
    /// The seed the model, dataset and training run were derived from.
    pub seed: u64,
}

/// A disk-backed store of trained models keyed by configuration and seed.
#[derive(Debug, Clone)]
pub struct ModelZoo {
    dir: PathBuf,
}

impl ModelZoo {
    /// Creates a zoo rooted at `dir` (created on demand).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ModelZoo { dir: dir.into() }
    }

    /// Creates a zoo in the default location: `$RANGER_ZOO_DIR` if set, otherwise
    /// `<workspace>/target/ranger-model-zoo`.
    pub fn with_default_dir() -> Self {
        let dir = std::env::var_os("RANGER_ZOO_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/ranger-model-zoo")
            });
        ModelZoo::new(dir)
    }

    /// The directory models are cached in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn cache_path(&self, config: &ModelConfig, seed: u64) -> PathBuf {
        self.dir.join(format!("{}_{seed}.json", config.cache_key()))
    }

    /// Generates the standard classification dataset used to train and evaluate `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a steering model.
    pub fn classification_data(kind: ModelKind, seed: u64) -> ClassificationDataset {
        let domain = kind
            .image_domain()
            .expect("classification_data called for a steering model");
        let cfg = TrainConfig::for_kind(kind);
        ClassificationDataset::generate(domain, cfg.train_samples, cfg.validation_samples, seed)
    }

    /// Generates the standard driving dataset used to train and evaluate the steering
    /// models.
    pub fn driving_data(seed: u64) -> DrivingDataset {
        let cfg = TrainConfig::for_kind(ModelKind::Dave);
        DrivingDataset::generate(cfg.train_samples, cfg.validation_samples, seed)
    }

    /// Loads the trained model for `(config, seed)` from the cache, training and caching
    /// it first if necessary.
    ///
    /// # Errors
    ///
    /// Returns a [`ZooError`] if training fails or the cache cannot be read or written.
    pub fn load_or_train(&self, config: &ModelConfig, seed: u64) -> Result<TrainedModel, ZooError> {
        let path = self.cache_path(config, seed);
        if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            match serde_json::from_str::<TrainedModel>(&text) {
                Ok(entry) => return Ok(entry),
                Err(_) => {
                    // A corrupt or stale entry is not fatal: retrain and overwrite it.
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        let trained = self.train(config, seed)?;
        std::fs::create_dir_all(&self.dir)?;
        let text = serde_json::to_string(&trained)
            .map_err(|e| ZooError::Corrupt(format!("{}: {e}", path.display())))?;
        std::fs::write(&path, text)?;
        Ok(trained)
    }

    /// Trains a model from scratch with the default recipe for its kind (no caching).
    ///
    /// # Errors
    ///
    /// Returns a [`ZooError`] if a forward/backward pass fails.
    pub fn train(&self, config: &ModelConfig, seed: u64) -> Result<TrainedModel, ZooError> {
        self.train_with(config, &TrainConfig::for_kind(config.kind), seed)
    }

    /// Trains a model from scratch with an explicit recipe (no caching).
    ///
    /// # Errors
    ///
    /// Returns a [`ZooError`] if a forward/backward pass fails.
    pub fn train_with(
        &self,
        config: &ModelConfig,
        cfg: &TrainConfig,
        seed: u64,
    ) -> Result<TrainedModel, ZooError> {
        let mut model = archs::build(config, seed);
        let start = Instant::now();
        let (metrics, validation_accuracy) = if config.kind.is_steering() {
            let data = DrivingDataset::generate(cfg.train_samples, cfg.validation_samples, seed);
            train_regressor(&mut model, &data, cfg, seed)?;
            let (rmse, mad) = regression_metrics(&model, &data, true)?;
            let within_15 = fraction_within_degrees(&model, &data, 15.0)?;
            (
                EvalMetrics::Regression {
                    rmse,
                    mean_abs_deviation: mad,
                },
                within_15,
            )
        } else {
            let domain = config.kind.image_domain().expect("classifier has a domain");
            let data = ClassificationDataset::generate(
                domain,
                cfg.train_samples,
                cfg.validation_samples,
                seed,
            );
            train_classifier(&mut model, &data, cfg, seed)?;
            let (top1, top5) = classification_accuracy(&model, &data, true)?;
            (EvalMetrics::Classification { top1, top5 }, top1)
        };
        Ok(TrainedModel {
            model,
            metrics,
            validation_accuracy,
            train_seconds: start.elapsed().as_secs_f64(),
            seed,
        })
    }
}

/// Fraction of validation frames whose predicted steering angle is within `threshold`
/// degrees of the ground truth.
fn fraction_within_degrees(
    model: &Model,
    data: &DrivingDataset,
    threshold: f64,
) -> Result<f64, ranger_graph::GraphError> {
    if data.validation.is_empty() {
        return Ok(0.0);
    }
    let indices: Vec<usize> = (0..data.validation.len()).collect();
    let mut within = 0usize;
    for chunk in indices.chunks(64) {
        let (batch, targets) =
            data.validation_batch(chunk, ranger_datasets::driving::AngleUnit::Degrees);
        let preds = model.predict_angles_degrees(&batch)?;
        for (p, t) in preds.iter().zip(targets.data()) {
            if ((*p - *t).abs() as f64) <= threshold {
                within += 1;
            }
        }
    }
    Ok(within as f64 / data.validation.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    fn temp_zoo(tag: &str) -> ModelZoo {
        let dir =
            std::env::temp_dir().join(format!("ranger-zoo-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ModelZoo::new(dir)
    }

    #[test]
    fn cache_round_trip_reproduces_the_model() {
        let zoo = temp_zoo("roundtrip");
        let cfg = ModelConfig::lenet();
        let quick = TrainConfig::quick();
        // Train explicitly with the quick recipe, cache manually through load_or_train's
        // path by writing with the same key the zoo would use.
        let trained = zoo.train_with(&cfg, &quick, 3).unwrap();
        std::fs::create_dir_all(zoo.dir()).unwrap();
        std::fs::write(
            zoo.dir().join(format!("{}_3.json", cfg.cache_key())),
            serde_json::to_string(&trained).unwrap(),
        )
        .unwrap();
        let loaded = zoo.load_or_train(&cfg, 3).unwrap();
        assert_eq!(loaded.model.graph, trained.model.graph);
        assert_eq!(loaded.seed, 3);
        let _ = std::fs::remove_dir_all(zoo.dir());
    }

    #[test]
    fn corrupt_cache_entries_are_retrained() {
        let zoo = temp_zoo("corrupt");
        let cfg = ModelConfig::lenet();
        std::fs::create_dir_all(zoo.dir()).unwrap();
        let path = zoo.dir().join(format!("{}_9.json", cfg.cache_key()));
        std::fs::write(&path, "not json").unwrap();
        // load_or_train would retrain with the full recipe, which is slow for a unit test;
        // verify the corrupt file is detected by attempting a parse the same way.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(serde_json::from_str::<TrainedModel>(&text).is_err());
        let _ = std::fs::remove_dir_all(zoo.dir());
    }

    #[test]
    fn dataset_helpers_match_training_recipes() {
        let data = ModelZoo::classification_data(ModelKind::LeNet, 1);
        let cfg = TrainConfig::for_kind(ModelKind::LeNet);
        assert_eq!(data.train.len(), cfg.train_samples);
        assert_eq!(data.validation.len(), cfg.validation_samples);
        let driving = ModelZoo::driving_data(1);
        assert_eq!(
            driving.train.len(),
            TrainConfig::for_kind(ModelKind::Dave).train_samples
        );
    }

    #[test]
    fn default_dir_respects_env_override() {
        let zoo = ModelZoo::with_default_dir();
        assert!(!zoo.dir().as_os_str().is_empty());
    }
}
