//! ResNet-18 replica (natural-scene domain).
//!
//! Structure: an initial convolution followed by four stages of two basic residual blocks
//! each (17 convolutions) and a final dense layer — the ResNet-18 layer count — with
//! identity or 1×1-projection shortcuts. Batch normalization is folded away (the replica
//! trains without it at this scale), which does not affect Ranger: the transformation
//! keys off activation, pooling, reshape and concatenation operators only.

use crate::archs::{activation, exclusion_from_last_dense};
use crate::model::{Model, ModelConfig, Task};
use rand::rngs::StdRng;
use ranger_datasets::classification::ImageDomain;
use ranger_graph::op::Padding;
use ranger_graph::{GraphBuilder, NodeId};

/// Adds one basic residual block: two 3×3 convolutions with a shortcut connection.
///
/// When `stride != 1` or the channel count changes, the shortcut is a 1×1 convolution with
/// the same stride (a projection shortcut); otherwise it is the identity.
fn basic_block(
    b: &mut GraphBuilder,
    config: &ModelConfig,
    x: NodeId,
    cin: usize,
    cout: usize,
    stride: usize,
    rng: &mut StdRng,
) -> NodeId {
    let c1 = b.conv2d(x, cin, cout, 3, stride, Padding::Same, rng);
    let a1 = activation(b, config, c1);
    let c2 = b.conv2d(a1, cout, cout, 3, 1, Padding::Same, rng);
    let shortcut = if stride != 1 || cin != cout {
        b.conv2d(x, cin, cout, 1, stride, Padding::Same, rng)
    } else {
        x
    };
    let sum = b.add(c2, shortcut);
    activation(b, config, sum)
}

/// Builds the ResNet-18 replica.
pub fn build(config: &ModelConfig, rng: &mut StdRng) -> Model {
    let domain = ImageDomain::NaturalScenes;
    let num_classes = domain.num_classes();
    let mut b = GraphBuilder::new();
    let x = b.input("image");

    // Stem: 32x32, 8 channels.
    let c = b.conv2d(x, 3, 8, 3, 1, Padding::Same, rng);
    let h = activation(&mut b, config, c);

    // Four stages of two basic blocks; spatial size 32 -> 32 -> 16 -> 8 -> 4.
    let h = basic_block(&mut b, config, h, 8, 8, 1, rng);
    let h = basic_block(&mut b, config, h, 8, 8, 1, rng);

    let h = basic_block(&mut b, config, h, 8, 16, 2, rng);
    let h = basic_block(&mut b, config, h, 16, 16, 1, rng);

    let h = basic_block(&mut b, config, h, 16, 24, 2, rng);
    let h = basic_block(&mut b, config, h, 24, 24, 1, rng);

    let h = basic_block(&mut b, config, h, 24, 32, 2, rng);
    let h = basic_block(&mut b, config, h, 32, 32, 1, rng);

    // Head: global average pooling and one dense layer.
    let pooled = b.global_avg_pool(h);
    let logits = b.dense(pooled, 32, num_classes, rng);
    let probs = b.softmax(logits);

    let graph = b.into_graph();
    let excluded = exclusion_from_last_dense(&graph, logits);
    Model {
        config: *config,
        graph,
        input_name: "image".to_string(),
        logits,
        output: probs,
        task: Task::Classification { num_classes },
        excluded_from_injection: excluded,
    }
}
