//! Comma.ai steering-model replica (driving dataset).
//!
//! Structure: three strided convolutions with ELU activations followed by two
//! fully-connected layers producing the steering angle in degrees, matching the public
//! comma.ai research model's layout at reduced width for 16×32 frames. When the model is
//! configured with the Tanh activation family (the Hong et al. baseline of Fig. 8) every
//! ELU is replaced by Tanh.

use crate::archs::exclusion_from_last_dense;
use crate::model::{Activation, Model, ModelConfig, Task};
use rand::rngs::StdRng;
use ranger_graph::op::Padding;
use ranger_graph::{GraphBuilder, NodeId};

/// Applies the Comma model's activation: ELU originally, Tanh for the Hong et al. variant.
fn comma_activation(b: &mut GraphBuilder, config: &ModelConfig, x: NodeId) -> NodeId {
    match config.activation {
        Activation::Relu => b.elu(x),
        Activation::Tanh => b.tanh(x),
    }
}

/// Builds the Comma.ai replica. The output is a steering angle in degrees.
pub fn build(config: &ModelConfig, rng: &mut StdRng) -> Model {
    let mut b = GraphBuilder::new();
    let x = b.input("image");

    // Three strided convolutions: 16x32 -> 8x16 -> 4x8 -> 2x4.
    let c1 = b.conv2d(x, 3, 8, 3, 2, Padding::Same, rng);
    let a1 = comma_activation(&mut b, config, c1);
    let c2 = b.conv2d(a1, 8, 16, 3, 2, Padding::Same, rng);
    let a2 = comma_activation(&mut b, config, c2);
    let c3 = b.conv2d(a2, 16, 16, 3, 2, Padding::Same, rng);
    let a3 = comma_activation(&mut b, config, c3);

    // Two fully-connected layers: 128 -> 64 -> 1. The network predicts a normalized
    // steering value in roughly [-1, 1]; the output node scales it to degrees.
    let f = b.flatten(a3);
    let d1 = b.dense(f, 16 * 2 * 4, 64, rng);
    let a4 = comma_activation(&mut b, config, d1);
    let logits = b.dense(a4, 64, 1, rng);
    let output = b.scalar_mul(logits, ranger_datasets::driving::MAX_ANGLE_DEGREES);

    let graph = b.into_graph();
    let excluded = exclusion_from_last_dense(&graph, logits);
    Model {
        config: *config,
        graph,
        input_name: "image".to_string(),
        logits,
        output,
        task: Task::Regression {
            unit: config.steering_unit,
        },
        excluded_from_injection: excluded,
    }
}
