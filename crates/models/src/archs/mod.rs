//! Constructors for the eight benchmark architectures.
//!
//! Each submodule builds one architecture family as a dataflow graph via
//! [`ranger_graph::GraphBuilder`]. The constructors honour the [`ModelConfig`]'s
//! activation family (ReLU or Tanh, the latter reproducing the Hong et al. baseline) and,
//! for the Dave model, the output unit (radians through `2·atan`, or a linear output in
//! degrees as in the paper's Section VI retraining).

pub mod alexnet;
pub mod comma;
pub mod dave;
pub mod lenet;
pub mod resnet;
pub mod squeezenet;
pub mod vgg;

use crate::model::{Activation, Model, ModelConfig, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ranger_graph::{Graph, GraphBuilder, NodeId};

/// Builds the model described by `config`, initializing weights from `seed`.
pub fn build(config: &ModelConfig, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    match config.kind {
        ModelKind::LeNet => lenet::build(config, &mut rng),
        ModelKind::AlexNet => alexnet::build(config, &mut rng),
        ModelKind::Vgg11 => vgg::build_vgg11(config, &mut rng),
        ModelKind::Vgg16 => vgg::build_vgg16(config, &mut rng),
        ModelKind::ResNet18 => resnet::build(config, &mut rng),
        ModelKind::SqueezeNet => squeezenet::build(config, &mut rng),
        ModelKind::Dave => dave::build(config, &mut rng),
        ModelKind::Comma => comma::build(config, &mut rng),
    }
}

/// Applies the configured activation family to `x`.
pub(crate) fn activation(b: &mut GraphBuilder, config: &ModelConfig, x: NodeId) -> NodeId {
    match config.activation {
        Activation::Relu => b.relu(x),
        Activation::Tanh => b.tanh(x),
    }
}

/// Returns `node` plus every node reachable downstream of it (its transitive consumers).
///
/// Used to build the fault-injection exclusion set: the paper excludes the last
/// fully-connected layer (and therefore everything after it) from injection.
pub(crate) fn downstream_of(graph: &Graph, node: NodeId) -> Vec<NodeId> {
    let mut result = vec![node];
    let mut frontier = vec![node];
    while let Some(current) = frontier.pop() {
        for consumer in graph.consumers(current) {
            if !result.contains(&consumer) {
                result.push(consumer);
                frontier.push(consumer);
            }
        }
    }
    result.sort();
    result
}

/// Given the BiasAdd node returned by [`GraphBuilder::dense`], returns the exclusion set
/// for injections: the dense layer's MatMul and everything downstream.
pub(crate) fn exclusion_from_last_dense(graph: &Graph, last_dense_bias: NodeId) -> Vec<NodeId> {
    let matmul = graph
        .node(last_dense_bias)
        .expect("dense output node exists")
        .inputs[0];
    downstream_of(graph, matmul)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Task;
    use ranger_datasets::driving::AngleUnit;
    use ranger_graph::Executor;
    use ranger_tensor::Tensor;

    /// Every architecture must build, run a forward pass of the right shape, and expose a
    /// sensible exclusion set.
    #[test]
    fn all_architectures_build_and_run() {
        for kind in ModelKind::all() {
            let config = ModelConfig::new(kind);
            let model = build(&config, 7);
            assert_eq!(model.config.kind, kind);
            assert!(model.parameter_count() > 0, "{kind} has no parameters");
            assert!(model.activation_count() > 0, "{kind} has no activations");
            assert!(
                !model.excluded_from_injection.is_empty(),
                "{kind} must exclude its last FC layer from injection"
            );

            let batch = match kind.image_domain() {
                Some(domain) => {
                    let (c, h, w) = domain.image_shape();
                    Tensor::ones(vec![1, c, h, w])
                }
                None => {
                    let (c, h, w) = ranger_datasets::driving::FRAME_SHAPE;
                    Tensor::ones(vec![1, c, h, w])
                }
            };
            let out = model
                .forward(&batch)
                .unwrap_or_else(|e| panic!("{kind} forward failed: {e}"));
            match model.task {
                Task::Classification { num_classes } => {
                    assert_eq!(out.dims(), &[1, num_classes], "{kind} output shape");
                    let sum: f32 = out.data().iter().sum();
                    assert!(
                        (sum - 1.0).abs() < 1e-4,
                        "{kind} softmax should sum to 1, got {sum}"
                    );
                }
                Task::Regression { .. } => {
                    assert_eq!(out.dims(), &[1, 1], "{kind} output shape");
                    assert!(out.data()[0].is_finite());
                }
            }
        }
    }

    #[test]
    fn tanh_variant_contains_no_relu() {
        for kind in [ModelKind::LeNet, ModelKind::AlexNet, ModelKind::Vgg11] {
            let model = build(&ModelConfig::new(kind).with_tanh(), 3);
            let has_relu = model
                .graph
                .nodes()
                .iter()
                .any(|n| matches!(n.op, ranger_graph::Op::Relu));
            assert!(!has_relu, "{kind} Tanh variant must not contain ReLU nodes");
        }
    }

    #[test]
    fn dave_radian_output_goes_through_atan() {
        let radians = build(&ModelConfig::new(ModelKind::Dave), 1);
        let has_atan = radians
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, ranger_graph::Op::Atan));
        assert!(has_atan);
        assert_eq!(
            radians.task,
            Task::Regression {
                unit: AngleUnit::Radians
            }
        );

        let degrees = build(
            &ModelConfig::new(ModelKind::Dave).with_steering_unit(AngleUnit::Degrees),
            1,
        );
        let has_atan = degrees
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, ranger_graph::Op::Atan));
        assert!(!has_atan, "degree-output Dave is a linear regression head");
    }

    #[test]
    fn downstream_of_collects_transitive_consumers() {
        let model = build(&ModelConfig::lenet(), 0);
        // The exclusion set must contain the output node and the logits node.
        assert!(model.excluded_from_injection.contains(&model.output));
        assert!(model.excluded_from_injection.contains(&model.logits));
        // But not the first convolution.
        let first_conv = model
            .graph
            .nodes()
            .iter()
            .find(|n| matches!(n.op, ranger_graph::Op::Conv2d { .. }))
            .unwrap()
            .id;
        assert!(!model.excluded_from_injection.contains(&first_conv));
    }

    #[test]
    fn squeezenet_uses_concat_and_resnet_uses_add() {
        let squeeze = build(&ModelConfig::new(ModelKind::SqueezeNet), 2);
        assert!(squeeze
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, ranger_graph::Op::Concat)));
        let resnet = build(&ModelConfig::new(ModelKind::ResNet18), 2);
        assert!(resnet
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, ranger_graph::Op::Add)));
    }

    #[test]
    fn vgg16_has_thirteen_conv_activations() {
        let model = build(&ModelConfig::new(ModelKind::Vgg16), 5);
        let conv_count = model
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, ranger_graph::Op::Conv2d { .. }))
            .count();
        assert_eq!(conv_count, 13, "VGG16 has 13 convolution layers");
    }

    #[test]
    fn forward_is_deterministic_given_seed() {
        let a = build(&ModelConfig::lenet(), 11);
        let b = build(&ModelConfig::lenet(), 11);
        let (c, h, w) = ModelKind::LeNet.image_domain().unwrap().image_shape();
        let x = Tensor::ones(vec![1, c, h, w]);
        let exec_a = Executor::new(&a.graph);
        let exec_b = Executor::new(&b.graph);
        let out_a = exec_a
            .run_simple(&[("image", x.clone())], a.output)
            .unwrap();
        let out_b = exec_b.run_simple(&[("image", x)], b.output).unwrap();
        assert_eq!(out_a, out_b);
    }
}
