//! SqueezeNet replica (natural-scene domain).
//!
//! Structure: an initial strided convolution, four fire modules (a 1×1 squeeze convolution
//! feeding parallel 1×1 and 3×3 expand convolutions whose outputs are concatenated along
//! the channel axis) separated by max pooling, a final 1×1 convolution producing one
//! channel per class, global average pooling and softmax. The channel-axis `Concat` after
//! two activation outputs is what exercises the Concat rule (lines 7–8) of Ranger's
//! Algorithm 1.

use crate::archs::{activation, downstream_of};
use crate::model::{Model, ModelConfig, Task};
use rand::rngs::StdRng;
use ranger_datasets::classification::ImageDomain;
use ranger_graph::op::Padding;
use ranger_graph::{GraphBuilder, NodeId};

/// Adds one fire module and returns its concatenated output (channel count
/// `2 * expand_channels`).
fn fire_module(
    b: &mut GraphBuilder,
    config: &ModelConfig,
    x: NodeId,
    cin: usize,
    squeeze_channels: usize,
    expand_channels: usize,
    rng: &mut StdRng,
) -> NodeId {
    let squeeze = b.conv2d(x, cin, squeeze_channels, 1, 1, Padding::Same, rng);
    let squeeze = activation(b, config, squeeze);
    let expand1 = b.conv2d(
        squeeze,
        squeeze_channels,
        expand_channels,
        1,
        1,
        Padding::Same,
        rng,
    );
    let expand1 = activation(b, config, expand1);
    let expand3 = b.conv2d(
        squeeze,
        squeeze_channels,
        expand_channels,
        3,
        1,
        Padding::Same,
        rng,
    );
    let expand3 = activation(b, config, expand3);
    b.concat(vec![expand1, expand3])
}

/// Builds the SqueezeNet replica.
pub fn build(config: &ModelConfig, rng: &mut StdRng) -> Model {
    let domain = ImageDomain::NaturalScenes;
    let num_classes = domain.num_classes();
    let mut b = GraphBuilder::new();
    let x = b.input("image");

    // Stem: strided convolution 32 -> 16, then pool 16 -> 8.
    let c1 = b.conv2d(x, 3, 16, 3, 2, Padding::Same, rng);
    let a1 = activation(&mut b, config, c1);
    let p1 = b.max_pool(a1, 2, 2);

    // Fire modules 2 and 3 at 8x8.
    let f2 = fire_module(&mut b, config, p1, 16, 4, 8, rng);
    let f3 = fire_module(&mut b, config, f2, 16, 4, 8, rng);
    let p2 = b.max_pool(f3, 2, 2); // 8 -> 4

    // Fire modules 4 and 5 at 4x4.
    let f4 = fire_module(&mut b, config, p2, 16, 6, 12, rng);
    let f5 = fire_module(&mut b, config, f4, 24, 6, 12, rng);
    let p3 = b.max_pool(f5, 2, 2); // 4 -> 2

    // Final 1x1 convolution producing one channel per class, then global pooling.
    let conv_final = b.conv2d(p3, 24, num_classes, 1, 1, Padding::Same, rng);
    let a_final = activation(&mut b, config, conv_final);
    let pooled = b.global_avg_pool(a_final);
    let logits = b.identity(pooled, "logits");
    let probs = b.softmax(logits);

    let graph = b.into_graph();
    // SqueezeNet has no final dense layer; the exclusion set starts at the class-scoring
    // 1x1 convolution, which plays the same role as the last FC layer in the other models.
    let conv_node = graph.node(conv_final).expect("conv_final exists").inputs[0];
    let excluded = downstream_of(&graph, conv_node);
    Model {
        config: *config,
        graph,
        input_name: "image".to_string(),
        logits,
        output: probs,
        task: Task::Classification { num_classes },
        excluded_from_injection: excluded,
    }
}
