//! VGG11 and VGG16 replicas.
//!
//! VGG11 (8 convolutions + 3 fully-connected layers) classifies the traffic-sign domain;
//! VGG16 (13 convolutions + 3 fully-connected layers) classifies the natural-scene domain.
//! Channel widths are scaled down; the layer ordering (conv blocks separated by max
//! pooling, then three dense layers) follows the original architectures.

use crate::archs::{activation, exclusion_from_last_dense};
use crate::model::{Model, ModelConfig, Task};
use rand::rngs::StdRng;
use ranger_datasets::classification::ImageDomain;
use ranger_graph::op::Padding;
use ranger_graph::{GraphBuilder, NodeId};

/// Adds one `conv -> activation` unit.
fn conv_act(
    b: &mut GraphBuilder,
    config: &ModelConfig,
    x: NodeId,
    cin: usize,
    cout: usize,
    rng: &mut StdRng,
) -> NodeId {
    let c = b.conv2d(x, cin, cout, 3, 1, Padding::Same, rng);
    activation(b, config, c)
}

/// Builds the VGG11 replica on the traffic-sign domain (16×16 inputs).
///
/// The original VGG11 applies five max-pooling stages to 224×224 inputs; at 16×16 the
/// replica applies four (after blocks 1, 2, 4 and 6) so that the final feature map is 1×1.
pub fn build_vgg11(config: &ModelConfig, rng: &mut StdRng) -> Model {
    let domain = ImageDomain::TrafficSigns;
    let num_classes = domain.num_classes();
    let mut b = GraphBuilder::new();
    let x = b.input("image");

    // Block 1: 16 -> 8.
    let h = conv_act(&mut b, config, x, 3, 8, rng);
    let h = b.max_pool(h, 2, 2);
    // Block 2: 8 -> 4.
    let h = conv_act(&mut b, config, h, 8, 16, rng);
    let h = b.max_pool(h, 2, 2);
    // Block 3 (two convolutions): 4 -> 2.
    let h = conv_act(&mut b, config, h, 16, 24, rng);
    let h = conv_act(&mut b, config, h, 24, 24, rng);
    let h = b.max_pool(h, 2, 2);
    // Block 4 (two convolutions): 2 -> 1.
    let h = conv_act(&mut b, config, h, 24, 32, rng);
    let h = conv_act(&mut b, config, h, 32, 32, rng);
    let h = b.max_pool(h, 2, 2);
    // Block 5 (two convolutions) at 1x1.
    let h = conv_act(&mut b, config, h, 32, 32, rng);
    let h = conv_act(&mut b, config, h, 32, 32, rng);

    // Classifier head: three dense layers.
    let f = b.flatten(h);
    let d1 = b.dense(f, 32, 64, rng);
    let a1 = activation(&mut b, config, d1);
    let d2 = b.dense(a1, 64, 64, rng);
    let a2 = activation(&mut b, config, d2);
    let logits = b.dense(a2, 64, num_classes, rng);
    let probs = b.softmax(logits);

    let graph = b.into_graph();
    let excluded = exclusion_from_last_dense(&graph, logits);
    Model {
        config: *config,
        graph,
        input_name: "image".to_string(),
        logits,
        output: probs,
        task: Task::Classification { num_classes },
        excluded_from_injection: excluded,
    }
}

/// Builds the VGG16 replica on the natural-scene domain (32×32 inputs): 13 convolutions in
/// five blocks, five max-pooling stages, three dense layers.
pub fn build_vgg16(config: &ModelConfig, rng: &mut StdRng) -> Model {
    let domain = ImageDomain::NaturalScenes;
    let num_classes = domain.num_classes();
    let mut b = GraphBuilder::new();
    let x = b.input("image");

    // Block 1 (2 convs): 32 -> 16.
    let h = conv_act(&mut b, config, x, 3, 8, rng);
    let h = conv_act(&mut b, config, h, 8, 8, rng);
    let h = b.max_pool(h, 2, 2);
    // Block 2 (2 convs): 16 -> 8.
    let h = conv_act(&mut b, config, h, 8, 12, rng);
    let h = conv_act(&mut b, config, h, 12, 12, rng);
    let h = b.max_pool(h, 2, 2);
    // Block 3 (3 convs): 8 -> 4.
    let h = conv_act(&mut b, config, h, 12, 16, rng);
    let h = conv_act(&mut b, config, h, 16, 16, rng);
    let h = conv_act(&mut b, config, h, 16, 16, rng);
    let h = b.max_pool(h, 2, 2);
    // Block 4 (3 convs): 4 -> 2.
    let h = conv_act(&mut b, config, h, 16, 24, rng);
    let h = conv_act(&mut b, config, h, 24, 24, rng);
    let h = conv_act(&mut b, config, h, 24, 24, rng);
    let h = b.max_pool(h, 2, 2);
    // Block 5 (3 convs): 2 -> 1.
    let h = conv_act(&mut b, config, h, 24, 24, rng);
    let h = conv_act(&mut b, config, h, 24, 24, rng);
    let h = conv_act(&mut b, config, h, 24, 24, rng);
    let h = b.max_pool(h, 2, 2);

    // Classifier head.
    let f = b.flatten(h);
    let d1 = b.dense(f, 24, 48, rng);
    let a1 = activation(&mut b, config, d1);
    let d2 = b.dense(a1, 48, 48, rng);
    let a2 = activation(&mut b, config, d2);
    let logits = b.dense(a2, 48, num_classes, rng);
    let probs = b.softmax(logits);

    let graph = b.into_graph();
    let excluded = exclusion_from_last_dense(&graph, logits);
    Model {
        config: *config,
        graph,
        input_name: "image".to_string(),
        logits,
        output: probs,
        task: Task::Classification { num_classes },
        excluded_from_injection: excluded,
    }
}
