//! LeNet replica (MNIST-like digits).
//!
//! Structure: two convolution + pooling stages followed by three fully-connected layers,
//! as in the classic LeNet-5, at reduced width for the 14×14 synthetic digit images.

use crate::archs::{activation, exclusion_from_last_dense};
use crate::model::{Model, ModelConfig, Task};
use rand::rngs::StdRng;
use ranger_datasets::classification::ImageDomain;
use ranger_graph::op::Padding;
use ranger_graph::GraphBuilder;

/// Builds the LeNet replica.
pub fn build(config: &ModelConfig, rng: &mut StdRng) -> Model {
    let domain = ImageDomain::Digits;
    let num_classes = domain.num_classes();
    let mut b = GraphBuilder::new();
    let x = b.input("image");

    // Stage 1: 14x14 -> 7x7.
    let c1 = b.conv2d(x, 1, 6, 5, 1, Padding::Same, rng);
    let a1 = activation(&mut b, config, c1);
    let p1 = b.max_pool(a1, 2, 2);

    // Stage 2: 7x7 -> 3x3 -> 1x1.
    let c2 = b.conv2d(p1, 6, 16, 5, 1, Padding::Valid, rng);
    let a2 = activation(&mut b, config, c2);
    let p2 = b.max_pool(a2, 2, 2);

    // Classifier head.
    let f = b.flatten(p2);
    let d1 = b.dense(f, 16, 32, rng);
    let a3 = activation(&mut b, config, d1);
    let d2 = b.dense(a3, 32, 16, rng);
    let a4 = activation(&mut b, config, d2);
    let logits = b.dense(a4, 16, num_classes, rng);
    let probs = b.softmax(logits);

    let graph = b.into_graph();
    let excluded = exclusion_from_last_dense(&graph, logits);
    Model {
        config: *config,
        graph,
        input_name: "image".to_string(),
        logits,
        output: probs,
        task: Task::Classification { num_classes },
        excluded_from_injection: excluded,
    }
}
