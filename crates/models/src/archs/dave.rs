//! Nvidia Dave steering-model replica (driving dataset).
//!
//! Structure: five convolution layers (the first three strided) followed by five
//! fully-connected layers, ending in a single steering output — the Dave-2 layout at
//! reduced width for 16×32 frames. The original model converts its final activation to a
//! steering angle in radians through `2·atan(x)`; the paper's Section VI retrains a
//! variant that outputs degrees directly (a linear head), which this constructor builds
//! when the configured steering unit is degrees.

use crate::archs::{activation, exclusion_from_last_dense};
use crate::model::{Model, ModelConfig, Task};
use rand::rngs::StdRng;
use ranger_datasets::driving::AngleUnit;
use ranger_graph::op::Padding;
use ranger_graph::GraphBuilder;

/// Builds the Dave replica. The output unit follows `config.steering_unit`.
pub fn build(config: &ModelConfig, rng: &mut StdRng) -> Model {
    let mut b = GraphBuilder::new();
    let x = b.input("image");

    // Convolution stack: 16x32 -> 8x16 -> 4x8 -> 2x4, then two stride-1 convolutions.
    let c1 = b.conv2d(x, 3, 8, 3, 2, Padding::Same, rng);
    let a1 = activation(&mut b, config, c1);
    let c2 = b.conv2d(a1, 8, 12, 3, 2, Padding::Same, rng);
    let a2 = activation(&mut b, config, c2);
    let c3 = b.conv2d(a2, 12, 16, 3, 2, Padding::Same, rng);
    let a3 = activation(&mut b, config, c3);
    let c4 = b.conv2d(a3, 16, 16, 3, 1, Padding::Same, rng);
    let a4 = activation(&mut b, config, c4);
    let c5 = b.conv2d(a4, 16, 16, 3, 1, Padding::Same, rng);
    let a5 = activation(&mut b, config, c5);

    // Five fully-connected layers: 128 -> 64 -> 32 -> 16 -> 8 -> 1.
    let f = b.flatten(a5);
    let d1 = b.dense(f, 16 * 2 * 4, 64, rng);
    let a6 = activation(&mut b, config, d1);
    let d2 = b.dense(a6, 64, 32, rng);
    let a7 = activation(&mut b, config, d2);
    let d3 = b.dense(a7, 32, 16, rng);
    let a8 = activation(&mut b, config, d3);
    let d4 = b.dense(a8, 16, 8, rng);
    let a9 = activation(&mut b, config, d4);
    let logits = b.dense(a9, 8, 1, rng);

    // Output head: radians go through the horizontally-asymptotic 2·atan (the property
    // the paper blames for Dave's weaker protection); the degree variant predicts a
    // normalized steering value that the output node scales to degrees.
    let output = match config.steering_unit {
        AngleUnit::Radians => {
            let atan = b.atan(logits);
            b.scalar_mul(atan, 2.0)
        }
        AngleUnit::Degrees => b.scalar_mul(logits, ranger_datasets::driving::MAX_ANGLE_DEGREES),
    };

    let graph = b.into_graph();
    let excluded = exclusion_from_last_dense(&graph, logits);
    Model {
        config: *config,
        graph,
        input_name: "image".to_string(),
        logits,
        output,
        task: Task::Regression {
            unit: config.steering_unit,
        },
        excluded_from_injection: excluded,
    }
}
