//! AlexNet replica (CIFAR-10-like object images).
//!
//! Structure: five convolution layers (pooling after the first, second and fifth) followed
//! by three fully-connected layers, matching AlexNet's layer ordering at reduced width for
//! 16×16 inputs.

use crate::archs::{activation, exclusion_from_last_dense};
use crate::model::{Model, ModelConfig, Task};
use rand::rngs::StdRng;
use ranger_datasets::classification::ImageDomain;
use ranger_graph::op::Padding;
use ranger_graph::GraphBuilder;

/// Builds the AlexNet replica.
pub fn build(config: &ModelConfig, rng: &mut StdRng) -> Model {
    let domain = ImageDomain::Objects;
    let num_classes = domain.num_classes();
    let mut b = GraphBuilder::new();
    let x = b.input("image");

    // conv1 + pool: 16x16 -> 8x8.
    let c1 = b.conv2d(x, 3, 12, 3, 1, Padding::Same, rng);
    let a1 = activation(&mut b, config, c1);
    let p1 = b.max_pool(a1, 2, 2);

    // conv2 + pool: 8x8 -> 4x4.
    let c2 = b.conv2d(p1, 12, 24, 3, 1, Padding::Same, rng);
    let a2 = activation(&mut b, config, c2);
    let p2 = b.max_pool(a2, 2, 2);

    // conv3, conv4, conv5 + pool: 4x4 -> 2x2.
    let c3 = b.conv2d(p2, 24, 32, 3, 1, Padding::Same, rng);
    let a3 = activation(&mut b, config, c3);
    let c4 = b.conv2d(a3, 32, 32, 3, 1, Padding::Same, rng);
    let a4 = activation(&mut b, config, c4);
    let c5 = b.conv2d(a4, 32, 24, 3, 1, Padding::Same, rng);
    let a5 = activation(&mut b, config, c5);
    let p3 = b.max_pool(a5, 2, 2);

    // Three fully-connected layers.
    let f = b.flatten(p3);
    let d1 = b.dense(f, 24 * 2 * 2, 64, rng);
    let a6 = activation(&mut b, config, d1);
    let d2 = b.dense(a6, 64, 48, rng);
    let a7 = activation(&mut b, config, d2);
    let logits = b.dense(a7, 48, num_classes, rng);
    let probs = b.softmax(logits);

    let graph = b.into_graph();
    let excluded = exclusion_from_last_dense(&graph, logits);
    Model {
        config: *config,
        graph,
        input_name: "image".to_string(),
        logits,
        output: probs,
        task: Task::Classification { num_classes },
        excluded_from_injection: excluded,
    }
}
