//! The eight DNN benchmarks of the Ranger paper, with training recipes and a model zoo.
//!
//! The paper evaluates Ranger on six classifiers (LeNet, AlexNet, VGG11, VGG16, ResNet-18,
//! SqueezeNet) and two steering-angle regression models used in autonomous vehicles
//! (Nvidia Dave and Comma.ai). This crate provides faithful *structure* replicas of those
//! architectures — same layer types, depth, activation placement, pooling structure,
//! residual connections and fire-module concatenations — at reduced width and input
//! resolution so they can be trained from scratch and fault-injected on a single CPU core
//! (see `DESIGN.md` §4 for the substitution argument).
//!
//! * [`model`] — the [`Model`] wrapper tying a graph to its task metadata.
//! * [`archs`] — one constructor per benchmark architecture.
//! * [`train`] — SGD training loops and accuracy/RMSE evaluation.
//! * [`zoo`] — a disk-backed cache of trained models so experiments do not retrain.
//!
//! # Example
//!
//! ```no_run
//! use ranger_models::model::ModelConfig;
//! use ranger_models::zoo::ModelZoo;
//!
//! let zoo = ModelZoo::with_default_dir();
//! let trained = zoo.load_or_train(&ModelConfig::lenet(), 42)?;
//! println!("validation accuracy: {:.2}%", trained.validation_accuracy * 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod archs;
pub mod model;
pub mod train;
pub mod zoo;

pub use model::{Activation, Model, ModelConfig, ModelKind, Task};
pub use train::TrainConfig;
pub use zoo::{ModelZoo, TrainedModel};
