//! Training loops and evaluation metrics for the benchmark models.

use crate::model::{Model, ModelKind, Task};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use ranger_datasets::classification::ClassificationDataset;
use ranger_datasets::driving::{AngleUnit, DrivingDataset};
use ranger_graph::autodiff::{backward, mse_loss, softmax_cross_entropy, SgdOptimizer};
use ranger_graph::exec::NoopInterceptor;
use ranger_graph::{Executor, GraphError};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Number of training samples to generate.
    pub train_samples: usize,
    /// Number of validation samples to generate.
    pub validation_samples: usize,
}

impl TrainConfig {
    /// The default training recipe for a benchmark kind, tuned so each model trains in
    /// seconds-to-a-minute on a single CPU core while reaching high accuracy on its
    /// synthetic dataset.
    pub fn for_kind(kind: ModelKind) -> Self {
        match kind {
            ModelKind::LeNet => TrainConfig {
                epochs: 10,
                batch_size: 32,
                learning_rate: 0.05,
                momentum: 0.9,
                weight_decay: 1e-4,
                train_samples: 400,
                validation_samples: 200,
            },
            ModelKind::AlexNet | ModelKind::Vgg11 => TrainConfig {
                epochs: 20,
                batch_size: 32,
                learning_rate: 0.04,
                momentum: 0.9,
                weight_decay: 1e-4,
                train_samples: 400,
                validation_samples: 200,
            },
            ModelKind::Vgg16 | ModelKind::SqueezeNet => TrainConfig {
                epochs: 15,
                batch_size: 32,
                learning_rate: 0.04,
                momentum: 0.9,
                weight_decay: 1e-4,
                train_samples: 300,
                validation_samples: 150,
            },
            ModelKind::ResNet18 => TrainConfig {
                epochs: 10,
                batch_size: 32,
                learning_rate: 0.04,
                momentum: 0.9,
                weight_decay: 1e-4,
                train_samples: 300,
                validation_samples: 150,
            },
            ModelKind::Dave | ModelKind::Comma => TrainConfig {
                epochs: 12,
                batch_size: 32,
                learning_rate: 0.01,
                momentum: 0.9,
                weight_decay: 0.0,
                train_samples: 500,
                validation_samples: 200,
            },
        }
    }

    /// A much smaller recipe used by unit tests.
    pub fn quick() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 16,
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            train_samples: 80,
            validation_samples: 40,
        }
    }
}

/// Evaluation metrics of a trained model on its validation split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EvalMetrics {
    /// Classification accuracies (fractions in `[0, 1]`).
    Classification {
        /// Top-1 accuracy.
        top1: f64,
        /// Top-5 accuracy.
        top5: f64,
    },
    /// Steering regression metrics, both in degrees.
    Regression {
        /// Root-mean-square error of the predicted angle.
        rmse: f64,
        /// Mean absolute deviation per frame (the paper's "average deviation").
        mean_abs_deviation: f64,
    },
}

/// Trains a classifier in place and returns the per-epoch mean training loss.
///
/// # Errors
///
/// Returns a [`GraphError`] if a forward or backward pass fails.
pub fn train_classifier(
    model: &mut Model,
    data: &ClassificationDataset,
    cfg: &TrainConfig,
    seed: u64,
) -> Result<Vec<f32>, GraphError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opt =
        SgdOptimizer::new(cfg.learning_rate, cfg.momentum, cfg.weight_decay).with_clip_norm(5.0);
    let mut history = Vec::with_capacity(cfg.epochs);
    let n = data.train.len();
    let mut indices: Vec<usize> = (0..n).collect();
    for epoch in 0..cfg.epochs {
        indices.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        // A simple step decay keeps the later epochs stable.
        opt.set_learning_rate(cfg.learning_rate * 0.8f32.powi(epoch as i32 / 3));
        for chunk in indices.chunks(cfg.batch_size) {
            let (batch, labels) = data.train_batch(chunk);
            let exec = Executor::new(&model.graph);
            let values = exec.run(&[(model.input_name.as_str(), batch)], &mut NoopInterceptor)?;
            let logits = values.get(model.logits)?;
            let (loss, grad) = softmax_cross_entropy(logits, &labels)?;
            let grads = backward(&model.graph, &values, model.logits, &grad)?;
            opt.step(&mut model.graph, &grads)?;
            epoch_loss += loss;
            batches += 1;
        }
        history.push(epoch_loss / batches.max(1) as f32);
    }
    Ok(history)
}

/// Trains a steering-angle regressor in place and returns the per-epoch mean training
/// loss.
///
/// Degree-output models predict a normalized steering value internally (their output node
/// scales it to degrees), so training is performed at the logits against targets divided
/// by [`ranger_datasets::driving::MAX_ANGLE_DEGREES`]; the radian-output Dave model trains
/// directly at its bounded `2·atan` output. Both keep the loss and gradients well scaled.
///
/// # Errors
///
/// Returns a [`GraphError`] if a forward or backward pass fails.
pub fn train_regressor(
    model: &mut Model,
    data: &DrivingDataset,
    cfg: &TrainConfig,
    seed: u64,
) -> Result<Vec<f32>, GraphError> {
    let Task::Regression { unit } = model.task else {
        return Err(GraphError::UnsupportedBackward {
            op: "train_regressor on a classification model".to_string(),
        });
    };
    // Which node to fit, and how to map degree targets into that node's scale.
    let (fit_node, target_unit, target_scale) = match unit {
        AngleUnit::Radians => (model.output, AngleUnit::Radians, 1.0f32),
        AngleUnit::Degrees => (
            model.logits,
            AngleUnit::Degrees,
            1.0 / ranger_datasets::driving::MAX_ANGLE_DEGREES,
        ),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opt =
        SgdOptimizer::new(cfg.learning_rate, cfg.momentum, cfg.weight_decay).with_clip_norm(5.0);
    let mut history = Vec::with_capacity(cfg.epochs);
    let n = data.train.len();
    let mut indices: Vec<usize> = (0..n).collect();
    for epoch in 0..cfg.epochs {
        indices.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        opt.set_learning_rate(cfg.learning_rate * 0.8f32.powi(epoch as i32 / 4));
        for chunk in indices.chunks(cfg.batch_size) {
            let (batch, targets) = data.train_batch(chunk, target_unit);
            let targets = targets.scale(target_scale);
            let exec = Executor::new(&model.graph);
            let values = exec.run(&[(model.input_name.as_str(), batch)], &mut NoopInterceptor)?;
            let output = values.get(fit_node)?;
            let (loss, grad) = mse_loss(output, &targets)?;
            let grads = backward(&model.graph, &values, fit_node, &grad)?;
            opt.step(&mut model.graph, &grads)?;
            epoch_loss += loss;
            batches += 1;
        }
        history.push(epoch_loss / batches.max(1) as f32);
    }
    Ok(history)
}

/// Computes top-1 and top-5 validation accuracy of a classifier.
///
/// # Errors
///
/// Returns a [`GraphError`] if a forward pass fails.
pub fn classification_accuracy(
    model: &Model,
    data: &ClassificationDataset,
    use_validation: bool,
) -> Result<(f64, f64), GraphError> {
    let Task::Classification { num_classes } = model.task else {
        return Err(GraphError::UnsupportedBackward {
            op: "classification_accuracy on a regression model".to_string(),
        });
    };
    let samples = if use_validation {
        &data.validation
    } else {
        &data.train
    };
    if samples.is_empty() {
        return Ok((0.0, 0.0));
    }
    let mut top1 = 0usize;
    let mut top5 = 0usize;
    let indices: Vec<usize> = (0..samples.len()).collect();
    for chunk in indices.chunks(64) {
        let (batch, labels) = if use_validation {
            data.validation_batch(chunk)
        } else {
            data.train_batch(chunk)
        };
        let out = model.forward(&batch)?;
        for (row, &label) in chunk
            .iter()
            .zip(labels.iter())
            .enumerate()
            .map(|(i, (_, l))| (i, l))
        {
            let probs = &out.data()[row * num_classes..(row + 1) * num_classes];
            let mut order: Vec<usize> = (0..num_classes).collect();
            order.sort_by(|&a, &b| {
                probs[b]
                    .partial_cmp(&probs[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            if order[0] == label {
                top1 += 1;
            }
            if order.iter().take(5).any(|&c| c == label) {
                top5 += 1;
            }
        }
    }
    let n = samples.len() as f64;
    Ok((top1 as f64 / n, top5 as f64 / n))
}

/// Computes RMSE and mean absolute deviation (both in degrees) of a steering model.
///
/// # Errors
///
/// Returns a [`GraphError`] if a forward pass fails.
pub fn regression_metrics(
    model: &Model,
    data: &DrivingDataset,
    use_validation: bool,
) -> Result<(f64, f64), GraphError> {
    let samples = if use_validation {
        &data.validation
    } else {
        &data.train
    };
    if samples.is_empty() {
        return Ok((0.0, 0.0));
    }
    let mut predictions = Vec::with_capacity(samples.len());
    let mut targets = Vec::with_capacity(samples.len());
    let indices: Vec<usize> = (0..samples.len()).collect();
    for chunk in indices.chunks(64) {
        let (batch, target_deg) = if use_validation {
            data.validation_batch(chunk, AngleUnit::Degrees)
        } else {
            data.train_batch(chunk, AngleUnit::Degrees)
        };
        let pred_deg = model.predict_angles_degrees(&batch)?;
        predictions.extend(pred_deg.iter().map(|&p| p as f64));
        targets.extend(target_deg.data().iter().map(|&t| t as f64));
    }
    Ok((
        ranger_tensor::stats::rmse(&predictions, &targets),
        ranger_tensor::stats::mean_abs_deviation(&predictions, &targets),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archs;
    use crate::model::ModelConfig;
    use ranger_datasets::classification::ImageDomain;

    #[test]
    fn lenet_learns_the_synthetic_digits() {
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 16,
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            train_samples: 150,
            validation_samples: 60,
        };
        let data = ClassificationDataset::generate(
            ImageDomain::Digits,
            cfg.train_samples,
            cfg.validation_samples,
            0,
        );
        let mut model = archs::build(&ModelConfig::lenet(), 0);
        let history = train_classifier(&mut model, &data, &cfg, 0).unwrap();
        assert!(
            history.last().unwrap() < history.first().unwrap(),
            "loss must decrease: {history:?}"
        );
        let (top1, top5) = classification_accuracy(&model, &data, true).unwrap();
        assert!(
            top1 > 0.5,
            "LeNet should learn the digits quickly, got top1 {top1}"
        );
        assert!(top5 >= top1);
    }

    #[test]
    fn comma_regressor_reduces_steering_error() {
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 16,
            learning_rate: 0.02,
            momentum: 0.9,
            weight_decay: 0.0,
            train_samples: 200,
            validation_samples: 80,
        };
        let data = DrivingDataset::generate(cfg.train_samples, cfg.validation_samples, 1);
        let mut model = archs::build(&ModelConfig::new(ModelKind::Comma), 1);
        let (rmse_before, _) = regression_metrics(&model, &data, true).unwrap();
        let history = train_regressor(&mut model, &data, &cfg, 1).unwrap();
        let (rmse_after, mad_after) = regression_metrics(&model, &data, true).unwrap();
        assert!(history.last().unwrap() < history.first().unwrap());
        assert!(
            rmse_after < rmse_before,
            "training should reduce RMSE: {rmse_before} -> {rmse_after}"
        );
        assert!(mad_after <= rmse_after + 1e-9);
    }

    #[test]
    fn accuracy_on_wrong_task_is_an_error() {
        let model = archs::build(&ModelConfig::new(ModelKind::Comma), 0);
        let data = ClassificationDataset::generate(ImageDomain::Digits, 4, 4, 0);
        assert!(classification_accuracy(&model, &data, true).is_err());
    }

    #[test]
    fn train_config_defaults_cover_all_kinds() {
        for kind in ModelKind::all() {
            let cfg = TrainConfig::for_kind(kind);
            assert!(cfg.epochs > 0 && cfg.batch_size > 0 && cfg.train_samples > 0);
        }
        assert!(
            TrainConfig::quick().train_samples
                < TrainConfig::for_kind(ModelKind::LeNet).train_samples
        );
    }
}
