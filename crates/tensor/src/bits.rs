//! Datatype-aware bit-flip primitives.
//!
//! A transient hardware fault manifests as one (or a few) flipped bits in the value a
//! processor datapath produces. The datatype determines how a bit flip maps to a numeric
//! deviation, so the fault injector is parameterised by a [`DataType`].

use crate::fixed::FixedSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The numeric representation in which faults are injected.
///
/// Inference itself runs in `f32`; when a fault is injected into an operator output the
/// affected value is encoded in this datatype, the chosen bit(s) are flipped, and the value
/// is decoded back. This mirrors how TensorFI emulates datatype-level faults on top of a
/// floating-point runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DataType {
    /// IEEE-754 single-precision floating point (32 bits).
    Float32,
    /// Two's-complement fixed point with the given format.
    Fixed(FixedSpec),
}

impl DataType {
    /// The 32-bit fixed-point datatype the paper uses for RQ1–RQ3.
    pub fn fixed32() -> Self {
        DataType::Fixed(FixedSpec::q32())
    }

    /// The 16-bit fixed-point datatype the paper uses for RQ4 (14 integer / 2 fractional).
    pub fn fixed16() -> Self {
        DataType::Fixed(FixedSpec::q16())
    }

    /// Number of bits in a value of this datatype.
    pub fn bit_width(&self) -> u32 {
        match self {
            DataType::Float32 => 32,
            DataType::Fixed(spec) => spec.total_bits(),
        }
    }

    /// Flips bit `bit` (0 = least significant) of `value` under this datatype.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= self.bit_width()`.
    pub fn flip_bit(&self, value: f32, bit: u32) -> f32 {
        assert!(
            bit < self.bit_width(),
            "bit {bit} out of range for {self} ({} bits)",
            self.bit_width()
        );
        match self {
            DataType::Float32 => f32::from_bits(value.to_bits() ^ (1u32 << bit)),
            DataType::Fixed(spec) => spec.flip_bit(value, bit),
        }
    }

    /// Flips several distinct bits of `value` under this datatype.
    ///
    /// Duplicate bit positions cancel out, matching the physics of independent bit flips.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range for the datatype.
    pub fn flip_bits(&self, value: f32, bits: &[u32]) -> f32 {
        bits.iter().fold(value, |v, &b| self.flip_bit(v, b))
    }

    /// Quantizes `value` to this datatype's representable grid (identity for `Float32`).
    pub fn quantize(&self, value: f32) -> f32 {
        match self {
            DataType::Float32 => value,
            DataType::Fixed(spec) => spec.quantize(value),
        }
    }
}

impl Default for DataType {
    fn default() -> Self {
        DataType::fixed32()
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Float32 => write!(f, "float32"),
            DataType::Fixed(spec) => write!(f, "fixed-{}", spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float32_flip_uses_ieee_bits() {
        let dt = DataType::Float32;
        // Flipping the sign bit (bit 31) of 1.0 yields -1.0.
        assert_eq!(dt.flip_bit(1.0, 31), -1.0);
        // Flipping the exponent MSB of 1.0 causes a huge deviation.
        assert!(dt.flip_bit(1.0, 30).abs() > 1.0e30);
    }

    #[test]
    fn fixed_flip_delegates_to_spec() {
        let dt = DataType::fixed16();
        let spec = FixedSpec::q16();
        assert_eq!(dt.flip_bit(5.0, 3), spec.flip_bit(5.0, 3));
    }

    #[test]
    fn flip_bits_is_order_independent_and_cancels_duplicates() {
        let dt = DataType::fixed32();
        let v = 42.5f32;
        let a = dt.flip_bits(v, &[3, 17]);
        let b = dt.flip_bits(v, &[17, 3]);
        assert_eq!(a, b);
        assert_eq!(dt.flip_bits(v, &[9, 9]), dt.quantize(v));
    }

    #[test]
    fn default_is_fixed32() {
        assert_eq!(DataType::default(), DataType::fixed32());
        assert_eq!(DataType::default().bit_width(), 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_panics_out_of_range() {
        DataType::fixed16().flip_bit(1.0, 40);
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Float32.to_string(), "float32");
        assert_eq!(DataType::fixed16().to_string(), "fixed-Q14.2");
    }
}
