//! Deterministic weight initializers.
//!
//! Model weights in the reproduction are trained from scratch, so the initializers matter
//! for reproducibility: every initializer takes an explicit RNG so experiments can be
//! replayed from a seed.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Samples a standard normal value using the Box–Muller transform.
///
/// `rand` 0.8 without `rand_distr` does not expose a normal distribution, so we derive one
/// from two uniform samples.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Fills a tensor with samples from a normal distribution with the given mean and standard
/// deviation.
pub fn normal<R: Rng + ?Sized>(dims: impl Into<Shape>, mean: f32, std: f32, rng: &mut R) -> Tensor {
    let shape = dims.into();
    let n = shape.num_elements();
    let data = (0..n)
        .map(|_| mean + std * sample_standard_normal(rng))
        .collect();
    Tensor::from_vec(shape, data).expect("shape/data length match by construction")
}

/// Fills a tensor with samples from `U(lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(dims: impl Into<Shape>, lo: f32, hi: f32, rng: &mut R) -> Tensor {
    let shape = dims.into();
    let n = shape.num_elements();
    let dist = Uniform::new(lo, hi);
    let data = (0..n).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(shape, data).expect("shape/data length match by construction")
}

/// He (Kaiming) normal initialization for layers followed by ReLU activations.
///
/// `fan_in` is the number of input connections feeding each output unit.
pub fn he_normal<R: Rng + ?Sized>(dims: impl Into<Shape>, fan_in: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal(dims, 0.0, std, rng)
}

/// Xavier (Glorot) uniform initialization for layers followed by saturating activations
/// such as Tanh.
pub fn xavier_uniform<R: Rng + ?Sized>(
    dims: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(dims, -limit, limit, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_has_requested_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal(vec![10_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std was {}", var.sqrt());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = uniform(vec![1000], -0.5, 0.5, &mut rng);
        assert!(t.max() <= 0.5 && t.min() >= -0.5);
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(11);
        let wide = he_normal(vec![10_000], 1000, &mut rng);
        let narrow = he_normal(vec![10_000], 10, &mut rng);
        let std = |t: &Tensor| {
            let m = t.mean();
            (t.data().iter().map(|x| (x - m) * (x - m)).sum::<f32>() / t.len() as f32).sqrt()
        };
        assert!(std(&wide) < std(&narrow));
    }

    #[test]
    fn initializers_are_deterministic_for_a_seed() {
        let a = he_normal(vec![64], 32, &mut StdRng::seed_from_u64(5));
        let b = he_normal(vec![64], 32, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn xavier_uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(vec![1000], 100, 100, &mut rng);
        let limit = (6.0f32 / 200.0).sqrt();
        assert!(t.max() <= limit && t.min() >= -limit);
    }
}
