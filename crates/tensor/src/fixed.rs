//! Two's-complement fixed-point codecs.
//!
//! The paper evaluates the DNNs with a 32-bit fixed-point datatype (RQ1–RQ3) and a 16-bit
//! fixed-point datatype with 14 integer bits and 2 fractional bits (RQ4). This module
//! implements the encode/decode that the fault injector uses to flip bits in the same
//! representation the paper's hardware would have carried.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A two's-complement fixed-point format with `total_bits` bits, of which `frac_bits` are
/// fractional. The remaining high-order bits hold the signed integer part (sign included in
/// the two's-complement representation).
///
/// # Example
///
/// ```
/// use ranger_tensor::FixedSpec;
///
/// let q = FixedSpec::new(16, 2);
/// let bits = q.encode(3.25);
/// assert_eq!(q.decode(bits), 3.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedSpec {
    total_bits: u32,
    frac_bits: u32,
}

impl FixedSpec {
    /// Creates a fixed-point format.
    ///
    /// # Panics
    ///
    /// Panics if `total_bits` is 0 or greater than 64, or if `frac_bits >= total_bits`.
    pub fn new(total_bits: u32, frac_bits: u32) -> Self {
        assert!(
            total_bits > 0 && total_bits <= 64,
            "total_bits must be in 1..=64, got {total_bits}"
        );
        assert!(
            frac_bits < total_bits,
            "frac_bits ({frac_bits}) must be smaller than total_bits ({total_bits})"
        );
        FixedSpec {
            total_bits,
            frac_bits,
        }
    }

    /// The 32-bit fixed-point format used for RQ1–RQ3 (23 integer bits, 8 fractional bits,
    /// sign carried by two's complement).
    pub fn q32() -> Self {
        FixedSpec::new(32, 8)
    }

    /// The 16-bit fixed-point format used for RQ4: 14 integer bits and 2 fractional bits.
    pub fn q16() -> Self {
        FixedSpec::new(16, 2)
    }

    /// Total number of bits in the representation.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Smallest representable increment.
    pub fn resolution(&self) -> f64 {
        1.0 / (1u64 << self.frac_bits) as f64
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        let max_raw = (1i128 << (self.total_bits - 1)) - 1;
        max_raw as f64 * self.resolution()
    }

    /// Most negative representable value.
    pub fn min_value(&self) -> f64 {
        let min_raw = -(1i128 << (self.total_bits - 1));
        min_raw as f64 * self.resolution()
    }

    /// Encodes an `f32` value into the raw two's-complement bit pattern (stored in the low
    /// `total_bits` bits of the returned `u64`), saturating at the representable range.
    pub fn encode(&self, value: f32) -> u64 {
        let scaled = (value as f64 / self.resolution()).round();
        let max_raw = ((1i128 << (self.total_bits - 1)) - 1) as f64;
        let min_raw = (-(1i128 << (self.total_bits - 1))) as f64;
        let clamped = scaled.clamp(min_raw, max_raw);
        let raw = clamped as i64;
        (raw as u64) & self.mask()
    }

    /// Decodes a raw two's-complement bit pattern back into an `f32` value.
    pub fn decode(&self, bits: u64) -> f32 {
        let bits = bits & self.mask();
        let sign_bit = 1u64 << (self.total_bits - 1);
        let raw = if bits & sign_bit != 0 {
            // Sign-extend the two's-complement value.
            (bits | !self.mask()) as i64
        } else {
            bits as i64
        };
        (raw as f64 * self.resolution()) as f32
    }

    /// Returns the quantization of `value` under this format (encode followed by decode).
    pub fn quantize(&self, value: f32) -> f32 {
        self.decode(self.encode(value))
    }

    /// Returns a mask selecting the low `total_bits` bits.
    pub fn mask(&self) -> u64 {
        if self.total_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.total_bits) - 1
        }
    }

    /// Flips bit `bit` (0 = least significant) of the fixed-point representation of `value`
    /// and returns the decoded result.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= total_bits`.
    pub fn flip_bit(&self, value: f32, bit: u32) -> f32 {
        assert!(
            bit < self.total_bits,
            "bit {bit} out of range for {} bit format",
            self.total_bits
        );
        let encoded = self.encode(value);
        self.decode(encoded ^ (1u64 << bit))
    }
}

impl fmt::Display for FixedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Q{}.{}",
            self.total_bits - self.frac_bits,
            self.frac_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q16_round_trips_exact_values() {
        let q = FixedSpec::q16();
        for v in [-3.0f32, -0.5, 0.0, 0.25, 1.75, 100.0, 8191.75] {
            assert_eq!(
                q.quantize(v),
                v,
                "value {v} should be exactly representable"
            );
        }
    }

    #[test]
    fn q32_round_trip_error_bounded_by_resolution() {
        let q = FixedSpec::q32();
        for v in [-1234.567f32, 0.1, 3.146, 99999.5, -0.0039] {
            let back = q.quantize(v);
            assert!(
                (back - v).abs() as f64 <= q.resolution(),
                "round trip of {v} produced {back}"
            );
        }
    }

    #[test]
    fn saturation_at_extremes() {
        let q = FixedSpec::q16();
        assert_eq!(q.quantize(1.0e9) as f64, q.max_value());
        assert_eq!(q.quantize(-1.0e9) as f64, q.min_value());
    }

    #[test]
    fn negative_values_use_twos_complement() {
        let q = FixedSpec::new(8, 0);
        assert_eq!(q.encode(-1.0), 0xFF);
        assert_eq!(q.decode(0xFF), -1.0);
        assert_eq!(q.decode(0x80), -128.0);
    }

    #[test]
    fn high_order_bit_flip_causes_large_deviation() {
        let q = FixedSpec::q32();
        let original = 2.0f32;
        let corrupted = q.flip_bit(original, q.total_bits() - 2);
        assert!(
            (corrupted - original).abs() > 1.0e6,
            "flipping a high-order bit should produce a large deviation, got {corrupted}"
        );
    }

    #[test]
    fn low_order_bit_flip_causes_small_deviation() {
        let q = FixedSpec::q32();
        let original = 2.0f32;
        let corrupted = q.flip_bit(original, 0);
        assert!(((corrupted - original).abs() as f64 - q.resolution()).abs() < 1e-9);
    }

    #[test]
    fn flip_bit_is_an_involution_for_representable_values() {
        let q = FixedSpec::q16();
        let v = 12.25f32;
        for bit in 0..q.total_bits() {
            let once = q.flip_bit(v, bit);
            let twice = q.flip_bit(once, bit);
            assert_eq!(twice, v, "double flip of bit {bit} must restore the value");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_rejects_out_of_range_bit() {
        FixedSpec::q16().flip_bit(1.0, 16);
    }

    #[test]
    fn display_shows_q_notation() {
        assert_eq!(FixedSpec::q16().to_string(), "Q14.2");
        assert_eq!(FixedSpec::q32().to_string(), "Q24.8");
    }

    #[test]
    fn resolution_and_range() {
        let q = FixedSpec::q16();
        assert_eq!(q.resolution(), 0.25);
        assert_eq!(q.max_value(), 8191.75);
        assert_eq!(q.min_value(), -8192.0);
    }
}
