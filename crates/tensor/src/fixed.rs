//! Two's-complement fixed-point codecs.
//!
//! The paper evaluates the DNNs with a 32-bit fixed-point datatype (RQ1–RQ3) and a 16-bit
//! fixed-point datatype with 14 integer bits and 2 fractional bits (RQ4). This module
//! implements the encode/decode that the fault injector uses to flip bits in the same
//! representation the paper's hardware would have carried.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A two's-complement fixed-point format with `total_bits` bits, of which `frac_bits` are
/// fractional. The remaining high-order bits hold the signed integer part (sign included in
/// the two's-complement representation).
///
/// # Example
///
/// ```
/// use ranger_tensor::FixedSpec;
///
/// let q = FixedSpec::new(16, 2);
/// let bits = q.encode(3.25);
/// assert_eq!(q.decode(bits), 3.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedSpec {
    total_bits: u32,
    frac_bits: u32,
}

impl FixedSpec {
    /// Creates a fixed-point format.
    ///
    /// # Panics
    ///
    /// Panics if `total_bits` is 0 or greater than 64, or if `frac_bits >= total_bits`.
    pub fn new(total_bits: u32, frac_bits: u32) -> Self {
        assert!(
            total_bits > 0 && total_bits <= 64,
            "total_bits must be in 1..=64, got {total_bits}"
        );
        assert!(
            frac_bits < total_bits,
            "frac_bits ({frac_bits}) must be smaller than total_bits ({total_bits})"
        );
        FixedSpec {
            total_bits,
            frac_bits,
        }
    }

    /// The 32-bit fixed-point format used for RQ1–RQ3 (23 integer bits, 8 fractional bits,
    /// sign carried by two's complement).
    ///
    /// `const` so execution backends can be instantiated in statics.
    pub const fn q32() -> Self {
        FixedSpec {
            total_bits: 32,
            frac_bits: 8,
        }
    }

    /// The 16-bit fixed-point format used for RQ4: 14 integer bits and 2 fractional bits.
    ///
    /// `const` so execution backends can be instantiated in statics.
    pub const fn q16() -> Self {
        FixedSpec {
            total_bits: 16,
            frac_bits: 2,
        }
    }

    /// Total number of bits in the representation.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Smallest representable increment.
    pub fn resolution(&self) -> f64 {
        1.0 / (1u64 << self.frac_bits) as f64
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        let max_raw = (1i128 << (self.total_bits - 1)) - 1;
        max_raw as f64 * self.resolution()
    }

    /// Most negative representable value.
    pub fn min_value(&self) -> f64 {
        let min_raw = -(1i128 << (self.total_bits - 1));
        min_raw as f64 * self.resolution()
    }

    /// Encodes an `f32` value into the raw two's-complement bit pattern (stored in the low
    /// `total_bits` bits of the returned `u64`), saturating at the representable range.
    pub fn encode(&self, value: f32) -> u64 {
        let scaled = (value as f64 / self.resolution()).round();
        let max_raw = ((1i128 << (self.total_bits - 1)) - 1) as f64;
        let min_raw = (-(1i128 << (self.total_bits - 1))) as f64;
        let clamped = scaled.clamp(min_raw, max_raw);
        let raw = clamped as i64;
        (raw as u64) & self.mask()
    }

    /// Decodes a raw two's-complement bit pattern back into an `f32` value.
    pub fn decode(&self, bits: u64) -> f32 {
        let bits = bits & self.mask();
        let sign_bit = 1u64 << (self.total_bits - 1);
        let raw = if bits & sign_bit != 0 {
            // Sign-extend the two's-complement value.
            (bits | !self.mask()) as i64
        } else {
            bits as i64
        };
        (raw as f64 * self.resolution()) as f32
    }

    /// Returns the quantization of `value` under this format (encode followed by decode).
    pub fn quantize(&self, value: f32) -> f32 {
        self.decode(self.encode(value))
    }

    /// Returns a mask selecting the low `total_bits` bits.
    pub fn mask(&self) -> u64 {
        if self.total_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.total_bits) - 1
        }
    }

    /// Flips bit `bit` (0 = least significant) of the fixed-point representation of `value`
    /// and returns the decoded result.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= total_bits`.
    pub fn flip_bit(&self, value: f32, bit: u32) -> f32 {
        assert!(
            bit < self.total_bits,
            "bit {bit} out of range for {} bit format",
            self.total_bits
        );
        let encoded = self.encode(value);
        self.decode(encoded ^ (1u64 << bit))
    }

    // ---- Raw (signed word) arithmetic -----------------------------------------------
    //
    // The fixed-point execution backend stores every value as its signed integer word
    // (`value = word * resolution`) and computes on the words directly. The helpers below
    // pin the backend's numeric contract:
    //
    // * **Rounding** is round-to-nearest, ties away from zero — the same rule
    //   [`FixedSpec::encode`] applies (it rounds via `f64::round`), so quantizing a value
    //   and computing on words agree about which grid point a result lands on.
    // * **Saturation** clamps to `[min_raw, max_raw]`; overflow never wraps. This is the
    //   behaviour of a saturating hardware MAC, and it is what keeps a single flipped
    //   high-order bit from aliasing back into range through wrap-around.
    //
    // These semantics are frozen by unit tests below and proptests in
    // `tests/proptests.rs`; backend kernels must not reimplement them ad hoc.

    /// Largest representable signed word.
    pub fn max_raw(&self) -> i64 {
        ((1i128 << (self.total_bits - 1)) - 1) as i64
    }

    /// Most negative representable signed word.
    pub fn min_raw(&self) -> i64 {
        (-(1i128 << (self.total_bits - 1))) as i64
    }

    /// Saturates a wide intermediate onto the representable word range.
    pub fn saturate_raw(&self, wide: i128) -> i64 {
        wide.clamp(self.min_raw() as i128, self.max_raw() as i128) as i64
    }

    /// Encodes an `f32` value as a signed word: round to nearest (ties away from zero),
    /// then saturate. This is [`FixedSpec::encode`] without the two's-complement bit
    /// packing — `raw_encode(v) as u64 & mask == encode(v)` for every value.
    ///
    /// Non-finite inputs follow the same saturating cast as `encode`: infinities saturate
    /// at the range ends, NaN maps to 0.
    ///
    /// # Example
    ///
    /// Q14.2 has resolution 0.25 (`value = word * 0.25`); rounding is to nearest with
    /// ties away from zero, and out-of-range values saturate:
    ///
    /// ```
    /// let q = ranger_tensor::FixedSpec::q16();
    /// assert_eq!(q.raw_encode(1.5), 6);       // exactly on the grid
    /// assert_eq!(q.raw_encode(0.1), 0);       // nearest grid point is 0.0
    /// assert_eq!(q.raw_encode(0.125), 1);     // tie rounds away from zero
    /// assert_eq!(q.raw_encode(-0.125), -1);   //   ... in both directions
    /// assert_eq!(q.raw_encode(1.0e9), q.max_raw()); // saturates, never wraps
    /// ```
    pub fn raw_encode(&self, value: f32) -> i64 {
        let scaled = (value as f64 / self.resolution()).round();
        let clamped = scaled.clamp(self.min_raw() as f64, self.max_raw() as f64);
        clamped as i64
    }

    /// Decodes a signed word back into an `f32` value (`word * resolution`).
    ///
    /// # Example
    ///
    /// Decoding is exact for every word a format can hold, so encode → decode lands on
    /// the nearest grid point:
    ///
    /// ```
    /// let q = ranger_tensor::FixedSpec::q16();
    /// assert_eq!(q.raw_decode(6), 1.5);
    /// assert_eq!(q.raw_decode(-1), -0.25);
    /// assert_eq!(q.raw_decode(q.raw_encode(3.1)), 3.0); // snapped onto the 0.25 grid
    /// ```
    pub fn raw_decode(&self, raw: i64) -> f32 {
        (raw as f64 * self.resolution()) as f32
    }

    /// Rescales a wide product carrying `2 * frac_bits` fractional bits back to
    /// `frac_bits`: shift right by `frac_bits` with round-to-nearest (ties away from
    /// zero), then saturate. This is the "rescale between layers" step of every
    /// fixed-point multiply: `rescale(a * b)` is the Q-format product of words `a`, `b`.
    ///
    /// # Example
    ///
    /// In Q14.2 the words 6 and 8 are 1.5 and 2.0; their integer product 48 carries four
    /// fractional bits, and one rescale brings it back to the word 12 = 3.0. A dot
    /// product applies exactly one rescale to the whole wide accumulation:
    ///
    /// ```
    /// let q = ranger_tensor::FixedSpec::q16();
    /// assert_eq!(q.rescale(6 * 8), 12);          // 1.5 * 2.0 = 3.0, exact
    /// assert_eq!(q.rescale(2), 1);               // 0.125 tie rounds away from zero
    /// assert_eq!(q.rescale(6 * 8 + 6 * 8), 24);  // accumulate wide, rescale once
    /// assert_eq!(q.rescale(i128::from(q.max_raw()).pow(2)), q.max_raw()); // saturates
    /// ```
    pub fn rescale(&self, wide: i128) -> i64 {
        let shift = self.frac_bits;
        if shift == 0 {
            return self.saturate_raw(wide);
        }
        let half = 1i128 << (shift - 1);
        let rounded = if wide >= 0 {
            (wide + half) >> shift
        } else {
            -((-wide + half) >> shift)
        };
        self.saturate_raw(rounded)
    }

    /// Divides a wide accumulator by a positive divisor with round-to-nearest (ties away
    /// from zero), then saturates — the averaging primitive of the fixed-point pooling
    /// kernels.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is not positive.
    pub fn div_round(&self, wide: i128, divisor: i128) -> i64 {
        assert!(divisor > 0, "div_round requires a positive divisor");
        let half = divisor / 2;
        let rounded = if wide >= 0 {
            (wide + half) / divisor
        } else {
            -((-wide + half) / divisor)
        };
        self.saturate_raw(rounded)
    }

    /// The largest number of word-by-word products that can provably be accumulated in a
    /// plain `i64` without overflow — the **static overflow guard** of the integer
    /// kernels' i64 fast path.
    ///
    /// Derivation: every in-format word `w` satisfies `|w| <= 2^(total_bits - 1)`
    /// (the magnitude of `min_raw`), so every product of two words satisfies
    /// `|a * b| <= 2^(2 * (total_bits - 1))`. Summing `n` such products stays within
    /// `n * 2^(2 * (total_bits - 1))`, which fits an `i64` whenever
    /// `n <= (2^63 - 1) >> (2 * (total_bits - 1))` — the value returned here. A kernel
    /// whose dot-product length (matmul inner dimension, conv receptive-field size) is
    /// within this bound may accumulate in `i64`; longer dot products must fall back to
    /// the wide `i128` accumulator. Both paths compute the **same exact integer sum**,
    /// so the choice is invisible in the results (pinned by proptest).
    ///
    /// # Example
    ///
    /// ```
    /// use ranger_tensor::FixedSpec;
    ///
    /// // Q14.2: products fit 30 bits, so billions of terms are safe — every real
    /// // network layer takes the i64 path.
    /// assert_eq!(FixedSpec::q16().max_i64_mac_terms(), (1 << 33) - 1);
    /// // Q24.8: one product already spans 62 bits, so only trivial dot products can
    /// // prove the bound — Q24.8 kernels accumulate in i128.
    /// assert_eq!(FixedSpec::q32().max_i64_mac_terms(), 1);
    /// ```
    pub fn max_i64_mac_terms(&self) -> u64 {
        (i64::MAX as u64) >> (2 * (self.total_bits - 1)).min(63)
    }

    /// Flips bit `bit` of a signed word's two's-complement representation and returns the
    /// sign-extended result. Any bit pattern of the format is a valid word, so no
    /// saturation applies — this is the fault injector's direct-word corruption.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= total_bits`.
    pub fn flip_raw(&self, raw: i64, bit: u32) -> i64 {
        assert!(
            bit < self.total_bits,
            "bit {bit} out of range for {} bit format",
            self.total_bits
        );
        let bits = (raw as u64 ^ (1u64 << bit)) & self.mask();
        let sign_bit = 1u64 << (self.total_bits - 1);
        if bits & sign_bit != 0 {
            (bits | !self.mask()) as i64
        } else {
            bits as i64
        }
    }
}

impl fmt::Display for FixedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Q{}.{}",
            self.total_bits - self.frac_bits,
            self.frac_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q16_round_trips_exact_values() {
        let q = FixedSpec::q16();
        for v in [-3.0f32, -0.5, 0.0, 0.25, 1.75, 100.0, 8191.75] {
            assert_eq!(
                q.quantize(v),
                v,
                "value {v} should be exactly representable"
            );
        }
    }

    #[test]
    fn q32_round_trip_error_bounded_by_resolution() {
        let q = FixedSpec::q32();
        for v in [-1234.567f32, 0.1, 3.146, 99999.5, -0.0039] {
            let back = q.quantize(v);
            assert!(
                (back - v).abs() as f64 <= q.resolution(),
                "round trip of {v} produced {back}"
            );
        }
    }

    #[test]
    fn saturation_at_extremes() {
        let q = FixedSpec::q16();
        assert_eq!(q.quantize(1.0e9) as f64, q.max_value());
        assert_eq!(q.quantize(-1.0e9) as f64, q.min_value());
    }

    #[test]
    fn negative_values_use_twos_complement() {
        let q = FixedSpec::new(8, 0);
        assert_eq!(q.encode(-1.0), 0xFF);
        assert_eq!(q.decode(0xFF), -1.0);
        assert_eq!(q.decode(0x80), -128.0);
    }

    #[test]
    fn high_order_bit_flip_causes_large_deviation() {
        let q = FixedSpec::q32();
        let original = 2.0f32;
        let corrupted = q.flip_bit(original, q.total_bits() - 2);
        assert!(
            (corrupted - original).abs() > 1.0e6,
            "flipping a high-order bit should produce a large deviation, got {corrupted}"
        );
    }

    #[test]
    fn low_order_bit_flip_causes_small_deviation() {
        let q = FixedSpec::q32();
        let original = 2.0f32;
        let corrupted = q.flip_bit(original, 0);
        assert!(((corrupted - original).abs() as f64 - q.resolution()).abs() < 1e-9);
    }

    #[test]
    fn flip_bit_is_an_involution_for_representable_values() {
        let q = FixedSpec::q16();
        let v = 12.25f32;
        for bit in 0..q.total_bits() {
            let once = q.flip_bit(v, bit);
            let twice = q.flip_bit(once, bit);
            assert_eq!(twice, v, "double flip of bit {bit} must restore the value");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_rejects_out_of_range_bit() {
        FixedSpec::q16().flip_bit(1.0, 16);
    }

    #[test]
    fn display_shows_q_notation() {
        assert_eq!(FixedSpec::q16().to_string(), "Q14.2");
        assert_eq!(FixedSpec::q32().to_string(), "Q24.8");
    }

    #[test]
    fn resolution_and_range() {
        let q = FixedSpec::q16();
        assert_eq!(q.resolution(), 0.25);
        assert_eq!(q.max_value(), 8191.75);
        assert_eq!(q.min_value(), -8192.0);
    }

    // ---- Frozen raw-word semantics (the fixed-point backend's numeric contract) -----

    #[test]
    fn raw_encode_matches_encode_bit_patterns() {
        for q in [FixedSpec::q16(), FixedSpec::q32(), FixedSpec::new(8, 3)] {
            for v in [
                -8192.0f32,
                -3.17,
                -0.13,
                0.0,
                0.125,
                0.374,
                1.0,
                8191.75,
                1.0e9,
                -1.0e9,
                f32::INFINITY,
                f32::NEG_INFINITY,
            ] {
                assert_eq!(
                    (q.raw_encode(v) as u64) & q.mask(),
                    q.encode(v),
                    "raw_encode and encode must agree on {v} under {q}"
                );
                assert_eq!(
                    q.raw_decode(q.raw_encode(v)),
                    q.quantize(v),
                    "{v} under {q}"
                );
            }
            assert_eq!(q.raw_encode(f32::NAN), 0);
        }
    }

    #[test]
    fn rounding_is_to_nearest_ties_away_from_zero() {
        let q = FixedSpec::q16(); // resolution 0.25
                                  // 0.124 rounds down, 0.126 rounds up, the 0.125 tie rounds away from zero.
        assert_eq!(q.raw_encode(0.124), 0);
        assert_eq!(q.raw_encode(0.126), 1);
        assert_eq!(q.raw_encode(0.125), 1);
        assert_eq!(q.raw_encode(-0.125), -1);
        assert_eq!(q.raw_encode(-0.374), -1);
        assert_eq!(q.raw_encode(-0.376), -2);
    }

    #[test]
    fn rescale_rounds_products_like_encode_rounds_values() {
        let q = FixedSpec::q16(); // frac_bits 2: products carry 4 fractional bits
                                  // 0.25 * 0.25 = 0.0625 = wide word 1; rescaling to 2 fractional bits rounds the
                                  // 0.25-tie away from zero exactly as raw_encode(0.0625 * 4 grid) would.
        assert_eq!(q.rescale(1), 0); // 0.0625 -> 0.0
        assert_eq!(q.rescale(2), 1); // 0.125 tie -> 0.25
        assert_eq!(q.rescale(-2), -1); // -0.125 tie -> -0.25
        assert_eq!(q.rescale(3), 1); // 0.1875 -> 0.25
        assert_eq!(q.rescale(6), 2); // 0.375 tie -> 0.5
                                     // A product of exact words is exact: 1.5 * 2.0 (words 6 and 8) = 3.0 (word 12).
        assert_eq!(q.rescale(6 * 8), 12);
    }

    #[test]
    fn saturation_never_wraps() {
        let q16 = FixedSpec::q16();
        assert_eq!(q16.max_raw(), 32767);
        assert_eq!(q16.min_raw(), -32768);
        assert_eq!(q16.saturate_raw(40000), 32767);
        assert_eq!(q16.saturate_raw(-40000), -32768);
        // A rescaled product beyond the range saturates instead of wrapping: the Q14.2
        // square of 8191.75 (word 32767) rescales to word 2^28-ish, far past max_raw.
        assert_eq!(q16.rescale(32767i128 * 32767), 32767);
        assert_eq!(q16.rescale(-32767i128 * 32767), -32768);
        let q32 = FixedSpec::q32();
        assert_eq!(q32.max_raw(), i32::MAX as i64);
        assert_eq!(q32.min_raw(), i32::MIN as i64);
        assert_eq!(q32.saturate_raw(1i128 << 40), i32::MAX as i64);
    }

    #[test]
    fn div_round_averages_with_ties_away_from_zero() {
        let q = FixedSpec::q16();
        assert_eq!(q.div_round(10, 4), 3); // 2.5 tie -> 3
        assert_eq!(q.div_round(-10, 4), -3);
        assert_eq!(q.div_round(9, 4), 2); // 2.25 -> 2
        assert_eq!(q.div_round(11, 4), 3); // 2.75 -> 3
    }

    #[test]
    #[should_panic(expected = "positive divisor")]
    fn div_round_rejects_zero_divisor() {
        FixedSpec::q16().div_round(1, 0);
    }

    /// The i64 fast-path guard is conservative: at the bound, the worst-case
    /// accumulation (all products at maximum magnitude) still fits an i64.
    #[test]
    fn i64_mac_guard_is_safe_at_the_bound() {
        for q in [FixedSpec::q16(), FixedSpec::q32(), FixedSpec::new(8, 3)] {
            let n = q.max_i64_mac_terms();
            let max_product = 1i128 << (2 * (q.total_bits() - 1));
            assert!(
                n as i128 * max_product <= i64::MAX as i128,
                "{q}: {n} worst-case products must fit an i64"
            );
            assert!(
                (n as i128 + 1) * max_product > i64::MAX as i128,
                "{q}: the guard should be tight, not merely safe"
            );
        }
        // 64-bit formats can never prove the bound.
        assert_eq!(FixedSpec::new(64, 8).max_i64_mac_terms(), 0);
    }

    #[test]
    fn flip_raw_matches_float_flip_on_representable_values() {
        for q in [FixedSpec::q16(), FixedSpec::q32()] {
            let v = 12.25f32;
            let raw = q.raw_encode(v);
            for bit in 0..q.total_bits() {
                assert_eq!(
                    q.raw_decode(q.flip_raw(raw, bit)),
                    q.flip_bit(v, bit),
                    "bit {bit} under {q}"
                );
                // Double flip restores the word exactly.
                assert_eq!(q.flip_raw(q.flip_raw(raw, bit), bit), raw);
            }
        }
    }

    #[test]
    fn flip_raw_sign_extends() {
        let q = FixedSpec::new(8, 0);
        // Flipping the sign bit of +1 gives the word 0x81 = -127.
        assert_eq!(q.flip_raw(1, 7), -127);
        // Flipping it back restores +1.
        assert_eq!(q.flip_raw(-127, 7), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_raw_rejects_out_of_range_bit() {
        FixedSpec::q16().flip_raw(0, 16);
    }
}
