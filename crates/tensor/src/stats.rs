//! Statistics helpers for reporting experiment results.
//!
//! The paper reports SDC rates together with standard error bars at the 95% confidence
//! level; these helpers compute the same quantities.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of a slice (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (Bessel-corrected); 0.0 for fewer than two samples.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Standard error of the mean.
pub fn std_error(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        std_dev(values) / (values.len() as f64).sqrt()
    }
}

/// The `p`-th percentile (0–100) of a sample using linear interpolation between order
/// statistics, matching NumPy's default behaviour.
///
/// Returns 0.0 for an empty sample.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A proportion (e.g. an SDC rate) with its 95% confidence half-width.
///
/// The half-width uses the normal approximation to the binomial,
/// `1.96 * sqrt(p * (1 - p) / n)`, which is what the paper's error bars correspond to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Proportion {
    /// Number of successes (e.g. SDCs observed).
    pub successes: u64,
    /// Number of trials.
    pub trials: u64,
}

impl Proportion {
    /// Creates a proportion from raw counts.
    pub fn new(successes: u64, trials: u64) -> Self {
        Proportion { successes, trials }
    }

    /// The point estimate of the proportion (0.0 if there were no trials).
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The point estimate expressed as a percentage.
    pub fn rate_percent(&self) -> f64 {
        self.rate() * 100.0
    }

    /// The 95% confidence half-width of the proportion (normal approximation).
    pub fn confidence95(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let p = self.rate();
        1.96 * (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    /// The 95% confidence half-width expressed in percentage points.
    pub fn confidence95_percent(&self) -> f64 {
        self.confidence95() * 100.0
    }

    /// Merges two proportions measured over disjoint trial sets.
    pub fn merge(&self, other: &Proportion) -> Proportion {
        Proportion {
            successes: self.successes + other.successes,
            trials: self.trials + other.trials,
        }
    }
}

/// Root mean square error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "rmse requires equal-length slices"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let mse = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64;
    mse.sqrt()
}

/// Mean absolute deviation between predictions and targets (the paper's "average deviation
/// per frame" metric for the steering models).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_abs_deviation(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "mean_abs_deviation requires equal-length slices"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn proportion_rate_and_confidence() {
        let p = Proportion::new(20, 100);
        assert!((p.rate() - 0.2).abs() < 1e-12);
        assert!((p.rate_percent() - 20.0).abs() < 1e-12);
        let ci = p.confidence95();
        assert!((ci - 1.96 * (0.2f64 * 0.8 / 100.0).sqrt()).abs() < 1e-12);
        assert_eq!(Proportion::new(0, 0).rate(), 0.0);
        assert_eq!(Proportion::new(0, 0).confidence95(), 0.0);
    }

    #[test]
    fn proportion_merge_accumulates() {
        let merged = Proportion::new(3, 10).merge(&Proportion::new(7, 30));
        assert_eq!(merged.successes, 10);
        assert_eq!(merged.trials, 40);
        assert!((merged.rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rmse_and_mad_known_values() {
        let preds = [1.0, 2.0, 3.0];
        let targets = [1.0, 4.0, 1.0];
        assert!((rmse(&preds, &targets) - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mean_abs_deviation(&preds, &targets) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rmse_rejects_length_mismatch() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}
