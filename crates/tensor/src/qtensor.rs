//! Integer tensor storage and Q-format kernels for fixed-point inference.
//!
//! The reproduction's fixed-point execution backend stores every activation as its raw
//! fixed-point word (`value = word * resolution`) and computes on the words directly —
//! saturating integer multiply-accumulate with a single rescale per dot product, exactly
//! the arithmetic a Q16/Q32 datapath would perform. [`QTensor`] is that storage: a dense,
//! row-major tensor of signed words tagged with the [`FixedSpec`] they are expressed in.
//!
//! The numeric contract (rounding to nearest with ties away from zero, saturation instead
//! of wrap-around, wide accumulation with one rescale per dot product) lives in the raw
//! helpers on [`FixedSpec`] — see `fixed.rs` — and is pinned there by unit tests; the
//! kernels here only compose those primitives.

use crate::fixed::FixedSpec;
use crate::shape::Shape;
use crate::tensor::{Tensor, TensorError};

/// A dense, row-major tensor of raw fixed-point words.
///
/// Words are stored as `i64` so every [`FixedSpec`] up to 64 bits uses the same storage;
/// each word always lies within the spec's `[min_raw, max_raw]` range (kernels saturate,
/// and bit flips stay within the format by construction).
///
/// # Example
///
/// Quantize → dequantize round-trips values already on the grid exactly and snaps
/// everything else to the nearest grid point (ties away from zero):
///
/// ```
/// use ranger_tensor::{FixedSpec, QTensor, Tensor};
///
/// let t = Tensor::from_vec(vec![2], vec![1.5, -0.25])?;
/// let q = QTensor::from_tensor(FixedSpec::q16(), &t);
/// assert_eq!(q.words(), &[6, -1]); // resolution 0.25
/// assert_eq!(q.dequantize(), t);   // both values sit on the Q14.2 grid
///
/// let off_grid = Tensor::from_vec(vec![3], vec![0.3, 0.125, -1.9])?;
/// let q = QTensor::from_tensor(FixedSpec::q16(), &off_grid);
/// assert_eq!(q.dequantize().data(), &[0.25, 0.25, -2.0]); // snapped to the grid
/// # Ok::<(), ranger_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    shape: Shape,
    spec: FixedSpec,
    data: Vec<i64>,
}

impl QTensor {
    /// Creates an empty word tensor (shape `[0]`) in the given format — the canonical
    /// starting state of a recycled buffer.
    pub fn new(spec: FixedSpec) -> Self {
        QTensor {
            shape: Shape::new(vec![0]),
            spec,
            data: Vec::new(),
        }
    }

    /// Quantizes an `f32` tensor into a fresh word tensor.
    pub fn from_tensor(spec: FixedSpec, tensor: &Tensor) -> Self {
        let mut q = QTensor::new(spec);
        q.quantize_from(tensor);
        q
    }

    /// Creates an empty word tensor whose backing buffer can later hold a value of shape
    /// `dims` without reallocating — used to seed a plan's buffer arena from warmed
    /// shapes, mirroring [`Tensor::with_capacity_for`].
    pub fn with_capacity_for(spec: FixedSpec, dims: &[usize]) -> Self {
        QTensor {
            shape: Shape::new(vec![0]),
            spec,
            data: Vec::with_capacity(dims.iter().product()),
        }
    }

    /// The fixed-point format the words are expressed in.
    pub fn spec(&self) -> FixedSpec {
        self.spec
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The number of words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no words.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw words in row-major order.
    pub fn words(&self) -> &[i64] {
        &self.data
    }

    /// Mutable view of the raw words.
    pub fn words_mut(&mut self) -> &mut [i64] {
        &mut self.data
    }

    /// Re-quantizes this tensor from an `f32` tensor, reusing the backing allocation and
    /// switching the format to `self.spec` (encode: round to nearest, saturate).
    pub fn quantize_from(&mut self, tensor: &Tensor) {
        self.data.clear();
        self.data
            .extend(tensor.data().iter().map(|&v| self.spec.raw_encode(v)));
        self.shape.set_dims(tensor.dims());
    }

    /// Decodes every word into `out` (shape and contents of `out` are replaced; its
    /// allocation is reused).
    pub fn dequantize_into(&self, out: &mut Tensor) {
        out.reset_fill(self.dims(), 0.0);
        for (o, &w) in out.data_mut().iter_mut().zip(&self.data) {
            *o = self.spec.raw_decode(w);
        }
    }

    /// Decodes every word into a fresh `f32` tensor.
    pub fn dequantize(&self) -> Tensor {
        let mut out = Tensor::empty();
        self.dequantize_into(&mut out);
        out
    }

    /// Decodes the word at flat index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get_f32(&self, index: usize) -> f32 {
        self.spec.raw_decode(self.data[index])
    }

    /// Quantizes `value` into the word at flat index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_from_f32(&mut self, index: usize, value: f32) {
        self.data[index] = self.spec.raw_encode(value);
    }

    /// Flips bit `bit` of the word at flat index `index` — the fault injector's direct
    /// corruption of the stored integer representation (no encode→flip→decode round
    /// trip, so even values whose magnitude exceeds `f32` precision corrupt faithfully).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or `bit >= spec.total_bits()`.
    pub fn flip_word(&mut self, index: usize, bit: u32) {
        self.data[index] = self.spec.flip_raw(self.data[index], bit);
    }

    // ---- Buffer reuse ----------------------------------------------------------------

    /// Resets this tensor to shape `dims` in format `spec` with every word set to `raw`,
    /// reusing the backing allocation.
    pub fn reset_fill(&mut self, spec: FixedSpec, dims: &[usize], raw: i64) {
        let n: usize = dims.iter().product();
        self.spec = spec;
        self.data.clear();
        self.data.resize(n, raw);
        self.shape.set_dims(dims);
    }

    /// Resets this tensor to shape `dims` in format `spec` with words copied from
    /// `words`, reusing the backing allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts disagree; the
    /// tensor is left unchanged.
    pub fn reset_from_words(
        &mut self,
        spec: FixedSpec,
        dims: &[usize],
        words: &[i64],
    ) -> Result<(), TensorError> {
        let expected: usize = dims.iter().product();
        if expected != words.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: words.len(),
            });
        }
        self.spec = spec;
        self.data.clear();
        self.data.extend_from_slice(words);
        self.shape.set_dims(dims);
        Ok(())
    }

    /// Resets this tensor to shape `[lead, rest...]` with words copied from `words` — the
    /// batch-preserving reshape used by `Flatten` and `Reshape`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts disagree; the
    /// tensor is left unchanged.
    pub fn reset_rows_from_words(
        &mut self,
        spec: FixedSpec,
        lead: usize,
        rest: &[usize],
        words: &[i64],
    ) -> Result<(), TensorError> {
        let expected = lead * rest.iter().product::<usize>();
        if expected != words.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: words.len(),
            });
        }
        self.spec = spec;
        self.data.clear();
        self.data.extend_from_slice(words);
        self.shape.set_dims_with_lead(lead, rest);
        Ok(())
    }

    /// Appends the rows of `src` along the leading (batch) dimension, mirroring
    /// [`Tensor::push_rows`]: within reserved capacity the append reuses the backing
    /// allocation, so tiled execution can assemble a full-batch word tensor from
    /// row-group outputs without reallocating.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if either tensor is rank 0 or the trailing
    /// dimensions disagree; the tensor is left unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the operand formats differ.
    pub fn push_rows(&mut self, src: &QTensor) -> Result<(), TensorError> {
        assert_eq!(
            self.spec, src.spec,
            "push_rows operands must share a format"
        );
        let (d, s) = (self.dims(), src.dims());
        if d.is_empty() || s.is_empty() || d[1..] != s[1..] {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: src.shape.clone(),
            });
        }
        let lead = d[0] + s[0];
        self.data.extend_from_slice(&src.data);
        self.shape.set_lead(lead);
        Ok(())
    }

    // ---- Q-format kernels --------------------------------------------------------------

    /// Fixed-point matrix multiplication: `self (m, k) · other (k, n)`, accumulating each
    /// dot product in a wide integer (the products carry `2 * frac_bits` fractional bits)
    /// and applying a **single** rescale + saturation per output word — the behaviour of
    /// a saturating hardware MAC with a wide accumulator.
    ///
    /// The loops are row-blocked (`i, p, j` order, walking contiguous rows of both
    /// operands and the accumulator), and when the inner dimension `k` is within
    /// [`FixedSpec::max_i64_mac_terms`] the accumulation runs in plain `i64` instead of
    /// `i128`. Integer addition is exact and associative, so neither choice can change a
    /// single output word (pinned by proptest against the forced-wide path).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatMulMismatch`] if either operand is not rank 2 or the
    /// inner dimensions differ; `out` is left unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the operand formats differ.
    pub fn matmul_into(&self, other: &QTensor, out: &mut QTensor) -> Result<(), TensorError> {
        let (m, k, n) = self.matmul_dims(other)?;
        if k as u64 <= self.spec.max_i64_mac_terms() {
            self.matmul_acc::<i64>(other, out, m, k, n);
        } else {
            self.matmul_acc::<i128>(other, out, m, k, n);
        }
        Ok(())
    }

    /// [`QTensor::matmul_into`] forced onto the wide `i128` accumulator, bypassing the
    /// i64 fast-path guard. Test-only seam: the proptests pin that the guard's fast path
    /// is bit-for-bit equal to this reference.
    #[doc(hidden)]
    pub fn matmul_into_forced_wide(
        &self,
        other: &QTensor,
        out: &mut QTensor,
    ) -> Result<(), TensorError> {
        let (m, k, n) = self.matmul_dims(other)?;
        self.matmul_acc::<i128>(other, out, m, k, n);
        Ok(())
    }

    /// Validates matmul operands and returns `(m, k, n)`.
    fn matmul_dims(&self, other: &QTensor) -> Result<(usize, usize, usize), TensorError> {
        assert_eq!(self.spec, other.spec, "matmul operands must share a format");
        let (ls, rs) = (self.dims(), other.dims());
        if ls.len() != 2 || rs.len() != 2 || ls[1] != rs[0] {
            return Err(TensorError::MatMulMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok((ls[0], ls[1], rs[1]))
    }

    /// The blocked matmul loop nest over an explicit accumulator type: one accumulator
    /// row per output row (see [`MacAcc::acc_row`] — the output words themselves on the
    /// i64 fast path, so the hot path allocates nothing), filled in `(p, j)` order so
    /// the inner loop streams one contiguous row of `other`, then one rescale per output
    /// word. Skipping zero left-hand words costs one branch per `(i, p)` and wins big on
    /// post-ReLU activations (the sum is exact integers, so skipping zero terms changes
    /// nothing).
    fn matmul_acc<A: MacAcc>(
        &self,
        other: &QTensor,
        out: &mut QTensor,
        m: usize,
        k: usize,
        n: usize,
    ) {
        out.reset_fill(self.spec, &[m, n], 0);
        let odat = out.words_mut();
        let mut scratch: Vec<A> = Vec::new();
        for i in 0..m {
            let acc = A::acc_row(&mut odat[i * n..(i + 1) * n], &mut scratch);
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (s, &b) in acc.iter_mut().zip(b_row) {
                    *s = s.mac(a, b);
                }
            }
            A::write_back(self.spec, &scratch, &mut odat[i * n..(i + 1) * n]);
        }
    }

    /// Elementwise saturating addition (words share a scale, so no rescale is needed).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ; `out` is left
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the operand formats differ.
    pub fn saturating_add_into(
        &self,
        other: &QTensor,
        out: &mut QTensor,
    ) -> Result<(), TensorError> {
        assert_eq!(self.spec, other.spec, "add operands must share a format");
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        out.reset_fill(self.spec, self.dims(), 0);
        for (o, (&a, &b)) in out
            .words_mut()
            .iter_mut()
            .zip(self.data.iter().zip(&other.data))
        {
            *o = self.spec.saturate_raw(a as i128 + b as i128);
        }
        Ok(())
    }

    /// Elementwise saturating multiplication with one rescale per product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ; `out` is left
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the operand formats differ.
    pub fn saturating_mul_into(
        &self,
        other: &QTensor,
        out: &mut QTensor,
    ) -> Result<(), TensorError> {
        assert_eq!(self.spec, other.spec, "mul operands must share a format");
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        out.reset_fill(self.spec, self.dims(), 0);
        for (o, (&a, &b)) in out
            .words_mut()
            .iter_mut()
            .zip(self.data.iter().zip(&other.data))
        {
            *o = self.spec.rescale(a as i128 * b as i128);
        }
        Ok(())
    }

    /// Multiplies every word by the quantized scalar `factor` (one rescale per product).
    pub fn scalar_mul_into(&self, factor: f32, out: &mut QTensor) {
        let raw_factor = self.spec.raw_encode(factor) as i128;
        out.reset_fill(self.spec, self.dims(), 0);
        for (o, &a) in out.words_mut().iter_mut().zip(&self.data) {
            *o = self.spec.rescale(a as i128 * raw_factor);
        }
    }

    /// Clamps every word into the quantized `[lo, hi]` range (the Ranger
    /// range-restriction operator on the integer path: the bounds quantize to the grid
    /// first, then the comparison happens word-for-word).
    pub fn clamp_into(&self, lo: f32, hi: f32, out: &mut QTensor) {
        let lo = self.spec.raw_encode(lo);
        let hi = self.spec.raw_encode(hi);
        out.reset_fill(self.spec, self.dims(), 0);
        for (o, &a) in out.words_mut().iter_mut().zip(&self.data) {
            *o = a.clamp(lo, hi);
        }
    }

    /// Rectified linear unit on words: `max(word, 0)` (exact — zero is on every grid).
    pub fn relu_into(&self, out: &mut QTensor) {
        out.reset_fill(self.spec, self.dims(), 0);
        for (o, &a) in out.words_mut().iter_mut().zip(&self.data) {
            *o = a.max(0);
        }
    }

    /// Applies an `f32` function through the dequantize → apply → requantize bridge (the
    /// backend's stand-in for the lookup tables fixed-point hardware uses for
    /// transcendental activations).
    pub fn map_f32_into(&self, out: &mut QTensor, f: impl Fn(f32) -> f32) {
        out.reset_fill(self.spec, self.dims(), 0);
        for (o, &a) in out.words_mut().iter_mut().zip(&self.data) {
            *o = self.spec.raw_encode(f(self.spec.raw_decode(a)));
        }
    }
}

/// The accumulator of the integer MAC kernels: `i64` on the guarded fast path,
/// `i128` as the always-correct wide fallback. Both compute the **exact** integer sum of
/// word products — `i64` is only selected when [`FixedSpec::max_i64_mac_terms`] proves
/// the worst-case sum fits, so `mac` can never overflow on either implementation.
///
/// The `acc_row`/`write_back` pair lets the kernels stay allocation-free on the fast
/// path: i64 sums accumulate **in place in the output words** (an `i64` accumulator row
/// *is* an output row before its rescale), while i128 sums — which cannot fit an output
/// slot — go through a scratch row that is reused across the whole kernel call.
trait MacAcc: Copy {
    /// Adds the product `a * b` of two in-format words to the accumulator.
    fn mac(self, a: i64, b: i64) -> Self;
    /// Returns the zeroed accumulator row for one output row: the output words
    /// themselves for `i64`, the (resized, reused) `scratch` row for `i128`.
    fn acc_row<'a>(out_row: &'a mut [i64], scratch: &'a mut Vec<Self>) -> &'a mut [Self];
    /// Applies the single [`FixedSpec::rescale`] per dot product, writing the
    /// accumulated row into the output words (in place for `i64`, from `scratch` for
    /// `i128`).
    fn write_back(spec: FixedSpec, scratch: &[Self], out_row: &mut [i64]);
}

impl MacAcc for i64 {
    #[inline(always)]
    fn mac(self, a: i64, b: i64) -> Self {
        self + a * b
    }
    fn acc_row<'a>(out_row: &'a mut [i64], _scratch: &'a mut Vec<i64>) -> &'a mut [i64] {
        out_row.fill(0);
        out_row
    }
    fn write_back(spec: FixedSpec, _scratch: &[i64], out_row: &mut [i64]) {
        for o in out_row {
            *o = spec.rescale(*o as i128);
        }
    }
}

impl MacAcc for i128 {
    #[inline(always)]
    fn mac(self, a: i64, b: i64) -> Self {
        self + a as i128 * b as i128
    }
    fn acc_row<'a>(out_row: &'a mut [i64], scratch: &'a mut Vec<i128>) -> &'a mut [i128] {
        scratch.clear();
        scratch.resize(out_row.len(), 0);
        scratch
    }
    fn write_back(spec: FixedSpec, scratch: &[i128], out_row: &mut [i64]) {
        for (o, &s) in out_row.iter_mut().zip(scratch) {
            *o = spec.rescale(s);
        }
    }
}

/// The geometry of one 2-D convolution, precomputed by the caller (the graph layer owns
/// padding semantics; the kernel here only runs the saturating arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Batch size `N`.
    pub batch: usize,
    /// Input channels `Cin`.
    pub cin: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Output channels `Cout`.
    pub cout: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Leading padding in the height dimension.
    pub pad_h: usize,
    /// Leading padding in the width dimension.
    pub pad_w: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

/// Fixed-point 2-D convolution in NCHW layout: wide accumulation over the whole receptive
/// field, one rescale + saturation per output word (same MAC contract as
/// [`QTensor::matmul_into`]).
///
/// The loop nest is row-group blocked exactly like the f32 kernel (the innermost loop
/// walks one output row while reading one contiguous input row and one contiguous filter
/// row), with a per-row wide accumulator and the rescale deferred to the end of the
/// receptive field. When the receptive-field size `cin * kh * kw` is within
/// [`FixedSpec::max_i64_mac_terms`] the accumulators are plain `i64`; otherwise `i128`.
/// Integer sums are exact whatever the order or width, so both the interchange and the
/// accumulator choice are invisible in the output words (pinned by the naive-nest unit
/// test and the forced-wide proptest).
///
/// # Errors
///
/// Returns [`TensorError::ShapeDataMismatch`] if either operand's length disagrees with
/// the geometry; `out` is left unchanged.
///
/// # Panics
///
/// Panics if the operand formats differ.
pub fn q_conv2d_into(
    x: &QTensor,
    w: &QTensor,
    g: &ConvGeometry,
    out: &mut QTensor,
) -> Result<(), TensorError> {
    conv2d_check(x, w, g)?;
    if (g.cin * g.kh * g.kw) as u64 <= x.spec.max_i64_mac_terms() {
        conv2d_acc::<i64>(x, w, g, out);
    } else {
        conv2d_acc::<i128>(x, w, g, out);
    }
    Ok(())
}

/// [`q_conv2d_into`] forced onto the wide `i128` accumulator, bypassing the i64
/// fast-path guard. Test-only seam: the proptests pin that the guard's fast path is
/// bit-for-bit equal to this reference.
#[doc(hidden)]
pub fn q_conv2d_into_forced_wide(
    x: &QTensor,
    w: &QTensor,
    g: &ConvGeometry,
    out: &mut QTensor,
) -> Result<(), TensorError> {
    conv2d_check(x, w, g)?;
    conv2d_acc::<i128>(x, w, g, out);
    Ok(())
}

/// Validates conv operand lengths against the geometry.
fn conv2d_check(x: &QTensor, w: &QTensor, g: &ConvGeometry) -> Result<(), TensorError> {
    assert_eq!(x.spec, w.spec, "conv2d operands must share a format");
    let expected_x = g.batch * g.cin * g.height * g.width;
    if x.len() != expected_x {
        return Err(TensorError::ShapeDataMismatch {
            expected: expected_x,
            actual: x.len(),
        });
    }
    let expected_w = g.cout * g.cin * g.kh * g.kw;
    if w.len() != expected_w {
        return Err(TensorError::ShapeDataMismatch {
            expected: expected_w,
            actual: w.len(),
        });
    }
    Ok(())
}

/// The blocked conv loop nest over an explicit accumulator type (one accumulator row
/// per output row — see [`MacAcc::acc_row`]; the i64 fast path accumulates in place in
/// the output words and allocates nothing). The `(ox_min, ox_end)` bounds select the
/// output columns whose receptive field contains input column `ox * stride + kx - pad_w`
/// — columns entirely in the padding clamp to an empty range, mirroring the f32 kernel's
/// handling of kernels wider than the input.
fn conv2d_acc<A: MacAcc>(x: &QTensor, w: &QTensor, g: &ConvGeometry, out: &mut QTensor) {
    let spec = x.spec;
    let xdat = x.words();
    let wdat = w.words();
    out.reset_fill(spec, &[g.batch, g.cout, g.out_h, g.out_w], 0);
    let odat = out.words_mut();
    let mut scratch: Vec<A> = Vec::new();
    for b in 0..g.batch {
        for oc in 0..g.cout {
            for oy in 0..g.out_h {
                let row_start = ((b * g.cout + oc) * g.out_h + oy) * g.out_w;
                let acc = A::acc_row(&mut odat[row_start..row_start + g.out_w], &mut scratch);
                for ic in 0..g.cin {
                    for ky in 0..g.kh {
                        let iy = (oy * g.stride + ky) as isize - g.pad_h as isize;
                        if iy < 0 || iy >= g.height as isize {
                            continue;
                        }
                        let x_row = &xdat[((b * g.cin + ic) * g.height + iy as usize) * g.width..]
                            [..g.width];
                        let w_row = &wdat[((oc * g.cin + ic) * g.kh + ky) * g.kw..][..g.kw];
                        for (kx, &wv) in w_row.iter().enumerate() {
                            let kx_off = kx as isize - g.pad_w as isize;
                            let ox_min = if kx_off >= 0 {
                                0
                            } else {
                                g.out_w.min(((-kx_off) as usize).div_ceil(g.stride))
                            };
                            let ox_end = if g.width as isize <= kx_off {
                                0
                            } else {
                                g.out_w
                                    .min((g.width as isize - 1 - kx_off) as usize / g.stride + 1)
                            };
                            for (s, ox) in acc[ox_min..ox_end.max(ox_min)].iter_mut().zip(ox_min..)
                            {
                                let ix = (ox * g.stride) as isize + kx_off;
                                *s = s.mac(x_row[ix as usize], wv);
                            }
                        }
                    }
                }
                A::write_back(spec, &scratch, &mut odat[row_start..row_start + g.out_w]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_dequantize_round_trips_grid_values() {
        let t = Tensor::from_vec(vec![2, 2], vec![1.5, -0.25, 0.0, 100.75]).unwrap();
        let q = QTensor::from_tensor(FixedSpec::q16(), &t);
        assert_eq!(q.dims(), &[2, 2]);
        assert_eq!(q.dequantize(), t);
        let mut out = Tensor::empty();
        q.dequantize_into(&mut out);
        assert_eq!(out, t);
    }

    #[test]
    fn quantization_saturates_out_of_range_values() {
        let t = Tensor::from_vec(vec![2], vec![1.0e9, -1.0e9]).unwrap();
        let q = QTensor::from_tensor(FixedSpec::q16(), &t);
        assert_eq!(q.words(), &[32767, -32768]);
    }

    #[test]
    fn matmul_on_exact_words_matches_float() {
        // Integer-valued operands are exact in both domains.
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let qa = QTensor::from_tensor(FixedSpec::q16(), &a);
        let qb = QTensor::from_tensor(FixedSpec::q16(), &b);
        let mut qc = QTensor::new(FixedSpec::q16());
        qa.matmul_into(&qb, &mut qc).unwrap();
        assert_eq!(qc.dequantize(), a.matmul(&b).unwrap());
        // Shape errors leave out unchanged.
        let keep = qc.clone();
        assert!(qa.matmul_into(&qa, &mut qc).is_err());
        assert_eq!(qc, keep);
    }

    #[test]
    fn matmul_saturates_instead_of_wrapping() {
        let big = Tensor::filled(vec![1, 4], 8000.0);
        let q = FixedSpec::q16();
        let qa = QTensor::from_tensor(q, &big);
        let qb = QTensor::from_tensor(q, &Tensor::filled(vec![4, 1], 8000.0));
        let mut qc = QTensor::new(q);
        qa.matmul_into(&qb, &mut qc).unwrap();
        assert_eq!(qc.words(), &[q.max_raw()]);
    }

    #[test]
    fn elementwise_kernels_match_float_on_exact_words() {
        let a = Tensor::from_vec(vec![3], vec![1.5, -2.0, 3.25]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![0.5, 4.0, -1.0]).unwrap();
        let spec = FixedSpec::q16();
        let (qa, qb) = (
            QTensor::from_tensor(spec, &a),
            QTensor::from_tensor(spec, &b),
        );
        let mut out = QTensor::new(spec);
        qa.saturating_add_into(&qb, &mut out).unwrap();
        assert_eq!(out.dequantize(), a.add(&b).unwrap());
        qa.saturating_mul_into(&qb, &mut out).unwrap();
        assert_eq!(out.dequantize(), a.mul(&b).unwrap());
        qa.scalar_mul_into(2.0, &mut out);
        assert_eq!(out.dequantize(), a.scale(2.0));
        qa.relu_into(&mut out);
        assert_eq!(out.dequantize(), a.map(|v| v.max(0.0)));
        qa.clamp_into(0.0, 2.0, &mut out);
        assert_eq!(out.dequantize(), a.clamp(0.0, 2.0));
        // Mismatched shapes are rejected.
        let c = QTensor::from_tensor(spec, &Tensor::zeros(vec![2]));
        assert!(qa.saturating_add_into(&c, &mut out).is_err());
        assert!(qa.saturating_mul_into(&c, &mut out).is_err());
    }

    #[test]
    fn flip_word_corrupts_exactly_one_word() {
        let t = Tensor::from_vec(vec![2], vec![2.0, 3.0]).unwrap();
        let mut q = QTensor::from_tensor(FixedSpec::q16(), &t);
        q.flip_word(1, 14);
        assert_eq!(q.get_f32(0), 2.0);
        assert_eq!(q.get_f32(1), 3.0 + 4096.0); // bit 14 = 2^12 integer weight
        q.flip_word(1, 14);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn conv_geometry_kernel_matches_float_on_exact_words() {
        // 3x3 input, 2x2 kernel of ones, valid padding: each output sums a 2x2 patch.
        let x = Tensor::from_vec(
            vec![1, 1, 3, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        )
        .unwrap();
        let w = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0; 4]).unwrap();
        let spec = FixedSpec::q16();
        let (qx, qw) = (
            QTensor::from_tensor(spec, &x),
            QTensor::from_tensor(spec, &w),
        );
        let g = ConvGeometry {
            batch: 1,
            cin: 1,
            height: 3,
            width: 3,
            cout: 1,
            kh: 2,
            kw: 2,
            stride: 1,
            pad_h: 0,
            pad_w: 0,
            out_h: 2,
            out_w: 2,
        };
        let mut out = QTensor::new(spec);
        q_conv2d_into(&qx, &qw, &g, &mut out).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.dequantize().data(), &[12.0, 16.0, 24.0, 28.0]);
        // Mismatched operand lengths are rejected.
        let bad = QTensor::from_tensor(spec, &Tensor::zeros(vec![1, 1, 2, 2]));
        assert!(q_conv2d_into(&bad, &qw, &g, &mut out).is_err());
    }

    /// The straightforward per-output-element nests the blocked kernels replaced, kept as
    /// the semantic reference: integer sums are exact, so the blocked loops (and the i64
    /// fast path) must reproduce them **word-for-word** on both formats.
    fn matmul_naive(a: &QTensor, b: &QTensor) -> Vec<i64> {
        let (m, k, n) = (a.dims()[0], a.dims()[1], b.dims()[1]);
        let mut out = vec![0i64; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i128;
                for p in 0..k {
                    acc += a.words()[i * k + p] as i128 * b.words()[p * n + j] as i128;
                }
                out[i * n + j] = a.spec().rescale(acc);
            }
        }
        out
    }

    fn conv_naive(x: &QTensor, w: &QTensor, g: &ConvGeometry) -> Vec<i64> {
        let (xdat, wdat) = (x.words(), w.words());
        let mut out = vec![0i64; g.batch * g.cout * g.out_h * g.out_w];
        for b in 0..g.batch {
            for oc in 0..g.cout {
                for oy in 0..g.out_h {
                    for ox in 0..g.out_w {
                        let mut acc = 0i128;
                        for ic in 0..g.cin {
                            for ky in 0..g.kh {
                                let iy = (oy * g.stride + ky) as isize - g.pad_h as isize;
                                if iy < 0 || iy >= g.height as isize {
                                    continue;
                                }
                                for kx in 0..g.kw {
                                    let ix = (ox * g.stride + kx) as isize - g.pad_w as isize;
                                    if ix < 0 || ix >= g.width as isize {
                                        continue;
                                    }
                                    acc += xdat[((b * g.cin + ic) * g.height + iy as usize)
                                        * g.width
                                        + ix as usize]
                                        as i128
                                        * wdat[((oc * g.cin + ic) * g.kh + ky) * g.kw + kx] as i128;
                                }
                            }
                        }
                        out[((b * g.cout + oc) * g.out_h + oy) * g.out_w + ox] =
                            x.spec().rescale(acc);
                    }
                }
            }
        }
        out
    }

    /// Deterministic pseudo-random words spanning the format's full range (including the
    /// saturation region once rescaled).
    fn scrambled_words(spec: FixedSpec, n: usize, salt: u64) -> QTensor {
        let mut q = QTensor::new(spec);
        q.reset_fill(spec, &[n], 0);
        let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for w in q.words_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *w = (state >> 16) as i64 & spec.max_raw();
            if state & 1 == 0 {
                *w = -*w - 1; // reach min_raw, not just -max_raw
            }
        }
        q
    }

    #[test]
    fn blocked_matmul_matches_naive_nest_on_both_accumulator_paths() {
        for (spec, salt) in [(FixedSpec::q16(), 3u64), (FixedSpec::q32(), 7)] {
            for (m, k, n) in [(1, 1, 1), (2, 3, 4), (5, 8, 3), (4, 17, 4)] {
                let mut a = scrambled_words(spec, m * k, salt);
                a.shape.set_dims(&[m, k]);
                let mut b = scrambled_words(spec, k * n, salt + 1);
                b.shape.set_dims(&[k, n]);
                let mut out = QTensor::new(spec);
                a.matmul_into(&b, &mut out).unwrap();
                assert_eq!(
                    out.words(),
                    matmul_naive(&a, &b).as_slice(),
                    "{spec} matmul ({m},{k})x({k},{n})"
                );
                a.matmul_into_forced_wide(&b, &mut out).unwrap();
                assert_eq!(out.words(), matmul_naive(&a, &b).as_slice(), "{spec} wide");
            }
        }
    }

    #[test]
    fn blocked_conv_matches_naive_nest_on_both_accumulator_paths() {
        // Geometries mirroring the f32 kernel's regression set, including kernels far
        // wider than the input (outer columns entirely in the padding).
        let cases = [
            (1, 2, 5, 5, 3, 3, 3, 1, 1, 1, 5, 5),
            (2, 1, 4, 6, 2, 2, 2, 2, 0, 0, 2, 3),
            (1, 3, 7, 7, 4, 3, 3, 1, 0, 0, 5, 5),
            (1, 1, 1, 1, 1, 5, 5, 1, 2, 2, 1, 1),
            (1, 1, 2, 2, 1, 7, 7, 2, 3, 3, 1, 1),
            (1, 2, 5, 5, 2, 4, 4, 3, 1, 1, 2, 2),
        ];
        for (spec, salt) in [(FixedSpec::q16(), 11u64), (FixedSpec::q32(), 13)] {
            for &(batch, cin, height, width, cout, kh, kw, stride, pad_h, pad_w, out_h, out_w) in
                &cases
            {
                let g = ConvGeometry {
                    batch,
                    cin,
                    height,
                    width,
                    cout,
                    kh,
                    kw,
                    stride,
                    pad_h,
                    pad_w,
                    out_h,
                    out_w,
                };
                let x = scrambled_words(spec, batch * cin * height * width, salt);
                let w = scrambled_words(spec, cout * cin * kh * kw, salt + 1);
                let mut out = QTensor::new(spec);
                q_conv2d_into(&x, &w, &g, &mut out).unwrap();
                assert_eq!(
                    out.words(),
                    conv_naive(&x, &w, &g).as_slice(),
                    "{spec} {g:?}"
                );
                q_conv2d_into_forced_wide(&x, &w, &g, &mut out).unwrap();
                assert_eq!(
                    out.words(),
                    conv_naive(&x, &w, &g).as_slice(),
                    "{spec} wide {g:?}"
                );
            }
        }
    }

    #[test]
    fn reset_helpers_reuse_allocation_and_validate_counts() {
        let spec = FixedSpec::q32();
        let mut q = QTensor::new(spec);
        q.reset_fill(spec, &[2, 2], 7);
        assert_eq!(q.words(), &[7, 7, 7, 7]);
        q.reset_from_words(spec, &[3], &[1, 2, 3]).unwrap();
        assert_eq!(q.dims(), &[3]);
        q.reset_rows_from_words(spec, 1, &[3], &[4, 5, 6]).unwrap();
        assert_eq!(q.dims(), &[1, 3]);
        assert!(q.reset_from_words(spec, &[2], &[1, 2, 3]).is_err());
        assert!(q.reset_rows_from_words(spec, 2, &[3], &[1]).is_err());
        assert_eq!(
            q.dims(),
            &[1, 3],
            "failed resets leave the tensor unchanged"
        );
    }

    #[test]
    fn push_rows_appends_words_and_validates_trailing_dims() {
        let spec = FixedSpec::q16();
        let mut q = QTensor::with_capacity_for(spec, &[3, 2]);
        q.reset_rows_from_words(spec, 1, &[2], &[1, 2]).unwrap();
        let mut more = QTensor::new(spec);
        more.reset_rows_from_words(spec, 2, &[2], &[3, 4, 5, 6])
            .unwrap();
        q.push_rows(&more).unwrap();
        assert_eq!(q.dims(), &[3, 2]);
        assert_eq!(q.words(), &[1, 2, 3, 4, 5, 6]);
        // Mismatched trailing dims leave the tensor unchanged.
        let mut wide = QTensor::new(spec);
        wide.reset_rows_from_words(spec, 1, &[3], &[7, 8, 9])
            .unwrap();
        assert!(q.push_rows(&wide).is_err());
        assert_eq!(q.words(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn map_f32_bridge_requantizes() {
        let t = Tensor::from_vec(vec![2], vec![0.0, 100.0]).unwrap();
        let q = QTensor::from_tensor(FixedSpec::q16(), &t);
        let mut out = QTensor::new(FixedSpec::q16());
        q.map_f32_into(&mut out, f32::tanh);
        // tanh(0) = 0 exactly; tanh(100) ~ 1.0 quantizes onto the grid.
        assert_eq!(out.get_f32(0), 0.0);
        assert_eq!(out.get_f32(1), 1.0);
    }
}
