//! Dense row-major `f32` tensors.

use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by tensor construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The provided data length does not match the number of elements implied by the shape.
    ShapeDataMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Shape,
        /// Shape of the right operand.
        right: Shape,
    },
    /// A reshape was requested to a shape with a different number of elements.
    InvalidReshape {
        /// Original shape.
        from: Shape,
        /// Requested shape.
        to: Shape,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Shape,
    },
    /// Matrix dimensions are incompatible for multiplication.
    MatMulMismatch {
        /// Shape of the left operand.
        left: Shape,
        /// Shape of the right operand.
        right: Shape,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape expects {expected} elements but {actual} were provided"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left} and {right}")
            }
            TensorError::InvalidReshape { from, to } => {
                write!(f, "cannot reshape {from} into {to}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape}")
            }
            TensorError::MatMulMismatch { left, right } => {
                write!(f, "incompatible matmul operands {left} x {right}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense, row-major tensor of `f32` values.
///
/// # Example
///
/// ```
/// use ranger_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = a.map(|x| x * 2.0);
/// assert_eq!(b.data(), &[2.0, 4.0, 6.0, 8.0]);
/// # Ok::<(), ranger_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not equal the number
    /// of elements implied by `dims`.
    pub fn from_vec(dims: impl Into<Shape>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = dims.into();
        if shape.num_elements() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: impl Into<Shape>) -> Self {
        let shape = dims.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: impl Into<Shape>) -> Self {
        Self::filled(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(dims: impl Into<Shape>, value: f32) -> Self {
        let shape = dims.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Returns the tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a view of the backing data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns a mutable view of the backing data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds; use [`Tensor::try_get`] for a checked variant.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.try_get(index)
            .unwrap_or_else(|e| panic!("tensor get failed: {e}"))
    }

    /// Returns the element at a multi-dimensional index, or an error if out of bounds.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid for this shape.
    pub fn try_get(&self, index: &[usize]) -> Result<f32, TensorError> {
        self.shape
            .flat_index(index)
            .map(|i| self.data[i])
            .ok_or_else(|| TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            })
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid for this shape.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        match self.shape.flat_index(index) {
            Some(i) => {
                self.data[i] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            }),
        }
    }

    /// Returns a tensor with the same data reinterpreted under a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if the element counts differ.
    pub fn reshape(&self, dims: impl Into<Shape>) -> Result<Tensor, TensorError> {
        let to = dims.into();
        if !self.shape.is_reshape_compatible(&to) {
            return Err(TensorError::InvalidReshape {
                from: self.shape.clone(),
                to,
            });
        }
        Ok(Tensor {
            shape: to,
            data: self.data.clone(),
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    // ---- Buffer reuse -------------------------------------------------------------
    //
    // The methods below let a caller recycle one tensor as the output buffer of many
    // successive computations: they clear the backing `Vec<f32>` and refill it, so after
    // the buffer has grown to its steady-state capacity no further heap allocation
    // happens. `ExecPlan::run_into` uses them to make repeated forward passes
    // allocation-free after warm-up.

    /// Creates an empty tensor (shape `[0]`, no elements), the canonical starting state
    /// of a recycled output buffer.
    pub fn empty() -> Self {
        Tensor {
            shape: Shape::new(vec![0]),
            data: Vec::new(),
        }
    }

    /// Creates an empty tensor whose backing buffer can hold `capacity` elements without
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Tensor {
            shape: Shape::new(vec![0]),
            data: Vec::with_capacity(capacity),
        }
    }

    /// Creates an empty tensor pre-sized to later hold a value of shape `dims` without
    /// any reallocation: both the element buffer and the dimension list have the needed
    /// capacity. Used to seed a plan's buffer arena from warmed shapes.
    pub fn with_capacity_for(dims: &[usize]) -> Self {
        let mut shape_dims = Vec::with_capacity(dims.len().max(1));
        shape_dims.push(0);
        Tensor {
            shape: Shape::new(shape_dims),
            data: Vec::with_capacity(dims.iter().product()),
        }
    }

    /// Resets this tensor to shape `dims` with every element set to `value`, reusing the
    /// backing allocation.
    pub fn reset_fill(&mut self, dims: &[usize], value: f32) {
        let n: usize = dims.iter().product();
        self.data.clear();
        self.data.resize(n, value);
        self.shape.set_dims(dims);
    }

    /// Resets this tensor to shape `dims` with contents copied from `data`, reusing the
    /// backing allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not equal the
    /// number of elements implied by `dims`; the tensor is left unchanged.
    pub fn reset_from_slice(&mut self, dims: &[usize], data: &[f32]) -> Result<(), TensorError> {
        let expected: usize = dims.iter().product();
        if expected != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        self.data.clear();
        self.data.extend_from_slice(data);
        self.shape.set_dims(dims);
        Ok(())
    }

    /// Resets this tensor to shape `[lead, rest...]` with contents copied from `data`,
    /// reusing the backing allocation (the batch-preserving reshape used by `Flatten` and
    /// `Reshape` operators).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts disagree.
    pub fn reset_rows_from_slice(
        &mut self,
        lead: usize,
        rest: &[usize],
        data: &[f32],
    ) -> Result<(), TensorError> {
        let expected = lead * rest.iter().product::<usize>();
        if expected != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        self.data.clear();
        self.data.extend_from_slice(data);
        self.shape.set_dims_with_lead(lead, rest);
        Ok(())
    }

    /// Applies `f` to every element of `self`, writing the result into `out` (shape and
    /// contents of `out` are replaced; its allocation is reused).
    pub fn map_into(&self, out: &mut Tensor, f: impl Fn(f32) -> f32) {
        out.data.clear();
        out.data.extend(self.data.iter().map(|&x| f(x)));
        out.shape.set_dims(self.dims());
    }

    /// Combines `self` and `other` element-wise with `f`, writing the result into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the operand shapes differ; `out` is left
    /// unchanged.
    pub fn zip_map_into(
        &self,
        other: &Tensor,
        out: &mut Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        out.data.clear();
        out.data
            .extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        out.shape.set_dims(self.dims());
        Ok(())
    }

    // ---- Batch stacking and slicing -----------------------------------------------
    //
    // Tensors use the leading dimension as the batch dimension throughout the workspace.
    // These helpers assemble `[N, ...]` batches from single-sample tensors and slice
    // per-sample rows back out — the plumbing of batched fault-injection campaigns.

    /// Concatenates tensors along the leading (batch) dimension: `k` tensors of shape
    /// `[n_i, d...]` become one `[sum(n_i), d...]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if any two tensors disagree in a trailing
    /// dimension or a tensor is rank 0.
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty.
    pub fn stack_batch(tensors: &[Tensor]) -> Result<Tensor, TensorError> {
        let first = tensors.first().expect("cannot stack an empty batch");
        let trailing = &first.dims()[first.dims().len().min(1)..];
        let mut rows = 0usize;
        for t in tensors {
            let d = t.dims();
            if d.is_empty() || &d[1..] != trailing {
                return Err(TensorError::ShapeMismatch {
                    left: first.shape.clone(),
                    right: t.shape.clone(),
                });
            }
            rows += d[0];
        }
        let mut data = Vec::with_capacity(rows * trailing.iter().product::<usize>());
        for t in tensors {
            data.extend_from_slice(&t.data);
        }
        let mut dims = Vec::with_capacity(trailing.len() + 1);
        dims.push(rows);
        dims.extend_from_slice(trailing);
        Tensor::from_vec(dims, data)
    }

    /// Tiles this tensor `n` times along the leading (batch) dimension: shape `[b, d...]`
    /// becomes `[n * b, d...]` with the data repeated `n` times.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the tensor is rank 0.
    pub fn repeat_batch(&self, n: usize) -> Result<Tensor, TensorError> {
        let d = self.dims();
        if d.is_empty() {
            return Err(TensorError::ShapeDataMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let mut data = Vec::with_capacity(self.data.len() * n);
        for _ in 0..n {
            data.extend_from_slice(&self.data);
        }
        let mut dims = d.to_vec();
        dims[0] *= n;
        Tensor::from_vec(dims, data)
    }

    /// The extent of the leading (batch) dimension, or 1 for a rank-0 tensor.
    pub fn batch_rows(&self) -> usize {
        self.dims().first().copied().unwrap_or(1)
    }

    /// Extracts row `row` of the leading (batch) dimension as a `[1, d...]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the tensor is rank 0 or `row` is out
    /// of range.
    pub fn batch_row(&self, row: usize) -> Result<Tensor, TensorError> {
        let mut out = Tensor::empty();
        self.batch_row_into(row, &mut out)?;
        Ok(out)
    }

    /// [`Tensor::batch_row`], writing into a recycled output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the tensor is rank 0 or `row` is out
    /// of range; `out` is left unchanged.
    pub fn batch_row_into(&self, row: usize, out: &mut Tensor) -> Result<(), TensorError> {
        self.slice_rows_into(row, 1, out)
    }

    /// Extracts rows `[start, start + rows)` of the leading (batch) dimension as a
    /// `[rows, d...]` tensor — the value the same computation would have produced for
    /// that row group alone, given row-independent operators.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the tensor is rank 0 or the range
    /// exceeds the leading dimension.
    pub fn slice_rows(&self, start: usize, rows: usize) -> Result<Tensor, TensorError> {
        let mut out = Tensor::empty();
        self.slice_rows_into(start, rows, &mut out)?;
        Ok(out)
    }

    /// [`Tensor::slice_rows`], writing into a recycled output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the tensor is rank 0 or the range
    /// exceeds the leading dimension; `out` is left unchanged.
    pub fn slice_rows_into(
        &self,
        start: usize,
        rows: usize,
        out: &mut Tensor,
    ) -> Result<(), TensorError> {
        let d = self.dims();
        if d.is_empty() || start + rows > d[0] {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![start, start + rows],
                shape: self.shape.clone(),
            });
        }
        let per_row: usize = d[1..].iter().product();
        out.data.clear();
        out.data
            .extend_from_slice(&self.data[start * per_row..(start + rows) * per_row]);
        out.shape.set_dims_with_lead(rows, &d[1..]);
        Ok(())
    }

    /// Appends the rows of `src` to this tensor along the leading (batch) dimension:
    /// `[n, d...]` followed by `[m, d...]` becomes `[n + m, d...]`. Within reserved
    /// capacity the append reuses the backing allocation, which is how tiled execution
    /// materializes a full-batch value from row-group outputs without reallocating.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if either tensor is rank 0 or the trailing
    /// dimensions disagree; the tensor is left unchanged.
    pub fn push_rows(&mut self, src: &Tensor) -> Result<(), TensorError> {
        let (d, s) = (self.dims(), src.dims());
        if d.is_empty() || s.is_empty() || d[1..] != s[1..] {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: src.shape.clone(),
            });
        }
        let lead = d[0] + s[0];
        self.data.extend_from_slice(&src.data);
        self.shape.set_lead(lead);
        Ok(())
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// This is the primitive Ranger's range-restriction operator is built on.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// 2-D matrix multiplication: `self` is `(m, k)`, `other` is `(k, n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatMulMismatch`] if either operand is not rank 2 or the inner
    /// dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let mut out = Tensor::empty();
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Tensor::matmul`], writing into a recycled output buffer (shape and contents of
    /// `out` are replaced; its allocation is reused). This is the single matmul kernel —
    /// the allocating variant delegates here, so the two cannot diverge numerically.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatMulMismatch`] if either operand is not rank 2 or the
    /// inner dimensions differ; `out` is left unchanged.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
        let (ls, rs) = (self.dims(), other.dims());
        if ls.len() != 2 || rs.len() != 2 || ls[1] != rs[0] {
            return Err(TensorError::MatMulMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        let (m, k, n) = (ls[0], ls[1], rs[1]);
        out.data.clear();
        out.data.resize(m * n, 0.0);
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &other.data[p * n..(p + 1) * n];
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(row) {
                    *o += a * b;
                }
            }
        }
        out.shape.set_dims(&[m, n]);
        Ok(())
    }

    /// Returns the sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Returns the arithmetic mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Returns the maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Returns the minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Returns the flat index of the maximum element, or `None` for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Returns the flat indices of the `k` largest elements, in decreasing order of value.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.data.len()).collect();
        idx.sort_by(|&a, &b| {
            self.data[b]
                .partial_cmp(&self.data[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }

    /// Returns the Euclidean (L2) norm of the tensor viewed as a flat vector.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Returns the largest absolute element-wise difference between two tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        Ok(self
            .zip_map(other, |a, b| (a - b).abs())?
            .data
            .iter()
            .copied()
            .fold(0.0, f32::max))
    }

    /// Returns `true` if every element differs from `other` by at most `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> Result<bool, TensorError> {
        Ok(self.max_abs_diff(other)? <= tol)
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::ShapeDataMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn get_and_set_round_trip() {
        let mut t = Tensor::zeros(vec![2, 3]);
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2]), 7.5);
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert!(t.set(&[2, 0], 1.0).is_err());
        assert!(t.try_get(&[0, 3]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-3.0, -3.0, -3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn elementwise_ops_reject_shape_mismatch() {
        let a = Tensor::zeros(vec![2]);
        let b = Tensor::zeros(vec![3]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_incompatible() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatMulMismatch { .. })
        ));
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![4], vec![1.0, -2.0, 3.0, 0.5]).unwrap();
        assert_eq!(t.sum(), 2.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.top_k(2), vec![2, 0]);
        assert!((t.mean() - 0.625).abs() < 1e-6);
    }

    #[test]
    fn clamp_restricts_range() {
        let t = Tensor::from_vec(vec![4], vec![-5.0, 0.0, 2.0, 100.0]).unwrap();
        assert_eq!(t.clamp(0.0, 10.0).data(), &[0.0, 0.0, 2.0, 10.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let r = t.reshape(vec![3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn scalar_tensor_behaves() {
        let s = Tensor::scalar(3.5);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&[]), 3.5);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(vec![2]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn reset_methods_reuse_the_allocation_and_set_the_shape() {
        let mut buf = Tensor::with_capacity(16);
        let ptr = buf.data().as_ptr();
        buf.reset_fill(&[2, 3], 1.5);
        assert_eq!(buf.dims(), &[2, 3]);
        assert_eq!(buf.data(), &[1.5; 6]);
        buf.reset_from_slice(&[4], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(buf.dims(), &[4]);
        assert_eq!(buf.data(), &[1.0, 2.0, 3.0, 4.0]);
        buf.reset_rows_from_slice(2, &[2], &[1.0, 2.0, 3.0, 4.0])
            .unwrap();
        assert_eq!(buf.dims(), &[2, 2]);
        // All resets fit within the reserved capacity: the buffer never moved.
        assert_eq!(buf.data().as_ptr(), ptr);
        // Mismatched element counts leave the tensor unchanged.
        assert!(buf.reset_from_slice(&[3], &[0.0; 4]).is_err());
        assert!(buf.reset_rows_from_slice(3, &[2], &[0.0; 4]).is_err());
        assert_eq!(buf.dims(), &[2, 2]);
    }

    #[test]
    fn into_variants_match_allocating_variants() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, -2.0, 3.0, 4.0, -5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let mut out = Tensor::empty();
        a.map_into(&mut out, |x| x.max(0.0));
        assert_eq!(out, a.map(|x| x.max(0.0)));
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        let c = Tensor::filled(vec![2, 3], 0.5);
        a.zip_map_into(&c, &mut out, |x, y| x * y).unwrap();
        assert_eq!(out, a.mul(&c).unwrap());
        // Errors leave `out` untouched.
        let keep = out.clone();
        assert!(a.matmul_into(&c, &mut out).is_err());
        assert!(a.zip_map_into(&b, &mut out, |x, _| x).is_err());
        assert_eq!(out, keep);
    }

    #[test]
    fn batch_stack_repeat_and_slice_round_trip() {
        let a = Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![1, 3], vec![4.0, 5.0, 6.0]).unwrap();
        let stacked = Tensor::stack_batch(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(stacked.dims(), &[2, 3]);
        assert_eq!(stacked.batch_rows(), 2);
        assert_eq!(stacked.batch_row(0).unwrap(), a);
        assert_eq!(stacked.batch_row(1).unwrap(), b);
        assert!(stacked.batch_row(2).is_err());

        let tiled = a.repeat_batch(3).unwrap();
        assert_eq!(tiled.dims(), &[3, 3]);
        for row in 0..3 {
            assert_eq!(tiled.batch_row(row).unwrap(), a);
        }
        assert!(Tensor::scalar(1.0).repeat_batch(2).is_err());

        let mismatched = Tensor::zeros(vec![1, 4]);
        assert!(Tensor::stack_batch(&[a, mismatched]).is_err());
    }

    #[test]
    fn batch_row_into_reuses_the_buffer() {
        let stacked = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut row = Tensor::with_capacity(2);
        let ptr = row.data().as_ptr();
        stacked.batch_row_into(1, &mut row).unwrap();
        assert_eq!(row.dims(), &[1, 2]);
        assert_eq!(row.data(), &[3.0, 4.0]);
        assert_eq!(row.data().as_ptr(), ptr);
    }

    #[test]
    fn push_rows_appends_within_capacity_and_validates_trailing_dims() {
        let full = Tensor::from_vec(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let mut out = Tensor::with_capacity_for(&[3, 2]);
        let ptr = out.data().as_ptr();
        out.reset_from_slice(&[1, 2], &full.data()[..2]).unwrap();
        out.push_rows(&full.slice_rows(1, 2).unwrap()).unwrap();
        assert_eq!(out, full);
        // The appends fit within the reserved capacity: the buffer never moved.
        assert_eq!(out.data().as_ptr(), ptr);
        // Mismatched trailing dims and rank-0 operands leave the tensor unchanged.
        assert!(out.push_rows(&Tensor::zeros(vec![1, 3])).is_err());
        assert!(out.push_rows(&Tensor::scalar(1.0)).is_err());
        assert_eq!(out, full);
    }

    #[test]
    fn approx_eq_and_max_abs_diff() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![1.05, 2.0]).unwrap();
        assert!((a.max_abs_diff(&b).unwrap() - 0.05).abs() < 1e-6);
        assert!(a.approx_eq(&b, 0.1).unwrap());
        assert!(!a.approx_eq(&b, 0.01).unwrap());
    }
}
