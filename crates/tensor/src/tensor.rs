//! Dense row-major `f32` tensors.

use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by tensor construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The provided data length does not match the number of elements implied by the shape.
    ShapeDataMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Shape,
        /// Shape of the right operand.
        right: Shape,
    },
    /// A reshape was requested to a shape with a different number of elements.
    InvalidReshape {
        /// Original shape.
        from: Shape,
        /// Requested shape.
        to: Shape,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Shape,
    },
    /// Matrix dimensions are incompatible for multiplication.
    MatMulMismatch {
        /// Shape of the left operand.
        left: Shape,
        /// Shape of the right operand.
        right: Shape,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape expects {expected} elements but {actual} were provided"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left} and {right}")
            }
            TensorError::InvalidReshape { from, to } => {
                write!(f, "cannot reshape {from} into {to}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape}")
            }
            TensorError::MatMulMismatch { left, right } => {
                write!(f, "incompatible matmul operands {left} x {right}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense, row-major tensor of `f32` values.
///
/// # Example
///
/// ```
/// use ranger_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = a.map(|x| x * 2.0);
/// assert_eq!(b.data(), &[2.0, 4.0, 6.0, 8.0]);
/// # Ok::<(), ranger_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not equal the number
    /// of elements implied by `dims`.
    pub fn from_vec(dims: impl Into<Shape>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = dims.into();
        if shape.num_elements() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: impl Into<Shape>) -> Self {
        let shape = dims.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: impl Into<Shape>) -> Self {
        Self::filled(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(dims: impl Into<Shape>, value: f32) -> Self {
        let shape = dims.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Returns the tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a view of the backing data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns a mutable view of the backing data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds; use [`Tensor::try_get`] for a checked variant.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.try_get(index)
            .unwrap_or_else(|e| panic!("tensor get failed: {e}"))
    }

    /// Returns the element at a multi-dimensional index, or an error if out of bounds.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid for this shape.
    pub fn try_get(&self, index: &[usize]) -> Result<f32, TensorError> {
        self.shape
            .flat_index(index)
            .map(|i| self.data[i])
            .ok_or_else(|| TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            })
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index is invalid for this shape.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        match self.shape.flat_index(index) {
            Some(i) => {
                self.data[i] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            }),
        }
    }

    /// Returns a tensor with the same data reinterpreted under a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if the element counts differ.
    pub fn reshape(&self, dims: impl Into<Shape>) -> Result<Tensor, TensorError> {
        let to = dims.into();
        if !self.shape.is_reshape_compatible(&to) {
            return Err(TensorError::InvalidReshape {
                from: self.shape.clone(),
                to,
            });
        }
        Ok(Tensor {
            shape: to,
            data: self.data.clone(),
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// This is the primitive Ranger's range-restriction operator is built on.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// 2-D matrix multiplication: `self` is `(m, k)`, `other` is `(k, n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatMulMismatch`] if either operand is not rank 2 or the inner
    /// dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let (ls, rs) = (self.dims(), other.dims());
        if ls.len() != 2 || rs.len() != 2 || ls[1] != rs[0] {
            return Err(TensorError::MatMulMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        let (m, k, n) = (ls[0], ls[1], rs[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &other.data[p * n..(p + 1) * n];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(row) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Returns the sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Returns the arithmetic mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Returns the maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Returns the minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Returns the flat index of the maximum element, or `None` for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Returns the flat indices of the `k` largest elements, in decreasing order of value.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.data.len()).collect();
        idx.sort_by(|&a, &b| {
            self.data[b]
                .partial_cmp(&self.data[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }

    /// Returns the Euclidean (L2) norm of the tensor viewed as a flat vector.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Returns the largest absolute element-wise difference between two tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        Ok(self
            .zip_map(other, |a, b| (a - b).abs())?
            .data
            .iter()
            .copied()
            .fold(0.0, f32::max))
    }

    /// Returns `true` if every element differs from `other` by at most `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> Result<bool, TensorError> {
        Ok(self.max_abs_diff(other)? <= tol)
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::ShapeDataMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn get_and_set_round_trip() {
        let mut t = Tensor::zeros(vec![2, 3]);
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2]), 7.5);
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert!(t.set(&[2, 0], 1.0).is_err());
        assert!(t.try_get(&[0, 3]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-3.0, -3.0, -3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn elementwise_ops_reject_shape_mismatch() {
        let a = Tensor::zeros(vec![2]);
        let b = Tensor::zeros(vec![3]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_incompatible() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatMulMismatch { .. })
        ));
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![4], vec![1.0, -2.0, 3.0, 0.5]).unwrap();
        assert_eq!(t.sum(), 2.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.top_k(2), vec![2, 0]);
        assert!((t.mean() - 0.625).abs() < 1e-6);
    }

    #[test]
    fn clamp_restricts_range() {
        let t = Tensor::from_vec(vec![4], vec![-5.0, 0.0, 2.0, 100.0]).unwrap();
        assert_eq!(t.clamp(0.0, 10.0).data(), &[0.0, 0.0, 2.0, 10.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let r = t.reshape(vec![3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn scalar_tensor_behaves() {
        let s = Tensor::scalar(3.5);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&[]), 3.5);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(vec![2]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn approx_eq_and_max_abs_diff() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![1.05, 2.0]).unwrap();
        assert!((a.max_abs_diff(&b).unwrap() - 0.05).abs() < 1e-6);
        assert!(a.approx_eq(&b, 0.1).unwrap());
        assert!(!a.approx_eq(&b, 0.01).unwrap());
    }
}
