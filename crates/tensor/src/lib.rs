//! Dense tensors, fixed-point codecs and bit-level fault primitives.
//!
//! This crate is the numeric substrate of the Ranger (DSN'21) reproduction. It provides:
//!
//! * [`Tensor`] — a row-major, dynamically shaped dense `f32` tensor with the small set of
//!   element-wise, reduction and indexing operations the dataflow-graph executor needs.
//! * [`Shape`] — a validated tensor shape with stride computation.
//! * [`fixed`] — two's-complement fixed-point codecs (the paper evaluates DNNs using 32-bit
//!   and 16-bit fixed-point datatypes).
//! * [`qtensor`] — integer word tensors plus saturating Q-format kernels: the storage and
//!   arithmetic of the genuine fixed-point execution backend.
//! * [`bits`] — datatype-aware single/multi bit-flip primitives used by the fault injector.
//! * [`init`] — deterministic weight initializers (He / Xavier / uniform).
//! * [`stats`] — small statistics helpers (mean, standard error, confidence intervals,
//!   percentiles) used when reporting SDC rates the way the paper does.
//!
//! # Example
//!
//! ```
//! use ranger_tensor::{Tensor, bits::DataType};
//!
//! let t = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
//! assert_eq!(t.get(&[1, 0]), 3.0);
//!
//! // Flip the high-order bit of a value under the paper's 32-bit fixed-point datatype.
//! let dt = DataType::fixed32();
//! let corrupted = dt.flip_bit(2.0, dt.bit_width() - 2);
//! assert!(corrupted.abs() > 1000.0);
//! # Ok::<(), ranger_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod fixed;
pub mod init;
pub mod qtensor;
pub mod shape;
pub mod stats;
pub mod tensor;

pub use bits::DataType;
pub use fixed::FixedSpec;
pub use qtensor::QTensor;
pub use shape::Shape;
pub use tensor::{Tensor, TensorError};
