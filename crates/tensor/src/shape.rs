//! Tensor shapes and stride computation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated tensor shape.
///
/// Shapes are stored as a list of dimension extents. The empty shape `[]` denotes a scalar
/// with a single element. Shapes are used row-major (C order): the last dimension varies
/// fastest.
///
/// # Example
///
/// ```
/// use ranger_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.num_elements(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates the scalar shape (zero dimensions, one element).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Returns the dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Returns the total number of elements described by this shape.
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns the row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// Returns `None` if the index rank does not match or any coordinate is out of bounds.
    pub fn flat_index(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut flat = 0usize;
        for ((&i, &d), s) in index.iter().zip(&self.dims).zip(self.strides()) {
            if i >= d {
                return None;
            }
            flat += i * s;
        }
        Some(flat)
    }

    /// Converts a flat row-major offset into a multi-dimensional index.
    ///
    /// Returns `None` if the offset is out of range.
    pub fn multi_index(&self, mut flat: usize) -> Option<Vec<usize>> {
        if flat >= self.num_elements().max(1) {
            return None;
        }
        let mut index = vec![0usize; self.dims.len()];
        for (slot, stride) in index.iter_mut().zip(self.strides()) {
            *slot = flat / stride;
            flat %= stride;
        }
        Some(index)
    }

    /// Returns `true` if the two shapes describe the same number of elements, which is the
    /// requirement for a reshape to be valid.
    pub fn is_reshape_compatible(&self, other: &Shape) -> bool {
        self.num_elements() == other.num_elements()
    }

    /// Replaces the dimension extents in place, reusing the backing allocation.
    ///
    /// This is the allocation-free counterpart of `*shape = Shape::from(dims)`, used by
    /// the tensor buffer-reuse APIs on the execution hot path.
    pub fn set_dims(&mut self, dims: &[usize]) {
        self.dims.clear();
        self.dims.extend_from_slice(dims);
    }

    /// Replaces the dimension extents with `[lead, rest[0], rest[1], ...]` in place.
    ///
    /// Used by batch-preserving reshapes, where the leading (batch) dimension is carried
    /// over from the input and only the trailing dimensions are prescribed.
    pub fn set_dims_with_lead(&mut self, lead: usize, rest: &[usize]) {
        self.dims.clear();
        self.dims.push(lead);
        self.dims.extend_from_slice(rest);
    }

    /// Replaces only the leading (batch) dimension, leaving the trailing extents
    /// untouched. Used when rows are appended to an existing batch.
    ///
    /// # Panics
    ///
    /// Panics if the shape is rank 0 (a scalar has no leading dimension).
    pub fn set_lead(&mut self, lead: usize) {
        self.dims[0] = lead;
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_of_scalar_is_one() {
        assert_eq!(Shape::scalar().num_elements(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.num_elements(), 24);
    }

    #[test]
    fn flat_index_round_trips() {
        let s = Shape::new(vec![2, 3, 4]);
        for flat in 0..s.num_elements() {
            let idx = s.multi_index(flat).unwrap();
            assert_eq!(s.flat_index(&idx), Some(flat));
        }
    }

    #[test]
    fn flat_index_rejects_out_of_bounds() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.flat_index(&[2, 0]), None);
        assert_eq!(s.flat_index(&[0, 3]), None);
        assert_eq!(s.flat_index(&[0]), None);
        assert_eq!(s.multi_index(6), None);
    }

    #[test]
    fn reshape_compatibility() {
        let a = Shape::new(vec![2, 6]);
        let b = Shape::new(vec![3, 4]);
        let c = Shape::new(vec![5]);
        assert!(a.is_reshape_compatible(&b));
        assert!(!a.is_reshape_compatible(&c));
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(vec![1, 28, 28]).to_string(), "[1, 28, 28]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
