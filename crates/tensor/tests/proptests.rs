//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use ranger_tensor::qtensor::{q_conv2d_into, q_conv2d_into_forced_wide, ConvGeometry};
use ranger_tensor::{bits::DataType, FixedSpec, QTensor, Shape, Tensor};

/// Builds a Q14.2 word tensor of shape `[rows, cols]` from a pool of full-range words.
fn q16_words(pool: &[i64], rows: usize, cols: usize) -> QTensor {
    let mut q = QTensor::new(FixedSpec::q16());
    q.reset_rows_from_words(FixedSpec::q16(), rows, &[cols], &pool[..rows * cols])
        .unwrap();
    q
}

proptest! {
    /// The i64 fast-path guard's semantics, pinned bit-for-bit against the i128 path:
    /// on Q14.2 (whose guard admits every realistic dot product) the public matmul —
    /// which takes the i64 path — must reproduce the forced-i128 reference word-for-word,
    /// for words spanning the format's full range including saturating sums.
    #[test]
    fn i64_matmul_fast_path_is_bit_for_bit_the_i128_path(
        m in 1usize..5,
        k in 1usize..9,
        n in 1usize..5,
        a_pool in prop::collection::vec(-32768i64..=32767, 40..41),
        b_pool in prop::collection::vec(-32768i64..=32767, 40..41),
    ) {
        let spec = FixedSpec::q16();
        prop_assert!((k as u64) <= spec.max_i64_mac_terms());
        let a = q16_words(&a_pool, m, k);
        let b = q16_words(&b_pool, k, n);
        let (mut fast, mut wide) = (QTensor::new(spec), QTensor::new(spec));
        a.matmul_into(&b, &mut fast).unwrap();
        a.matmul_into_forced_wide(&b, &mut wide).unwrap();
        prop_assert_eq!(fast.words(), wide.words());
    }

    /// The same guard pin for the blocked convolution: the i64 fast path the Q14.2 guard
    /// selects agrees word-for-word with the forced-i128 accumulator on random
    /// geometries (padding included) over full-range words.
    #[test]
    fn i64_conv_fast_path_is_bit_for_bit_the_i128_path(
        cin in 1usize..4,
        height in 3usize..6,
        width in 3usize..6,
        cout in 1usize..4,
        kh in 1usize..4,
        kw in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        x_pool in prop::collection::vec(-32768i64..=32767, 75..76),
        w_pool in prop::collection::vec(-32768i64..=32767, 81..82),
    ) {
        let spec = FixedSpec::q16();
        prop_assert!(((cin * kh * kw) as u64) <= spec.max_i64_mac_terms());
        // height/width >= 3 >= kh/kw keeps both output extents positive for any pad.
        let out_h = (height + 2 * pad - kh) / stride + 1;
        let out_w = (width + 2 * pad - kw) / stride + 1;
        let g = ConvGeometry {
            batch: 1, cin, height, width, cout, kh, kw, stride,
            pad_h: pad, pad_w: pad, out_h, out_w,
        };
        let x = q16_words(&x_pool, cin, height * width);
        let w = q16_words(&w_pool, cout, cin * kh * kw);
        let (mut fast, mut wide) = (QTensor::new(spec), QTensor::new(spec));
        q_conv2d_into(&x, &w, &g, &mut fast).unwrap();
        q_conv2d_into_forced_wide(&x, &w, &g, &mut wide).unwrap();
        prop_assert_eq!(fast.words(), wide.words());
    }

    /// Quantizing a whole tensor and dequantizing it again never moves any element by
    /// more than half the format resolution (round-to-nearest), for in-range values —
    /// the backend kernels' frozen error bound.
    #[test]
    fn qtensor_round_trip_error_is_half_resolution(
        values in prop::collection::vec(-8000.0f32..8000.0f32, 1..64),
    ) {
        let n = values.len();
        let t = Tensor::from_vec(vec![n], values).unwrap();
        for spec in [FixedSpec::q16(), FixedSpec::q32()] {
            let q = QTensor::from_tensor(spec, &t);
            let back = q.dequantize();
            let err = t.max_abs_diff(&back).unwrap() as f64;
            prop_assert!(
                err <= spec.resolution() / 2.0 + 1e-9,
                "round trip error {err} exceeds half the {spec} resolution"
            );
            // Quantization is idempotent: a value already on the grid stays put.
            prop_assert_eq!(QTensor::from_tensor(spec, &back).dequantize(), back);
        }
    }

    /// Raw encode/decode agree with the bit-packing codec for every in-range value, and
    /// word-level bit flips decode to exactly what the float-path flip computes.
    #[test]
    fn raw_words_agree_with_packed_codec(v in -8000.0f32..8000.0f32, bit in 0u32..16u32) {
        for spec in [FixedSpec::q16(), FixedSpec::q32()] {
            let raw = spec.raw_encode(v);
            prop_assert_eq!((raw as u64) & spec.mask(), spec.encode(v));
            prop_assert_eq!(spec.raw_decode(raw), spec.quantize(v));
            prop_assert_eq!(spec.raw_decode(spec.flip_raw(raw, bit)), spec.flip_bit(v, bit));
        }
    }

    /// Encoding then decoding a value that is within range never deviates by more than the
    /// format resolution.
    #[test]
    fn fixed_round_trip_error_is_bounded(v in -8000.0f32..8000.0f32) {
        let q16 = FixedSpec::q16();
        let q32 = FixedSpec::q32();
        prop_assert!(((q16.quantize(v) - v).abs() as f64) <= q16.resolution());
        prop_assert!(((q32.quantize(v) - v).abs() as f64) <= q32.resolution());
    }

    /// Flipping the same bit twice restores a value already on the representable grid.
    #[test]
    fn bit_flip_is_involution(v in -5000.0f32..5000.0f32, bit in 0u32..16u32) {
        let dt = DataType::fixed16();
        let snapped = dt.quantize(v);
        prop_assert_eq!(dt.flip_bit(dt.flip_bit(snapped, bit), bit), snapped);
    }

    /// The deviation caused by a bit flip is monotonically non-decreasing in bit
    /// significance for non-negative in-range values: this is the monotone property the
    /// paper's range-restriction argument relies on (critical faults cluster in high-order
    /// bits).
    #[test]
    fn higher_order_bits_cause_larger_deviation(v in 0.0f32..100.0f32) {
        let dt = DataType::fixed32();
        let snapped = dt.quantize(v);
        // Skip the sign bit: its deviation depends on the value's magnitude.
        let deviations: Vec<f64> = (0..31)
            .map(|bit| (dt.flip_bit(snapped, bit) - snapped).abs() as f64)
            .collect();
        for w in deviations.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6, "deviations must grow with bit order: {deviations:?}");
        }
    }

    /// Clamping always produces values within the bound and is idempotent.
    #[test]
    fn clamp_is_bounded_and_idempotent(values in prop::collection::vec(-1.0e6f32..1.0e6f32, 1..64), hi in 0.1f32..1000.0f32) {
        let n = values.len();
        let t = Tensor::from_vec(vec![n], values).unwrap();
        let clamped = t.clamp(0.0, hi);
        prop_assert!(clamped.max() <= hi);
        prop_assert!(clamped.min() >= 0.0);
        prop_assert_eq!(clamped.clamp(0.0, hi), clamped);
    }

    /// Reshape round-trips preserve data for any compatible factorization.
    #[test]
    fn reshape_round_trip(rows in 1usize..8, cols in 1usize..8) {
        let t = Tensor::from_vec(vec![rows, cols], (0..rows * cols).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape(vec![cols, rows]).unwrap().reshape(vec![rows, cols]).unwrap();
        prop_assert_eq!(r, t);
    }

    /// Flat/multi index conversions are mutually inverse.
    #[test]
    fn index_round_trip(d0 in 1usize..6, d1 in 1usize..6, d2 in 1usize..6) {
        let s = Shape::new(vec![d0, d1, d2]);
        for flat in 0..s.num_elements() {
            let idx = s.multi_index(flat).unwrap();
            prop_assert_eq!(s.flat_index(&idx), Some(flat));
        }
    }
}
