//! Per-(input, trial) RNG stream derivation.
//!
//! The campaign runner used to draw every fault plan from **one** sequential generator:
//! trial `t` of input `i` saw whatever state the previous `i × trials + t` draws left
//! behind. That schedule is inherently serial — a parallel driver would either need to
//! replay the whole prefix per trial or accept different plans per worker count.
//!
//! This module re-keys the randomness: every `(campaign seed, input index, trial index)`
//! triple derives its **own** 64-bit sub-seed via two chained SplitMix64 finalization
//! rounds, and the trial's generator is seeded from that sub-seed alone. Plans therefore
//! depend only on logical indices, never on execution order — the serial, batched and
//! parallel campaign paths all draw identical plans, bit for bit, for any worker count
//! and any batch size.
//!
//! The derivation is **frozen**: it is the canonical draw order of every campaign in the
//! reproduction (pinned by the `trial_stream_seeds_are_pinned` test below), so reported
//! SDC counts stay comparable across releases and execution strategies.

/// The SplitMix64 increment (the 64-bit golden ratio), used to space the index keys.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalization mix: a bijective avalanche over `u64`.
///
/// This is the output stage of Steele et al.'s SplitMix64 generator (and of
/// `StdRng::seed_from_u64` in the vendored `rand`): every input bit affects every output
/// bit, and distinct inputs map to distinct outputs, so feeding it well-spaced keys
/// yields well-separated sub-seeds.
pub fn splitmix64_mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG sub-seed of trial `trial_index` on input `input_index` for a campaign
/// seeded with `seed`.
///
/// Two chained SplitMix64 rounds: the first binds the input index to the campaign seed,
/// the second binds the trial index to the result. Both rounds offset their key by a
/// small constant before mixing so the all-zero triple does not sit on the mix
/// function's `0 → 0` fixed point. Because [`splitmix64_mix`] is a bijection, for a
/// fixed campaign seed every input index yields a distinct intermediate key and, within
/// it, every trial index a distinct sub-seed.
///
/// Seed the trial's generator from the returned value (e.g.
/// `StdRng::seed_from_u64(trial_stream_seed(seed, i, t))`) and draw the whole fault plan
/// from that generator.
pub fn trial_stream_seed(seed: u64, input_index: u64, trial_index: u64) -> u64 {
    let input_key = splitmix64_mix(
        seed.wrapping_add(input_index.wrapping_mul(GOLDEN_GAMMA))
            .wrapping_add(1),
    );
    splitmix64_mix(
        input_key
            .wrapping_add(trial_index.wrapping_mul(GOLDEN_GAMMA))
            .wrapping_add(2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    /// The canonical draw order of the reproduction: these exact sub-seeds define every
    /// campaign's fault plans. Changing the derivation silently changes every reported
    /// SDC count, so the first few values are pinned here.
    #[test]
    fn trial_stream_seeds_are_pinned() {
        assert_eq!(trial_stream_seed(0, 0, 0), 0xef30_b01c_2974_aeeb);
        assert_eq!(trial_stream_seed(0, 0, 1), 0xd04b_a4a2_b36a_25f3);
        assert_eq!(trial_stream_seed(0, 1, 0), 0x081a_5c13_7785_6b73);
        assert_eq!(trial_stream_seed(42, 0, 0), 0xd8a2_373a_e798_82a9);
        assert_eq!(trial_stream_seed(42, 3, 7), 0x8ae9_9b24_134d_72fd);
    }

    #[test]
    fn mix_is_a_bijection_on_a_sample() {
        // Distinct inputs must produce distinct outputs (spot-check a dense sample).
        let outputs: HashSet<u64> = (0..10_000u64).map(splitmix64_mix).collect();
        assert_eq!(outputs.len(), 10_000);
    }

    #[test]
    fn nearby_indices_get_unrelated_seeds() {
        let mut seen = HashSet::new();
        for seed in [0u64, 1, 42] {
            for input in 0..8u64 {
                for trial in 0..64u64 {
                    assert!(
                        seen.insert(trial_stream_seed(seed, input, trial)),
                        "collision at seed {seed}, input {input}, trial {trial}"
                    );
                }
            }
        }
    }

    #[test]
    fn streams_are_independent_of_draw_history() {
        // Drawing 10 values from trial (0, 0) then seeding trial (0, 1) matches seeding
        // trial (0, 1) directly — nothing about one stream leaks into another.
        let mut first = StdRng::seed_from_u64(trial_stream_seed(9, 0, 0));
        for _ in 0..10 {
            let _: u64 = first.gen_range(0..u64::MAX);
        }
        let mut a = StdRng::seed_from_u64(trial_stream_seed(9, 0, 1));
        let mut b = StdRng::seed_from_u64(trial_stream_seed(9, 0, 1));
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn zero_triple_avoids_the_mix_fixed_point() {
        assert_eq!(splitmix64_mix(0), 0, "the raw mix fixes zero");
        assert_ne!(
            trial_stream_seed(0, 0, 0),
            0,
            "the keyed derivation must not"
        );
    }
}
